"""Frequency up/down-conversion (RF mixers).

In the complex-envelope representation, an ideal mixer moves the declared
``center_frequency_hz`` by the LO's *nominal* frequency; the LO's CFO and
phase offset appear as a time-varying rotation of the envelope — Eq. 6 of
the paper: ``phi'(t) = 2 pi (f' - f) t + phi``.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.oscillator import Oscillator
from repro.dsp.signal import Signal
from repro.errors import SignalError


def downconvert(signal: Signal, lo: Oscillator) -> Signal:
    """Mix ``signal`` down by the LO frequency.

    The output center is ``signal.center_frequency_hz - lo.nominal_frequency_hz``
    and the envelope is rotated by the conjugate of the LO error terms.
    """
    rotation = np.conj(lo.envelope_rotation(signal.times))
    # The LO's CFO relative to its nominal frequency is already inside
    # ``rotation``; the deliberate shift is accounted in the center.
    return Signal(
        signal.samples * rotation,
        signal.sample_rate,
        signal.center_frequency_hz - lo.nominal_frequency_hz,
        signal.start_time,
    )


def upconvert(signal: Signal, lo: Oscillator) -> Signal:
    """Mix ``signal`` up by the LO frequency (inverse of :func:`downconvert`).

    Using the *same* :class:`Oscillator` instance for a downconvert and a
    later upconvert cancels its CFO and phase exactly — the mechanism
    behind the relay's mirrored architecture (paper §4.3).
    """
    rotation = lo.envelope_rotation(signal.times)
    return Signal(
        signal.samples * rotation,
        signal.sample_rate,
        signal.center_frequency_hz + lo.nominal_frequency_hz,
        signal.start_time,
    )


def retune(signal: Signal, new_center_frequency_hz: float) -> Signal:
    """Re-express a signal's envelope relative to a different center.

    The physical signal is unchanged: the envelope is rotated by the
    difference frequency so that spectral content keeps its absolute
    position. Fails if the shift would alias outside Nyquist for any
    content present; callers are responsible for choosing adequate rates.
    """
    delta = signal.center_frequency_hz - new_center_frequency_hz
    if abs(delta) >= signal.sample_rate:
        raise SignalError(
            f"retune by {delta} Hz exceeds the representable band at "
            f"{signal.sample_rate} S/s"
        )
    rotation = np.exp(2j * np.pi * delta * signal.times)
    return Signal(
        signal.samples * rotation,
        signal.sample_rate,
        new_center_frequency_hz,
        signal.start_time,
    )
