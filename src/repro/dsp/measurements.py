"""Signal measurements: power, tone extraction, phase.

These mirror the lab instruments of the paper's evaluation — the spectrum
analyzer used for the isolation measurements of §7.1 and the reader's
coherent channel estimator used for Fig. 10.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.signal import Signal
from repro.dsp.units import linear_to_db, watts_to_dbm
from repro.errors import SignalError


def tone(
    frequency_offset_hz: float,
    duration: float,
    sample_rate: float,
    amplitude: float = 1.0,
    center_frequency_hz: float = 0.0,
    phase_rad: float = 0.0,
    start_time: float = 0.0,
) -> Signal:
    """A complex exponential at an offset from the declared center.

    Used as the probe signal of the isolation measurements (e.g. the
    "f1 + 50 kHz" query stand-in of §7.1).
    """
    n = int(round(duration * sample_rate))
    if n <= 0:
        raise SignalError(f"tone duration {duration}s yields no samples")
    t = start_time + np.arange(n) / sample_rate
    samples = amplitude * np.exp(
        1j * (2.0 * np.pi * frequency_offset_hz * t + phase_rad)
    )
    return Signal(samples, sample_rate, center_frequency_hz, start_time)


def mean_power_dbm(sig: Signal) -> float:
    """Mean power of a signal in dBm (``-inf`` for silence)."""
    return float(watts_to_dbm(sig.mean_power_watts))


def peak_power_dbm(sig: Signal) -> float:
    """Peak instantaneous power in dBm."""
    if len(sig) == 0:
        return float("-inf")
    return float(watts_to_dbm(np.max(np.abs(sig.samples) ** 2)))


def _tone_amplitude(sig: Signal, frequency_offset_hz: float) -> complex:
    """Complex amplitude of the tone at a baseband offset (DFT projection)."""
    if len(sig) == 0:
        raise SignalError("cannot measure a tone in an empty signal")
    t = sig.times
    reference = np.exp(-1j * 2.0 * np.pi * frequency_offset_hz * t)
    return complex(np.mean(sig.samples * reference))


def tone_power_dbm(sig: Signal, frequency_offset_hz: float) -> float:
    """Power of the tone at a given baseband offset, in dBm.

    This is the spectrum-analyzer marker measurement used to quantify
    leakage through the relay's four self-interference paths.
    """
    amplitude = _tone_amplitude(sig, frequency_offset_hz)
    return float(watts_to_dbm(abs(amplitude) ** 2))


def peak_tone_power_dbm(
    sig: Signal,
    frequency_offset_hz: float,
    span_hz: float = 5.0e3,
    step_hz: float = 100.0,
) -> float:
    """Peak tone power within a span around an offset, in dBm.

    Mimics a spectrum-analyzer marker peak search: oscillator CFO moves
    tones by up to a few kHz off their nominal position, and the §7.1
    isolation measurement must find them where they actually are.
    """
    if span_hz <= 0 or step_hz <= 0:
        raise SignalError("span and step must be positive")
    offsets = np.arange(
        frequency_offset_hz - span_hz / 2, frequency_offset_hz + span_hz / 2, step_hz
    )
    t = sig.times
    # One matrix of projections: rows are candidate offsets.
    reference = np.exp(-2j * np.pi * np.outer(offsets, t))
    amplitudes = np.abs(reference @ sig.samples) / len(sig)
    return float(watts_to_dbm(np.max(amplitudes) ** 2))


def phase_of_tone(sig: Signal, frequency_offset_hz: float) -> float:
    """Phase (radians, in (-pi, pi]) of the tone at a baseband offset."""
    return float(np.angle(_tone_amplitude(sig, frequency_offset_hz)))


def estimate_snr_db(sig: Signal, signal_band_hz: tuple) -> float:
    """Crude SNR estimate: in-band power over out-of-band power density.

    ``signal_band_hz`` is a (low, high) envelope-frequency interval. The
    out-of-band density is extrapolated over the signal band to estimate
    the in-band noise contribution.
    """
    low, high = signal_band_hz
    if not low < high:
        raise SignalError(f"invalid band ({low}, {high})")
    n = len(sig)
    if n == 0:
        raise SignalError("cannot estimate SNR of an empty signal")
    spectrum = np.fft.fftshift(np.fft.fft(sig.samples)) / n
    freqs = np.fft.fftshift(np.fft.fftfreq(n, d=1.0 / sig.sample_rate))
    in_band = (freqs >= low) & (freqs <= high)
    if not np.any(in_band) or np.all(in_band):
        raise SignalError("band does not split the spectrum")
    power_in = np.sum(np.abs(spectrum[in_band]) ** 2)
    density_out = np.mean(np.abs(spectrum[~in_band]) ** 2)
    noise_in_band = density_out * np.count_nonzero(in_band)
    signal_power = max(power_in - noise_in_band, 1e-30)
    return float(linear_to_db(signal_power / max(noise_in_band, 1e-30)))
