"""The shared schema of every committed report under ``benchmarks/reports``.

Every ``BENCH_*.json`` report and the soak trend file
(``SOAK_TREND.json``) share one envelope so the bench trajectory is
machine-checkable across PRs instead of a pile of ad-hoc dicts:

``schema_version``
    The integer schema revision (:data:`REPORT_SCHEMA_VERSION`).
``name``
    The report's stem — ``BENCH_<name>.json`` must carry ``name``.
``kind``
    ``"bench"`` for benchmark records, ``"soak_trend"`` for the
    committed soak trend file.
``metrics``
    The measured numbers. The unit-suffix discipline of reprolint U101
    extends to the wire: every **float** leaf key must end in one of
    :data:`METRIC_SUFFIXES` (``p99_latency_ms``, ``speedup_ratio``,
    ``mean_error_m`` ...). Integer leaves are counts and bools are
    flags; both are exempt, as is anything under ``context``.
``context``
    Free-form configuration the numbers were measured under (floors,
    loads, session counts); exempt from the suffix discipline.

The module also owns :func:`write_json_atomic` — the single way any
report reaches disk. Writes go to a same-directory temp file first and
``os.replace`` onto the target, so a crashed or failing run can never
leave a half-written report behind (the committed trend file is the
regression baseline; truncating it would silence the gate).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import ReportError

#: The current envelope revision. Bump on incompatible layout changes.
REPORT_SCHEMA_VERSION = 1

#: Recognized ``kind`` values of a report envelope.
REPORT_KINDS: Tuple[str, ...] = ("bench", "soak_trend")

#: Unit-suffix vocabulary for float metric keys: the reprolint
#: ``unitlang`` lexicon plus the dimensionless report suffixes
#: (``_ratio``/``_fraction``/``_abs``) and the soak horizon's
#: ``_hours``. A float that fits none of these is either misnamed or
#: belongs in ``context``.
METRIC_SUFFIXES: Tuple[str, ...] = (
    "s",
    "ms",
    "us",
    "ns",
    "hours",
    "m",
    "mm",
    "cm",
    "km",
    "hz",
    "khz",
    "mhz",
    "ghz",
    "db",
    "dbm",
    "dbi",
    "rad",
    "deg",
    "per_s",
    "bytes",
    "ratio",
    "fraction",
    "abs",
)


def metric_suffix_of(key: str) -> Optional[str]:
    """The unit-suffix token of a metric key, or ``None``.

    ``_per_s`` is the one two-token suffix; everything else is the
    trailing underscore-separated token.
    """
    lowered = key.lower()
    if lowered.endswith("_per_s"):
        return "per_s"
    if "_" not in lowered:
        return None
    token = lowered.rsplit("_", 1)[1]
    return token if token in METRIC_SUFFIXES else None


def _is_float_leaf(value: Any) -> bool:
    """Floats carry units; ints are counts and bools are flags."""
    return isinstance(value, float)


def validate_metrics(metrics: Any, path: str = "metrics") -> None:
    """Enforce the float-leaf suffix discipline, recursively.

    ``metrics`` may nest mappings and lists arbitrarily (a table of
    per-resolution rows, a per-campaign mapping); the discipline
    applies to every ``key: float`` leaf wherever it sits. Violations
    raise :class:`~repro.errors.ReportError` naming the offending
    dotted path.
    """
    if isinstance(metrics, Mapping):
        for key, value in metrics.items():
            if not isinstance(key, str):
                raise ReportError(
                    f"{path}: non-string metric key {key!r}"
                )
            child = f"{path}.{key}"
            if isinstance(value, (Mapping, list, tuple)):
                validate_metrics(value, child)
            elif _is_float_leaf(value) and metric_suffix_of(key) is None:
                known = ", ".join(f"_{s}" for s in METRIC_SUFFIXES)
                raise ReportError(
                    f"{child}: float metric {key!r} has no unit suffix "
                    f"(expected one of {known}; counts should be ints, "
                    "configuration belongs in 'context')"
                )
    elif isinstance(metrics, (list, tuple)):
        for index, item in enumerate(metrics):
            validate_metrics(item, f"{path}[{index}]")
    # Bare scalars at the top level are fine only via a keyed parent,
    # which the mapping branch already vetted.


def bench_report(
    name: str,
    metrics: Mapping[str, Any],
    context: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Build (and validate) one ``kind="bench"`` report envelope."""
    doc: Dict[str, Any] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "name": name,
        "kind": "bench",
        "context": dict(context or {}),
        "metrics": _plain(metrics),
    }
    validate_report(doc, name=name)
    return doc


def _plain(value: Any) -> Any:
    """Tuples -> lists so envelopes serialize canonically."""
    if isinstance(value, Mapping):
        return {key: _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    return value


def validate_report(doc: Any, name: Optional[str] = None) -> None:
    """Validate one report envelope (any :data:`REPORT_KINDS` kind).

    Checks the envelope fields, then applies the metric discipline —
    to ``metrics`` for a bench report, and to every trend entry's
    ``metrics`` for a soak trend (each violation names its entry
    index).
    """
    if not isinstance(doc, Mapping):
        raise ReportError(
            f"report must be a JSON object, got {type(doc).__name__}"
        )
    version = doc.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise ReportError("report is missing an integer 'schema_version'")
    if version > REPORT_SCHEMA_VERSION:
        raise ReportError(
            f"report schema_version {version} is newer than the "
            f"supported {REPORT_SCHEMA_VERSION}"
        )
    kind = doc.get("kind")
    if kind not in REPORT_KINDS:
        known = ", ".join(REPORT_KINDS)
        raise ReportError(f"report kind {kind!r} not one of: {known}")
    doc_name = doc.get("name")
    if not isinstance(doc_name, str) or not doc_name:
        raise ReportError("report is missing a nonempty 'name'")
    if name is not None and doc_name != name:
        raise ReportError(
            f"report name {doc_name!r} does not match its file stem "
            f"{name!r}"
        )
    if kind == "bench":
        if not isinstance(doc.get("metrics"), Mapping):
            raise ReportError("bench report is missing a 'metrics' object")
        validate_metrics(doc["metrics"])
    else:
        entries = doc.get("entries")
        if not isinstance(entries, list):
            raise ReportError("soak trend is missing an 'entries' list")
        for index, entry in enumerate(entries):
            if not isinstance(entry, Mapping):
                raise ReportError(
                    f"trend entry {index} is not an object "
                    f"(got {type(entry).__name__})"
                )
            if not isinstance(entry.get("metrics"), Mapping):
                raise ReportError(
                    f"trend entry {index} is missing a 'metrics' object"
                )
            validate_metrics(entry["metrics"], f"entries[{index}].metrics")


def canonical_json(doc: Any) -> str:
    """The one serialization every report is written in.

    Key-sorted, two-space indented, newline-terminated, and NaN-free
    (``allow_nan=False``: a NaN metric would break round-tripping and
    silently disable gate comparisons). ``canonical_json(json.loads(
    text)) == text`` for any text this function produced — the
    canonicality the trend property tests pin.
    """
    return json.dumps(doc, indent=2, sort_keys=True, allow_nan=False) + "\n"


def write_json_atomic(path: Union[str, Path], doc: Any) -> Path:
    """Canonically serialize ``doc`` to ``path``, atomically.

    Serialization happens *before* the target is touched and the bytes
    land in a same-directory temp file renamed over the target, so a
    mid-write crash (or an unserializable document) leaves any existing
    report byte-identical to what was committed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = canonical_json(doc)  # may raise: target untouched
    tmp_path = path.with_name(path.name + ".tmp")
    tmp_path.write_text(text, encoding="utf-8")
    os.replace(tmp_path, path)
    return path


def load_report(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate one report file (stem-checked for BENCH_*)."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ReportError(f"cannot read report {path}: {error}") from error
    stem = path.stem
    expected = stem[len("BENCH_"):] if stem.startswith("BENCH_") else None
    validate_report(doc, name=expected)
    return doc
