"""Sweep observers: the pluggable observability surface of the engine.

``repro.runtime.run_sweep(..., observers=[...])`` accepts any object
implementing the small :class:`SweepObserver` protocol:

``probe()``
    What the observer needs *inside* each task — returned as a
    picklable :class:`WorkerProbe` of boolean capabilities so worker
    processes know which collectors to arm without shipping the
    observer itself.
``on_sweep_start(name, tasks, config)``
    Called once before cache resolution/dispatch.
``on_task(record, outcome)``
    Called once per task, **in task order**, after all tasks finished —
    the reduction point where worker telemetry (spans, metric
    snapshots, peaks, profiles) merges deterministically regardless of
    scheduling.
``on_sweep_end(manifest)``
    Called once with the finished :class:`~repro.runtime.manifest.RunManifest`.

The concrete observers here cover the tentpole surface: structured
tracing (:class:`TraceObserver`), the metrics registry
(:class:`MetricsObserver`), and the opt-in profiling hooks
(:class:`TraceMallocObserver`, :class:`CProfileObserver`) that replace
the old hard-coded ``trace_memory`` flag.

This module must not import from ``repro.runtime`` (the engine imports
us), so engine-side types appear as ``Any`` in signatures.
"""

from __future__ import annotations

import cProfile
import pstats
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.obs import metrics as metrics_mod
from repro.obs import tracing as tracing_mod
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, render_span_tree, write_spans_jsonl


@dataclass(frozen=True)
class WorkerProbe:
    """Picklable per-task capability flags shipped to workers."""

    trace: bool = False
    metrics: bool = False
    trace_malloc: bool = False
    profile: bool = False

    @property
    def enabled(self) -> bool:
        """Whether any collector is armed."""
        return self.trace or self.metrics or self.trace_malloc or self.profile

    def merged(self, other: "WorkerProbe") -> "WorkerProbe":
        """Union of two probes' capabilities."""
        return WorkerProbe(
            trace=self.trace or other.trace,
            metrics=self.metrics or other.metrics,
            trace_malloc=self.trace_malloc or other.trace_malloc,
            profile=self.profile or other.profile,
        )


#: The do-nothing probe (every flag off).
NULL_PROBE = WorkerProbe()


def combined_probe(observers: Iterable[Any]) -> WorkerProbe:
    """Union of every observer's :meth:`~SweepObserver.probe`."""
    probe = NULL_PROBE
    for observer in observers:
        probe = probe.merged(observer.probe())
    return probe


@dataclass
class TaskTelemetry:
    """What one task's collectors measured (rides in the task envelope).

    Every field is plain picklable data — serialized span dicts, a
    metrics snapshot, an integer peak, profile rows — so the envelope
    crosses the process boundary unchanged.
    """

    spans: Optional[List[Dict[str, Any]]] = None
    metrics: Optional[Dict[str, Any]] = None
    peak_memory_bytes: Optional[int] = None
    profile_rows: Optional[List[Dict[str, Any]]] = None


@contextmanager
def probed(probe: WorkerProbe) -> Iterator[TaskTelemetry]:
    """Arm the collectors ``probe`` asks for around one task body.

    A *fresh* tracer/registry is activated for the scope (the previous
    ones are restored on exit), so a serial in-process task records
    exactly the same structures a worker-process task would — the
    foundation of the serial==parallel telemetry property.
    """
    telemetry = TaskTelemetry()
    tracer = Tracer() if probe.trace else None
    registry = MetricsRegistry() if probe.metrics else None
    previous_tracer = (
        tracing_mod.activate_tracer(tracer) if probe.trace else None
    )
    previous_registry = (
        metrics_mod.activate_registry(registry) if probe.metrics else None
    )
    profiler = cProfile.Profile() if probe.profile else None
    if probe.trace_malloc:
        tracemalloc.start()
    if profiler is not None:
        profiler.enable()
    try:
        yield telemetry
    finally:
        if profiler is not None:
            profiler.disable()
            telemetry.profile_rows = _profile_rows(profiler)
        if probe.trace_malloc:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            telemetry.peak_memory_bytes = int(peak)
        if probe.metrics:
            metrics_mod.activate_registry(previous_registry)
            assert registry is not None
            telemetry.metrics = registry.snapshot()
        if probe.trace:
            tracing_mod.activate_tracer(previous_tracer)
            assert tracer is not None
            telemetry.spans = tracer.root_dicts()


def _profile_rows(
    profiler: cProfile.Profile, top_n: int = 25
) -> List[Dict[str, Any]]:
    """Top-N rows by cumulative time, as picklable dicts."""
    stats = pstats.Stats(profiler)
    rows = []
    for (filename, line, func), (
        _cc,
        ncalls,
        tottime_s,
        cumtime_s,
        _callers,
    ) in stats.stats.items():  # type: ignore[attr-defined]
        rows.append(
            {
                "function": f"{filename}:{line}:{func}",
                "ncalls": int(ncalls),
                "tottime_s": float(tottime_s),
                "cumtime_s": float(cumtime_s),
            }
        )
    rows.sort(key=lambda row: (-row["cumtime_s"], row["function"]))
    return rows[:top_n]


class SweepObserver:
    """Base class / protocol for sweep observers (all hooks optional)."""

    def probe(self) -> WorkerProbe:
        """Capabilities this observer needs inside each task."""
        return NULL_PROBE

    def on_sweep_start(self, name: str, tasks: Any, config: Any) -> None:
        """Called once before cache resolution and dispatch."""

    def on_task(self, record: Any, outcome: Any) -> None:
        """Called per task in task order, after the sweep finishes."""

    def on_sweep_end(self, manifest: Any) -> None:
        """Called once with the finished run manifest."""


class TraceObserver(SweepObserver):
    """Collects span trees and optionally writes ``<sweep>.trace.jsonl``.

    The JSONL file holds one line per span tree: first the engine's own
    spans (``task: null``), then each task's spans in task order.
    """

    def __init__(self, out_dir: "Optional[str | Path]" = None) -> None:
        self.out_dir = None if out_dir is None else Path(out_dir)
        self.manifests: List[Any] = []
        self.last_path: Optional[Path] = None

    def probe(self) -> WorkerProbe:
        """Tasks must run under a fresh tracer."""
        return WorkerProbe(trace=True)

    def on_sweep_end(self, manifest: Any) -> None:
        """Remember the manifest; write the JSONL trace when configured."""
        self.manifests.append(manifest)
        if self.out_dir is None:
            return
        entries: List[Dict[str, Any]] = [
            {"task": None, "span": span_dict}
            for span_dict in getattr(manifest, "spans", [])
        ]
        for record in manifest.tasks:
            for span_dict in record.spans or []:
                entries.append(
                    {
                        "task": record.index,
                        "label": record.label,
                        "span": span_dict,
                    }
                )
        self.last_path = write_spans_jsonl(
            self.out_dir / f"{manifest.sweep}.trace.jsonl", entries
        )

    def report(self, manifest: Optional[Any] = None) -> str:
        """Engine span tree of ``manifest`` (default: the last sweep)."""
        manifest = manifest or (self.manifests[-1] if self.manifests else None)
        if manifest is None:
            return "(no sweeps traced)"
        return render_span_tree(
            list(getattr(manifest, "spans", [])),
            total_wall_time_s=manifest.total_wall_time_s,
        )


class MetricsObserver(SweepObserver):
    """Owns a registry; merges every task's metric snapshot in order.

    The engine activates :attr:`registry` for the duration of the sweep
    so engine-side counters (cache hits/misses, dispatched tasks,
    corrupt-entry self-heals) land here directly; task-side deltas
    arrive through :meth:`on_task`.
    """

    def __init__(self, out_dir: "Optional[str | Path]" = None) -> None:
        self.registry = MetricsRegistry()
        self.out_dir = None if out_dir is None else Path(out_dir)
        self.last_path: Optional[Path] = None

    def probe(self) -> WorkerProbe:
        """Tasks must run against a fresh registry."""
        return WorkerProbe(metrics=True)

    def on_task(self, record: Any, outcome: Any) -> None:
        """Merge the task's metric snapshot (task order == determinism)."""
        telemetry = getattr(outcome, "telemetry", None)
        if telemetry is not None and telemetry.metrics is not None:
            self.registry.merge_snapshot(telemetry.metrics)

    def on_sweep_end(self, manifest: Any) -> None:
        """Write ``<sweep>.metrics.json`` when configured."""
        if self.out_dir is not None:
            self.last_path = self.registry.save_json(
                self.out_dir / f"{manifest.sweep}.metrics.json"
            )

    def report(self) -> str:
        """Text rendering of the merged registry."""
        return self.registry.render_text()


class TraceMallocObserver(SweepObserver):
    """Per-task peak traced allocations (the old ``trace_memory`` flag)."""

    def __init__(self) -> None:
        self.peaks_by_label: Dict[str, int] = {}

    def probe(self) -> WorkerProbe:
        """Arm tracemalloc around each task."""
        return WorkerProbe(trace_malloc=True)

    def on_task(self, record: Any, outcome: Any) -> None:
        """Collect the task's peak (also lands in its manifest record)."""
        telemetry = getattr(outcome, "telemetry", None)
        if telemetry is not None and telemetry.peak_memory_bytes is not None:
            self.peaks_by_label[record.label] = telemetry.peak_memory_bytes


class CProfileObserver(SweepObserver):
    """Aggregates per-task cProfile rows across the sweep."""

    def __init__(self, top_n: int = 25) -> None:
        self.top_n = top_n
        self.rows_by_function: Dict[str, Dict[str, Any]] = {}

    def probe(self) -> WorkerProbe:
        """Arm cProfile around each task."""
        return WorkerProbe(profile=True)

    def on_task(self, record: Any, outcome: Any) -> None:
        """Merge the task's profile rows by function identity."""
        telemetry = getattr(outcome, "telemetry", None)
        if telemetry is None or telemetry.profile_rows is None:
            return
        for row in telemetry.profile_rows:
            merged = self.rows_by_function.get(row["function"])
            if merged is None:
                self.rows_by_function[row["function"]] = dict(row)
            else:
                merged["ncalls"] += row["ncalls"]
                merged["tottime_s"] += row["tottime_s"]
                merged["cumtime_s"] += row["cumtime_s"]

    def top_rows(self) -> List[Dict[str, Any]]:
        """The aggregated top-N rows by cumulative time."""
        rows = sorted(
            self.rows_by_function.values(),
            key=lambda row: (-row["cumtime_s"], row["function"]),
        )
        return rows[: self.top_n]

    def report(self) -> str:
        """Fixed-width top-N table."""
        rows = self.top_rows()
        if not rows:
            return "(no profile collected)"
        lines = [f"{'cumtime':>10}  {'tottime':>10}  {'ncalls':>8}  function"]
        for row in rows:
            lines.append(
                f"{row['cumtime_s']:>9.3f}s  {row['tottime_s']:>9.3f}s  "
                f"{row['ncalls']:>8d}  {row['function']}"
            )
        return "\n".join(lines)


def task_span_coverage(manifest: Any) -> float:
    """Fraction of the sweep's wall time covered by task root spans.

    The acceptance criterion for the tracing layer: in a serial run the
    per-task root spans (``task.execute``) should account for >= 90% of
    the measured end-to-end wall time — anything less means untraced
    engine overhead.
    """
    total_s = float(getattr(manifest, "total_wall_time_s", 0.0))
    if total_s <= 0.0:
        return 0.0
    covered_s = 0.0
    for record in manifest.tasks:
        for span_dict in record.spans or []:
            covered_s += float(span_dict.get("wall_time_s", 0.0))
    return covered_s / total_s
