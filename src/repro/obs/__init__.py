"""Observability: structured tracing, metrics, and profiling hooks.

The package is stdlib-only and import-light so instrumentation can
live in the hottest code paths:

* :mod:`repro.obs.tracing` — nested :func:`span` context managers
  recording wall/CPU time into a tree; no-ops unless a tracer is
  active.
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry
  whose snapshots merge order-insensitively; :func:`count`/
  :func:`observe`/:func:`set_gauge` are no-ops unless a registry is
  active.
* :mod:`repro.obs.observers` — the :class:`SweepObserver` protocol the
  sweep engine accepts via ``run_sweep(..., observers=[...])``, plus
  the concrete trace/metrics/tracemalloc/cProfile observers.
* :mod:`repro.obs.reports` — the shared envelope + unit-suffix schema
  of every committed ``benchmarks/reports`` file, its canonical JSON
  serialization, and the atomic writer all reports go through.

Nothing here imports ``repro.runtime``; the engine imports us.
"""

from __future__ import annotations

from repro.obs.metrics import (
    MetricsRegistry,
    activate_registry,
    active_registry,
    count,
    observe,
    set_gauge,
)
from repro.obs.reports import (
    METRIC_SUFFIXES,
    REPORT_KINDS,
    REPORT_SCHEMA_VERSION,
    bench_report,
    canonical_json,
    load_report,
    metric_suffix_of,
    validate_metrics,
    validate_report,
    write_json_atomic,
)
from repro.obs.observers import (
    NULL_PROBE,
    CProfileObserver,
    MetricsObserver,
    SweepObserver,
    TaskTelemetry,
    TraceMallocObserver,
    TraceObserver,
    WorkerProbe,
    combined_probe,
    probed,
    task_span_coverage,
)
from repro.obs.tracing import (
    Span,
    Tracer,
    activate_tracer,
    active_tracer,
    cpu_clock_s,
    render_span_tree,
    span,
    wall_clock_s,
    write_spans_jsonl,
)

__all__ = [
    "Span",
    "Tracer",
    "span",
    "activate_tracer",
    "active_tracer",
    "wall_clock_s",
    "cpu_clock_s",
    "render_span_tree",
    "write_spans_jsonl",
    "MetricsRegistry",
    "count",
    "observe",
    "set_gauge",
    "activate_registry",
    "active_registry",
    "SweepObserver",
    "TraceObserver",
    "MetricsObserver",
    "TraceMallocObserver",
    "CProfileObserver",
    "WorkerProbe",
    "TaskTelemetry",
    "NULL_PROBE",
    "combined_probe",
    "probed",
    "task_span_coverage",
    "REPORT_SCHEMA_VERSION",
    "REPORT_KINDS",
    "METRIC_SUFFIXES",
    "metric_suffix_of",
    "validate_metrics",
    "validate_report",
    "bench_report",
    "canonical_json",
    "write_json_atomic",
    "load_report",
]
