"""Structured tracing: nested spans with wall/CPU time.

A *span* is one named, attributed region of work; spans nest, forming a
tree per traced region of code. Library code opens spans through the
module-level :func:`span` helper::

    with span("sar.project", n_poses=64, n_points=120_000):
        ...

When no tracer is active (the default), :func:`span` returns a shared
no-op context manager whose cost is one module-global read — hot loops
stay hot. Activating a :class:`Tracer` (the sweep engine does this when
a trace observer is attached) makes the same call sites record a
:class:`Span` tree with wall time (``time.perf_counter``) and CPU time
(``time.process_time``).

Span trees serialize to plain dicts (JSON-lines friendly) and expose a
timing-free :meth:`Span.structure` projection, which is what the
serial-vs-parallel determinism property compares: two backends must
produce identical span *structure* even though timings differ.

This module is intentionally zero-dependency (stdlib only) and must
not import from ``repro.runtime`` — the engine imports us.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple


def wall_clock_s() -> float:
    """Monotonic wall-clock seconds (the package's one sanctioned clock).

    Reprolint O501 bans ad-hoc ``time.time()``/``time.perf_counter()``
    timing outside ``repro.obs`` and ``repro.runtime``; code that needs
    a raw timestamp difference calls this instead.
    """
    return time.perf_counter()


def cpu_clock_s() -> float:
    """Process CPU seconds (system + user) for CPU-time attribution."""
    return time.process_time()


@dataclass
class Span:
    """One traced region: name, attributes, timings, children."""

    name: str
    attrs: Tuple[Tuple[str, Any], ...] = ()
    wall_time_s: float = 0.0
    cpu_time_s: float = 0.0
    children: List["Span"] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (recursive)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "wall_time_s": self.wall_time_s,
            "cpu_time_s": self.cpu_time_s,
            "children": [child.to_dict() for child in self.children],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output."""
        return Span(
            name=str(data["name"]),
            attrs=tuple(sorted(dict(data.get("attrs", {})).items())),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            cpu_time_s=float(data.get("cpu_time_s", 0.0)),
            children=[
                Span.from_dict(child) for child in data.get("children", [])
            ],
        )

    def structure(self) -> Tuple[Any, ...]:
        """Timing-free projection: (name, attrs, child structures).

        Serial and parallel sweeps must agree on this value for every
        task — names, attributes, counts, and parent edges are all
        deterministic; only the recorded times are not.
        """
        return (
            self.name,
            self.attrs,
            tuple(child.structure() for child in self.children),
        )

    def walk(self) -> Iterator["Span"]:
        """Yield this span then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class Tracer:
    """Collects a forest of spans for one region of execution.

    Not thread-safe by design: the engine gives each task (and each
    worker process) its own tracer, so there is no shared mutable
    state to race on.
    """

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the innermost open span (or a root)."""
        node = Span(name=name, attrs=tuple(sorted(attrs.items())))
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        wall_start_s = time.perf_counter()
        cpu_start_s = time.process_time()
        try:
            yield node
        finally:
            node.wall_time_s = time.perf_counter() - wall_start_s
            node.cpu_time_s = time.process_time() - cpu_start_s
            self._stack.pop()

    def root_dicts(self) -> List[Dict[str, Any]]:
        """Every root span serialized (the task-envelope payload)."""
        return [root.to_dict() for root in self.roots]


class _NullSpanContext:
    """Shared no-op context manager returned when tracing is inactive."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpanContext()

#: The process-local active tracer; ``None`` means spans are no-ops.
_ACTIVE_TRACER: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    """The tracer currently receiving spans, if any."""
    return _ACTIVE_TRACER


def activate_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as the active one; returns the previous one.

    Callers restore the returned tracer when done so nested scopes
    (engine sweep -> serial in-process task) unwind correctly.
    """
    global _ACTIVE_TRACER
    previous = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer
    return previous


@contextmanager
def activated(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Scope with ``tracer`` active; ``None`` leaves tracing untouched."""
    if tracer is None:
        yield None
        return
    previous = activate_tracer(tracer)
    try:
        yield tracer
    finally:
        activate_tracer(previous)


def span(name: str, **attrs: Any) -> Any:
    """Context manager recording one span on the active tracer.

    The instrumentation call sites throughout the package use this; it
    costs a single global read when tracing is off.
    """
    tracer = _ACTIVE_TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def write_spans_jsonl(
    path: "str | Path", entries: Iterable[Dict[str, Any]]
) -> Path:
    """Write span entries as JSON lines (one entry per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        for entry in entries:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def render_span_tree(
    spans: "List[Dict[str, Any]]", total_wall_time_s: Optional[float] = None
) -> str:
    """Indented text rendering of serialized span trees.

    Percentages are of ``total_wall_time_s`` when given, else of the
    summed root wall times.
    """
    if not spans:
        return "(no spans recorded)"
    denominator_s = total_wall_time_s
    if denominator_s is None or denominator_s <= 0.0:
        denominator_s = sum(s.get("wall_time_s", 0.0) for s in spans) or 1.0
    lines: List[str] = []

    def _render(node: Dict[str, Any], depth: int) -> None:
        share = 100.0 * node.get("wall_time_s", 0.0) / denominator_s
        attrs = node.get("attrs", {})
        attr_text = (
            " [" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
            if attrs
            else ""
        )
        lines.append(
            f"{'  ' * depth}{node['name']}{attr_text}  "
            f"{node.get('wall_time_s', 0.0) * 1e3:.1f} ms  {share:.1f}%"
        )
        for child in node.get("children", []):
            _render(child, depth + 1)

    for root in spans:
        _render(root, 0)
    return "\n".join(lines)
