"""Metrics registry: counters, gauges, and mergeable histograms.

Instrumented code reports through the module-level helpers
(:func:`count`, :func:`set_gauge`, :func:`observe`), which are no-ops
unless a :class:`MetricsRegistry` is active — the same
activate/restore discipline as :mod:`repro.obs.tracing`, so hot loops
pay one global read when metrics are off.

Everything a registry stores merges *order-insensitively*: counters
add, gauges take the later write, histograms add their counts/sums and
widen their min/max and power-of-two buckets. That is what lets the
sweep engine run each task against a fresh registry (in-process or in
a worker), ship the snapshot back in the task envelope, and reduce the
snapshots in task order — the merged totals are identical between the
serial and process backends, a property the hypothesis suite asserts.
"""

from __future__ import annotations

import json
import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, Optional


@dataclass
class HistogramState:
    """Summary + power-of-two bucket histogram of observed values."""

    count: int = 0
    total: float = 0.0
    min_value: float = math.inf
    max_value: float = -math.inf
    buckets: Dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        """Fold one observation in."""
        value = float(value)
        self.count += 1
        self.total += value
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)
        bucket = _bucket_of(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    def merge(self, other: "HistogramState") -> None:
        """Fold another histogram in (order-insensitive)."""
        self.count += other.count
        self.total += other.total
        self.min_value = min(self.min_value, other.min_value)
        self.max_value = max(self.max_value, other.max_value)
        for bucket, n in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + n

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping."""
        return {
            "count": self.count,
            "total": self.total,
            "min": None if self.count == 0 else self.min_value,
            "max": None if self.count == 0 else self.max_value,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "HistogramState":
        """Rebuild from :meth:`to_dict` output."""
        state = HistogramState(
            count=int(data.get("count", 0)),
            total=float(data.get("total", 0.0)),
            min_value=math.inf
            if data.get("min") is None
            else float(data["min"]),
            max_value=-math.inf
            if data.get("max") is None
            else float(data["max"]),
        )
        state.buckets = {
            int(k): int(v) for k, v in data.get("buckets", {}).items()
        }
        return state


def _bucket_of(value: float) -> int:
    """Power-of-two bucket index: the binary exponent of ``|value|``."""
    if value == 0.0 or not math.isfinite(value):
        return 0
    return math.frexp(abs(value))[1]


class MetricsRegistry:
    """Named counters, gauges, and histograms with snapshot/merge."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, HistogramState] = {}

    def count(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its most recent value."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold one observation into histogram ``name``."""
        state = self.histograms.get(name)
        if state is None:
            state = self.histograms[name] = HistogramState()
        state.observe(value)

    def snapshot(self) -> Dict[str, Any]:
        """Serializable, mergeable view of everything recorded."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: state.to_dict()
                for name, state in self.histograms.items()
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold one :meth:`snapshot` in (counters add, gauges overwrite)."""
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            incoming = HistogramState.from_dict(data)
            state = self.histograms.get(name)
            if state is None:
                self.histograms[name] = incoming
            else:
                state.merge(incoming)

    def render_text(self) -> str:
        """Sorted fixed-width text report of every metric."""
        lines = []
        for name in sorted(self.counters):
            lines.append(f"counter    {name} = {_fmt(self.counters[name])}")
        for name in sorted(self.gauges):
            lines.append(f"gauge      {name} = {_fmt(self.gauges[name])}")
        for name in sorted(self.histograms):
            state = self.histograms[name]
            mean = state.total / state.count if state.count else 0.0
            lines.append(
                f"histogram  {name}: n={state.count} mean={_fmt(mean)} "
                f"min={_fmt(state.min_value)} max={_fmt(state.max_value)}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def to_json(self, indent: int = 2) -> str:
        """Serialized snapshot."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def save_json(self, path: "str | Path") -> Path:
        """Write the snapshot to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path


def _fmt(value: float) -> str:
    """Integers render bare; floats keep short precision."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


#: The process-local active registry; ``None`` means metrics are no-ops.
_ACTIVE_REGISTRY: Optional[MetricsRegistry] = None


def active_registry() -> Optional[MetricsRegistry]:
    """The registry currently receiving metrics, if any."""
    return _ACTIVE_REGISTRY


def activate_registry(
    registry: Optional[MetricsRegistry],
) -> Optional[MetricsRegistry]:
    """Install ``registry`` as active; returns the previous one."""
    global _ACTIVE_REGISTRY
    previous = _ACTIVE_REGISTRY
    _ACTIVE_REGISTRY = registry
    return previous


@contextmanager
def activated(
    registry: Optional[MetricsRegistry],
) -> Iterator[Optional[MetricsRegistry]]:
    """Scope with ``registry`` active; ``None`` leaves metrics untouched."""
    if registry is None:
        yield None
        return
    previous = activate_registry(registry)
    try:
        yield registry
    finally:
        activate_registry(previous)


def count(name: str, amount: float = 1.0) -> None:
    """Increment a counter on the active registry (no-op when none)."""
    registry = _ACTIVE_REGISTRY
    if registry is not None:
        registry.count(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the active registry (no-op when none)."""
    registry = _ACTIVE_REGISTRY
    if registry is not None:
        registry.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the active registry."""
    registry = _ACTIVE_REGISTRY
    if registry is not None:
        registry.observe(name, value)
