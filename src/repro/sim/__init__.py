"""End-to-end simulation: worlds, scan events, scenarios, result stats."""

from __future__ import annotations

from repro.sim.results import (
    empirical_cdf,
    percentile,
    summarize,
    Summary,
    format_table,
)
from repro.sim.readrate import RangeModel, RangeConfig
from repro.sim.world import World, WorldConfig, TagObservation
from repro.sim.inventory_db import (
    Item,
    ItemDatabase,
    LocatedItem,
    ReconciliationReport,
)
from repro.sim.scenarios import (
    aperture_microbenchmark,
    distance_microbenchmark,
    fig12_trial,
    los_heatmap_scenario,
    multipath_heatmap_scenario,
)

__all__ = [
    "empirical_cdf",
    "percentile",
    "summarize",
    "Summary",
    "format_table",
    "RangeModel",
    "RangeConfig",
    "World",
    "WorldConfig",
    "TagObservation",
    "fig12_trial",
    "aperture_microbenchmark",
    "distance_microbenchmark",
    "los_heatmap_scenario",
    "multipath_heatmap_scenario",
    "Item",
    "ItemDatabase",
    "LocatedItem",
    "ReconciliationReport",
]
