"""The end-to-end world: environment + reader + drone-relay + tags.

``World.scan`` flies the drone along a trajectory and produces, for
every tag the relay reached, the series of through-relay channel
measurements that the localization pipeline consumes — gated by the
same physics the paper's system obeys: relay stability (Eq. 3), tag
power-up, reader decode SNR, and (optionally) Gen2 anti-collision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.channel.environment import Environment
from repro.channel.pathloss import free_space_path_loss_db
from repro.constants import (
    RELAY_FREQUENCY_SHIFT_HZ,
    UHF_CENTER_FREQUENCY,
)
from repro.errors import ConfigurationError
from repro.hardware.tag import PassiveTag
from repro.localization.measurement import (
    MeasurementModel,
    ThroughRelayMeasurement,
)
from repro.localization.pipeline import Localizer, LocalizationResult
from repro.mobility.drone import Drone
from repro.mobility.groundtruth import OptiTrack
from repro.mobility.trajectory import Trajectory, TrajectorySample
from repro.sim.events import inventory_at_pose
from repro.sim.readrate import RangeConfig, RangeModel


@dataclass(frozen=True)
class WorldConfig:
    """Physics and hardware parameters of a scan."""

    frequency_hz: float = UHF_CENTER_FREQUENCY
    frequency_shift_hz: float = RELAY_FREQUENCY_SHIFT_HZ
    sample_spacing_m: float = 0.1
    base_estimate_snr_db: float = 35.0
    """Channel-estimate SNR when the reader-relay leg is 5 m."""
    snr_reference_distance_m: float = 5.0
    use_gen2_mac: bool = True
    range_config: RangeConfig = field(default_factory=RangeConfig)

    def __post_init__(self) -> None:
        if self.sample_spacing_m <= 0:
            raise ConfigurationError("sample spacing must be positive")
        if self.snr_reference_distance_m <= 0:
            raise ConfigurationError("SNR reference distance must be positive")


@dataclass
class TagObservation:
    """Everything a scan learned about one tag."""

    epc: int
    true_position: np.ndarray
    measurements: List[ThroughRelayMeasurement] = field(default_factory=list)

    @property
    def n_reads(self) -> int:
        """Number of successful reads collected for this tag."""
        return len(self.measurements)


class World:
    """A simulated deployment.

    Parameters
    ----------
    environment:
        Walls and reflectors.
    reader_position:
        The stationary reader.
    tags:
        The tag population (positions inside the environment).
    rng:
        Randomness for fading, MAC slots, jitter, and estimate noise.
    """

    def __init__(
        self,
        environment: Environment,
        reader_position,
        tags: Sequence[PassiveTag],
        rng: np.random.Generator,
        config: WorldConfig = WorldConfig(),
        drone: Optional[Drone] = None,
        groundtruth: Optional[OptiTrack] = None,
    ) -> None:
        self.environment = environment
        self.reader_position = np.asarray(reader_position, dtype=float)
        self.tags = list(tags)
        epcs = [t.epc_int for t in self.tags]
        if len(set(epcs)) != len(epcs):
            raise ConfigurationError("tag EPCs must be unique")
        self.rng = rng
        self.config = config
        self.drone = drone or Drone()
        self.groundtruth = groundtruth or OptiTrack()
        self.range_model = RangeModel(config.range_config)
        self.measurement_model = MeasurementModel(
            environment=environment,
            reader_position=reader_position,
            reader_frequency_hz=config.frequency_hz,
            frequency_shift_hz=config.frequency_shift_hz,
        )

    # -- per-pose physics gates ---------------------------------------------------

    def relay_operational(self, drone_position) -> bool:
        """Stability (Eq. 3) plus reference-RFID reachability."""
        d = float(np.linalg.norm(drone_position - self.reader_position))
        if d <= 0.0:
            return False
        wall = self.environment.obstruction_loss_db(
            self.reader_position, drone_position
        )
        loss = free_space_path_loss_db(d, self.config.frequency_hz) + wall
        return loss <= self.config.range_config.relay_isolation_db

    def tag_powered(self, drone_position, tag: PassiveTag) -> bool:
        """Does the relay's downlink light this tag at this pose?"""
        d = float(np.linalg.norm(np.asarray(tag.position) - drone_position))
        if d <= 0.0:
            return True
        reader_d = float(np.linalg.norm(drone_position - self.reader_position))
        return self.range_model.relay_read(
            max(reader_d, 0.1),
            rng=self.rng,
            line_of_sight=self.environment.has_line_of_sight(
                self.reader_position, drone_position
            ),
            relay_tag_distance_m=d,
        )

    def estimate_snr_db(self, drone_position, tag: PassiveTag) -> float:
        """Channel-estimate SNR heuristic: falls with both half-links."""
        c = self.config
        reader_d = max(
            float(np.linalg.norm(drone_position - self.reader_position)), 0.5
        )
        tag_d = max(
            float(np.linalg.norm(np.asarray(tag.position) - drone_position)), 0.3
        )
        snr = c.base_estimate_snr_db
        snr -= 40.0 * np.log10(reader_d / c.snr_reference_distance_m)
        snr -= 20.0 * np.log10(max(tag_d / 2.0, 1.0))
        snr -= self.environment.obstruction_loss_db(
            self.reader_position, drone_position
        )
        return float(snr)

    # -- scanning -----------------------------------------------------------------

    def scan(self, trajectory: Trajectory) -> Dict[int, TagObservation]:
        """Fly the path and collect through-relay measurements per tag."""
        flown = self.drone.fly(trajectory, self.config.sample_spacing_m, self.rng)
        observed = self.groundtruth.observe_trajectory(flown, self.rng)
        observations = {
            t.epc_int: TagObservation(t.epc_int, np.asarray(t.position, float))
            for t in self.tags
        }
        for true_pose, seen_pose in zip(flown, observed):
            if not self.relay_operational(true_pose.position):
                continue
            powered = {
                t.epc_int: self.tag_powered(true_pose.position, t)
                for t in self.tags
            }
            if self.config.use_gen2_mac:
                read_epcs = inventory_at_pose(
                    self.tags, lambda t: powered[t.epc_int], self.rng
                )
            else:
                read_epcs = {epc for epc, on in powered.items() if on}
            for tag in self.tags:
                if tag.epc_int not in read_epcs:
                    continue
                snr = self.estimate_snr_db(true_pose.position, tag)
                measurement = self.measurement_model.measure(
                    true_pose.position,
                    tag.position,
                    rng=self.rng,
                    snr_db=snr,
                    time=true_pose.time,
                )
                # The localizer only knows the OptiTrack pose.
                observations[tag.epc_int].measurements.append(
                    ThroughRelayMeasurement(
                        position=seen_pose.position,
                        h_target=measurement.h_target,
                        h_reference=measurement.h_reference,
                        snr_db=measurement.snr_db,
                        time=measurement.time,
                    )
                )
        return observations

    def localize(
        self,
        observation: TagObservation,
        localizer: Optional[Localizer] = None,
        **locate_kwargs,
    ) -> LocalizationResult:
        """Localize one scanned tag with RFly's pipeline."""
        localizer = localizer or Localizer(frequency_hz=self.config.frequency_hz)
        return localizer.locate(observation.measurements, **locate_kwargs)
