"""Canned experiment scenarios (legacy surface).

The geometry that used to be hard-coded here now lives declaratively in
:mod:`repro.scenarios`: each evaluation world is a named
:class:`~repro.scenarios.spec.Scenario` spec under
``repro/scenarios/library/`` and the builders in
:mod:`repro.scenarios.trials` lower a spec + seed to one
:class:`LocalizationScenario`. The free functions below remain as
deprecation shims that resolve the matching library scenario through
the trial registry — byte-for-byte identical output, so every golden
regenerates exactly.

The measurement helpers (:func:`_measure_with_jitter`,
:func:`_tag_side_grid`, :func:`_correlated_wander`,
:func:`projected_distance_snr_db`) are *not* deprecated: the trial
builders call back into them.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, List, Tuple

import numpy as np

from repro.constants import UHF_CENTER_FREQUENCY
from repro.errors import ConfigurationError
from repro.localization.grid import Grid2D
from repro.localization.measurement import (
    MeasurementModel,
    ThroughRelayMeasurement,
)
from repro.mobility.robot import GroundRobot
from repro.mobility.trajectory import LineTrajectory

F = UHF_CENTER_FREQUENCY


@dataclass(frozen=True)
class LocalizationScenario:
    """Inputs a localization experiment needs for one trial.

    The calibration gains are dimensionless *linear* amplitude ratios
    (|G / C|), hence the ``_linear`` suffix; the unsuffixed names
    remain as deprecated read-only aliases.
    """

    measurements: List[ThroughRelayMeasurement]
    tag_position: np.ndarray
    search_grid: Grid2D
    trajectory_positions: np.ndarray
    calibration_gain_linear: float
    description: str = ""
    rssi_calibration_gain_linear: float = 0.0

    def __post_init__(self) -> None:
        if self.rssi_calibration_gain_linear == 0.0:
            object.__setattr__(
                self,
                "rssi_calibration_gain_linear",
                self.calibration_gain_linear,
            )

    @property
    def calibration_gain(self) -> float:
        """Deprecated alias of :attr:`calibration_gain_linear`."""
        warnings.warn(
            "LocalizationScenario.calibration_gain is deprecated; use "
            "calibration_gain_linear",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.calibration_gain_linear

    @property
    def rssi_calibration_gain(self) -> float:
        """Deprecated alias of :attr:`rssi_calibration_gain_linear`."""
        warnings.warn(
            "LocalizationScenario.rssi_calibration_gain is deprecated; "
            "use rssi_calibration_gain_linear",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.rssi_calibration_gain_linear


_FIELD_RENAMES = (
    ("calibration_gain", "calibration_gain_linear"),
    ("rssi_calibration_gain", "rssi_calibration_gain_linear"),
)

_dataclass_init = LocalizationScenario.__init__


def _compat_init(self: LocalizationScenario, *args: Any, **kwargs: Any) -> None:
    """Accept the pre-rename keyword arguments with a warning."""
    for old, new in _FIELD_RENAMES:
        if old in kwargs:
            warnings.warn(
                f"LocalizationScenario({old}=...) is deprecated; use "
                f"{new}=...",
                DeprecationWarning,
                stacklevel=2,
            )
            kwargs[new] = kwargs.pop(old)
    _dataclass_init(self, *args, **kwargs)


LocalizationScenario.__init__ = _compat_init  # type: ignore[method-assign]


def _measure_with_jitter(
    model: MeasurementModel,
    trajectory: LineTrajectory,
    tag_position,
    rng: np.random.Generator,
    snr_db: float,
    spacing_m: float = 0.05,
    jitter_std_m: float = 0.005,
) -> Tuple[List[ThroughRelayMeasurement], np.ndarray]:
    """Sample a path with track jitter and measure at each pose."""
    robot = GroundRobot(track_jitter_std_m=jitter_std_m)
    samples = robot.drive(trajectory, spacing_m, rng)
    measurements = model.measure_along(samples, tag_position, rng, snr_db)
    positions = np.stack([s.position for s in samples])
    return measurements, positions


def _tag_side_grid(
    positions: np.ndarray, tag_side: float, margin: float, resolution: float
) -> Grid2D:
    """A search grid on the scanned side of the flight line.

    A straight flight line cannot distinguish the two sides (mirror
    ambiguity); deployments scan one side of an aisle at a time, which
    is the prior this grid encodes.
    """
    y0 = float(np.mean(positions[:, 1]))
    if tag_side >= 0:
        y_min, y_max = y0 + 0.2, y0 + margin
    else:
        y_min, y_max = y0 - margin, y0 - 0.2
    return Grid2D(
        x_min=float(positions[:, 0].min() - margin / 2),
        x_max=float(positions[:, 0].max() + margin / 2),
        y_min=y_min,
        y_max=y_max,
        resolution=resolution,
    )


def _correlated_wander(
    n: int, std_m: float, rng: np.random.Generator, spacing_m: float
) -> np.ndarray:
    """Smooth along-path position-knowledge error (meter-scale ripples).

    Models the drift between the markers OptiTrack sees and the relay's
    actual antenna phase centers as the drone pitches and rolls along
    the path — a few centimeters, correlated over meters.
    """
    s = np.arange(n) * spacing_m
    out = np.zeros((n, 2))
    for _ in range(3):
        lam = rng.uniform(1.0, 4.0)
        phase = rng.uniform(0.0, 2.0 * np.pi, 2)
        amp = rng.normal(0.0, std_m / np.sqrt(3), 2)
        out[:, 0] += amp[0] * np.sin(2.0 * np.pi * s / lam + phase[0])
        out[:, 1] += amp[1] * np.sin(2.0 * np.pi * s / lam + phase[1])
    return out


#: Calibrated drone-flight realism (see DESIGN.md §5 and EXPERIMENTS.md):
#: a per-flight constant offset between marker and antenna phase centers
#: (attitude-dependent) plus a smooth correlated wander along the path.
DRONE_GEOMETRY_BIAS_STD_M = 0.11
DRONE_WANDER_STD_M = 0.02


def projected_distance_snr_db(distance_m: float, reference_snr_db: float = 46.0) -> float:
    """Channel-estimate SNR vs (projected) reader-relay distance.

    Both the relayed query and the relayed reply cross the reader-relay
    leg, so the estimate SNR falls 40 dB per distance decade. The
    reference anchors SNR ~6 dB at 50 m, reproducing the paper's
    "beyond 50 m the SNR drops below 3 dB" observation (§7.3b) once
    fading subtracts its share.
    """
    if distance_m <= 0:
        raise ConfigurationError("distance must be positive")
    return reference_snr_db - 40.0 * np.log10(max(distance_m, 1.0) / 5.0)


#: Deprecated builder -> (trial kind, library scenario) it now routes to.
_BUILDER_ROUTES = {
    "los_heatmap_scenario": ("heatmap", "los_aisle"),
    "multipath_heatmap_scenario": ("heatmap", "cold_storage_aisles"),
    "fig12_trial": ("warehouse", "paper_warehouse_two_floor"),
    "aperture_microbenchmark": ("aperture", "aisle_microbench"),
    "distance_microbenchmark": ("distance", "aisle_microbench"),
}


def _route(builder: str, **kwargs: Any) -> LocalizationScenario:
    """Warn once per call site, then dispatch through the trial registry."""
    kind, scenario = _BUILDER_ROUTES[builder]
    warnings.warn(
        f"sim.scenarios.{builder}() is deprecated; use "
        f"repro.scenarios.trials.build_trial({kind!r}, {scenario!r}, ...)",
        DeprecationWarning,
        stacklevel=3,
    )
    from repro.scenarios.trials import build_trial

    return build_trial(kind, scenario, **kwargs)


def los_heatmap_scenario(seed: int = 0) -> LocalizationScenario:
    """Deprecated shim: the ``los_aisle`` scenario (Fig. 6a world)."""
    return _route("los_heatmap_scenario", seed=seed)


def multipath_heatmap_scenario(seed: int = 0) -> LocalizationScenario:
    """Deprecated shim: the ``cold_storage_aisles`` scenario (Fig. 6b)."""
    return _route("multipath_heatmap_scenario", seed=seed)


def fig12_trial(seed: int) -> LocalizationScenario:
    """Deprecated shim: the ``paper_warehouse_two_floor`` scenario."""
    return _route("fig12_trial", seed=seed)


def aperture_microbenchmark(
    aperture_m: float, seed: int, snr_db: float = 25.0
) -> LocalizationScenario:
    """Deprecated shim: the ``aisle_microbench`` aperture trial."""
    return _route(
        "aperture_microbenchmark",
        aperture_m=aperture_m,
        seed=seed,
        snr_db=snr_db,
    )


def distance_microbenchmark(
    projected_distance_m: float, seed: int
) -> LocalizationScenario:
    """Deprecated shim: the ``aisle_microbench`` distance trial."""
    return _route(
        "distance_microbenchmark",
        projected_distance_m=projected_distance_m,
        seed=seed,
    )
