"""Canned experiment scenarios.

Each builder constructs the geometry, environment, and measurement
series for one of the paper's evaluation settings, with all randomness
drawn from an explicit seed so every figure regenerates exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.channel.environment import DRYWALL, STEEL, Environment
from repro.channel.pathloss import free_space_path_loss_db
from repro.constants import UHF_CENTER_FREQUENCY
from repro.errors import ConfigurationError
from repro.localization.grid import Grid2D
from repro.localization.measurement import (
    MeasurementModel,
    ThroughRelayMeasurement,
)
from repro.mobility.robot import GroundRobot
from repro.mobility.trajectory import LineTrajectory
from repro.dsp.units import db_to_linear

F = UHF_CENTER_FREQUENCY


@dataclass(frozen=True)
class LocalizationScenario:
    """Inputs a localization experiment needs for one trial."""

    measurements: List[ThroughRelayMeasurement]
    tag_position: np.ndarray
    search_grid: Grid2D
    trajectory_positions: np.ndarray
    calibration_gain: float
    description: str = ""
    rssi_calibration_gain: float = 0.0
    

    def __post_init__(self) -> None:
        if self.rssi_calibration_gain == 0.0:
            object.__setattr__(
                self, "rssi_calibration_gain", self.calibration_gain
            )


def _measure_with_jitter(
    model: MeasurementModel,
    trajectory: LineTrajectory,
    tag_position,
    rng: np.random.Generator,
    snr_db: float,
    spacing_m: float = 0.05,
    jitter_std_m: float = 0.005,
) -> Tuple[List[ThroughRelayMeasurement], np.ndarray]:
    """Sample a path with track jitter and measure at each pose."""
    robot = GroundRobot(track_jitter_std_m=jitter_std_m)
    samples = robot.drive(trajectory, spacing_m, rng)
    measurements = model.measure_along(samples, tag_position, rng, snr_db)
    positions = np.stack([s.position for s in samples])
    return measurements, positions


def _tag_side_grid(
    positions: np.ndarray, tag_side: float, margin: float, resolution: float
) -> Grid2D:
    """A search grid on the scanned side of the flight line.

    A straight flight line cannot distinguish the two sides (mirror
    ambiguity); deployments scan one side of an aisle at a time, which
    is the prior this grid encodes.
    """
    y0 = float(np.mean(positions[:, 1]))
    if tag_side >= 0:
        y_min, y_max = y0 + 0.2, y0 + margin
    else:
        y_min, y_max = y0 - margin, y0 - 0.2
    return Grid2D(
        x_min=float(positions[:, 0].min() - margin / 2),
        x_max=float(positions[:, 0].max() + margin / 2),
        y_min=y_min,
        y_max=y_max,
        resolution=resolution,
    )


def los_heatmap_scenario(seed: int = 0) -> LocalizationScenario:
    """Fig. 6(a): a clean line-of-sight trial on a ~3 m trajectory."""
    rng = np.random.default_rng(seed)
    model = MeasurementModel(reader_position=(-8.0, 0.0), reader_frequency_hz=F)
    trajectory = LineTrajectory((0.0, 0.0), (3.0, 0.0))
    tag = np.array([1.3, 1.45])
    measurements, positions = _measure_with_jitter(
        model, trajectory, tag, rng, snr_db=30.0
    )
    grid = Grid2D(-0.5, 3.5, 0.2, 3.0, 0.05)
    return LocalizationScenario(
        measurements=measurements,
        tag_position=tag,
        search_grid=grid,
        trajectory_positions=positions,
        calibration_gain=abs(model.relay_gain / model.reference_gain),
        description="line-of-sight heatmap (Fig. 6a)",
    )


def multipath_heatmap_scenario(seed: int = 0) -> LocalizationScenario:
    """Fig. 6(b): steel shelving flanking the aisle creates ghosts."""
    rng = np.random.default_rng(seed)
    env = Environment(max_reflections=2)
    env.add_wall((-1.0, 2.6), (5.0, 2.6), STEEL, "shelf-north")
    env.add_wall((-1.0, -1.2), (5.0, -1.2), STEEL, "shelf-south")
    model = MeasurementModel(
        environment=env, reader_position=(-8.0, 0.0), reader_frequency_hz=F
    )
    trajectory = LineTrajectory((0.0, 0.0), (3.0, 0.0))
    tag = np.array([1.3, 1.45])
    measurements, positions = _measure_with_jitter(
        model, trajectory, tag, rng, snr_db=25.0
    )
    grid = Grid2D(-0.5, 3.5, 0.2, 3.0, 0.05)
    return LocalizationScenario(
        measurements=measurements,
        tag_position=tag,
        search_grid=grid,
        trajectory_positions=positions,
        calibration_gain=abs(model.relay_gain / model.reference_gain),
        description="strong multipath heatmap (Fig. 6b)",
    )


def _correlated_wander(
    n: int, std_m: float, rng: np.random.Generator, spacing_m: float
) -> np.ndarray:
    """Smooth along-path position-knowledge error (meter-scale ripples).

    Models the drift between the markers OptiTrack sees and the relay's
    actual antenna phase centers as the drone pitches and rolls along
    the path — a few centimeters, correlated over meters.
    """
    s = np.arange(n) * spacing_m
    out = np.zeros((n, 2))
    for _ in range(3):
        lam = rng.uniform(1.0, 4.0)
        phase = rng.uniform(0.0, 2.0 * np.pi, 2)
        amp = rng.normal(0.0, std_m / np.sqrt(3), 2)
        out[:, 0] += amp[0] * np.sin(2.0 * np.pi * s / lam + phase[0])
        out[:, 1] += amp[1] * np.sin(2.0 * np.pi * s / lam + phase[1])
    return out


#: Calibrated drone-flight realism (see DESIGN.md §5 and EXPERIMENTS.md):
#: a per-flight constant offset between marker and antenna phase centers
#: (attitude-dependent) plus a smooth correlated wander along the path.
DRONE_GEOMETRY_BIAS_STD_M = 0.11
DRONE_WANDER_STD_M = 0.02


def projected_distance_snr_db(distance_m: float, reference_snr_db: float = 46.0) -> float:
    """Channel-estimate SNR vs (projected) reader-relay distance.

    Both the relayed query and the relayed reply cross the reader-relay
    leg, so the estimate SNR falls 40 dB per distance decade. The
    reference anchors SNR ~6 dB at 50 m, reproducing the paper's
    "beyond 50 m the SNR drops below 3 dB" observation (§7.3b) once
    fading subtracts its share.
    """
    if distance_m <= 0:
        raise ConfigurationError("distance must be positive")
    return reference_snr_db - 40.0 * np.log10(max(distance_m, 1.0) / 5.0)


def fig12_trial(seed: int) -> LocalizationScenario:
    """One randomized end-to-end localization trial (Fig. 12).

    Random reader placement in the 30 x 40 m building, a random ~3.5 m
    flight segment, and a tag 0.8-3 m to one side of it — mixing
    line-of-sight and through-wall reader-relay legs exactly as the
    paper's 100 trials across two floors do. Drone-flight realism (the
    antenna-phase-center offsets OptiTrack cannot see) is injected at
    the calibrated magnitudes above.
    """
    rng = np.random.default_rng(seed)
    env = Environment.two_floor_building()
    # Clutter: a few reflective obstacles near the scanned aisle.
    start = np.array([rng.uniform(5.0, 21.0), rng.uniform(5.0, 32.0)])
    heading = rng.uniform(0.0, 2.0 * np.pi)
    direction = np.array([np.cos(heading), np.sin(heading)])
    length = rng.uniform(3.0, 4.5)
    materials = (STEEL, DRYWALL, STEEL)
    for _ in range(3):
        center = start + rng.normal(0.0, 3.0, 2)
        angle = rng.uniform(0.0, np.pi)
        half = np.array([np.cos(angle), np.sin(angle)]) * rng.uniform(0.8, 2.0)
        env.add_wall(
            tuple(center - half),
            tuple(center + half),
            materials[int(rng.integers(0, len(materials)))],
            "clutter",
        )
    # The reader sits 4-20 m from the scanned aisle (the paper varies
    # reader placement across two floors but keeps links operational).
    reader_angle = rng.uniform(0.0, 2.0 * np.pi)
    reader_distance_draw = rng.uniform(4.0, 20.0)
    reader = start + direction * (length / 2.0) + reader_distance_draw * np.array(
        [np.cos(reader_angle), np.sin(reader_angle)]
    )
    reader = np.clip(reader, [1.0, 1.0], [29.0, 39.0])
    trajectory = LineTrajectory(start, start + direction * length)
    # Tag to one side of the path.
    side = 1.0 if rng.random() < 0.5 else -1.0
    normal = np.array([-direction[1], direction[0]]) * side
    along = rng.uniform(0.25, 0.75)
    offset = rng.uniform(0.8, 3.0)
    tag = start + direction * (length * along) + normal * offset

    model = MeasurementModel(
        environment=env, reader_position=reader, reader_frequency_hz=F
    )
    # SNR follows the reader-relay distance (the paper's Fig. 14 law).
    mid = start + direction * (length / 2.0)
    reader_distance = float(np.linalg.norm(mid - reader))
    wall_loss = env.obstruction_loss_db(reader, mid)
    snr = float(
        np.clip(projected_distance_snr_db(reader_distance) - wall_loss, 8.0, 25.0)
    )
    spacing = 0.05
    measurements, positions = _measure_with_jitter(
        model, trajectory, tag, rng, snr_db=snr, spacing_m=spacing,
        jitter_std_m=0.01,
    )
    # The localizer sees the marker-frame positions: true antenna poses
    # plus the per-flight bias and the correlated wander.
    bias = rng.normal(0.0, DRONE_GEOMETRY_BIAS_STD_M, 2)
    known_positions = positions + bias + _correlated_wander(
        len(positions), DRONE_WANDER_STD_M, rng, spacing
    )
    # Search on the scanned side, in trajectory-aligned coordinates:
    # rotate so the path runs along +x, then build the half-plane grid.
    rotation = np.array(
        [[direction[0], direction[1]], [-direction[1], direction[0]]]
    )
    rotated_positions = (known_positions - start) @ rotation.T
    rotated_tag = rotation @ (tag - start)
    rotated_measurements = [
        ThroughRelayMeasurement(
            position=rp, h_target=m.h_target, h_reference=m.h_reference,
            snr_db=m.snr_db, time=m.time,
        )
        for rp, m in zip(rotated_positions, measurements)
    ]
    grid = _tag_side_grid(rotated_positions, float(np.sign(rotated_tag[1])), 4.5, 0.10)
    return LocalizationScenario(
        measurements=rotated_measurements,
        tag_position=rotated_tag,
        search_grid=grid,
        trajectory_positions=rotated_positions,
        calibration_gain=abs(model.relay_gain / model.reference_gain),
        description=f"fig12 trial seed={seed}, reader at {reader_distance:.1f} m",
    )


def aperture_microbenchmark(
    aperture_m: float, seed: int, snr_db: float = 25.0
) -> LocalizationScenario:
    """One Fig. 13 trial: fixed geometry, swept aperture.

    The relay rides the ground robot; the reader sits ~5 m away; the
    target tag is ~2 m from the track, its exact spot varied per trial.
    A mildly reflective wall supplies the amplitude ripple that limits
    the RSSI baseline.
    """
    if aperture_m <= 0:
        raise ConfigurationError("aperture must be positive")
    rng = np.random.default_rng(seed)
    env = Environment(max_reflections=1)
    env.add_wall((-2.0, 3.2), (6.0, 3.2), DRYWALL, "back-wall")
    model = MeasurementModel(
        environment=env, reader_position=(-5.0, 0.0), reader_frequency_hz=F
    )
    full = LineTrajectory((0.0, 0.0), (2.5, 0.0))
    sub = full.aperture_segment(min(aperture_m, full.length))
    # The tag stays near the aperture's broadside — the paper's
    # controlled microbenchmark fixes the average relay-tag distance.
    tag = np.array(
        [rng.uniform(0.95, 1.55), rng.uniform(1.6, 2.4)]
    )
    measurements, positions = _measure_with_jitter(
        model, sub, tag, rng, snr_db=snr_db, spacing_m=0.04
    )
    grid = _tag_side_grid(positions, +1.0, 3.5, 0.10)
    calibration = abs(model.relay_gain / model.reference_gain)
    # Indoor propagation deviates from the free-space model the RSSI
    # baseline assumes by a few dB; the mismatch is what limits it to
    # around a meter in the paper's Fig. 13.
    rssi_calibration = calibration * float(db_to_linear(rng.normal(0.0, 3.0)))
    return LocalizationScenario(
        measurements=measurements,
        tag_position=tag,
        search_grid=grid,
        trajectory_positions=positions,
        calibration_gain=calibration,
        description=f"aperture {aperture_m} m (Fig. 13)",
        rssi_calibration_gain=rssi_calibration,
    )


def distance_microbenchmark(
    projected_distance_m: float, seed: int
) -> LocalizationScenario:
    """One Fig. 14 trial: fixed 1 m aperture, swept projected distance.

    The paper adjusts the reader's transmit power and maps it to a
    projected reader-relay distance with the free-space model; the
    observable consequence is the estimate SNR, which falls 40 dB per
    distance decade (both query and reply cross that leg).
    """
    snr = projected_distance_snr_db(projected_distance_m)
    return aperture_microbenchmark(1.0, seed=seed, snr_db=snr)
