"""Per-pose inventory events.

At each pose along the flight, the (relayed) reader runs Gen2 inventory
over whatever tags the relay currently powers. The relay is transparent
to the protocol (paper §3), so this is the ordinary anti-collision MAC
of :mod:`repro.gen2.inventory` — including the relay-embedded reference
RFID, which participates like any other tag and is told apart by its
stored EPC (paper §5.1).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Set

import numpy as np

from repro import faults
from repro.errors import CRCError
from repro.gen2.bitops import bits_from_int
from repro.gen2.crc import append_crc16, check_crc16
from repro.gen2.inventory import run_inventory
from repro.hardware.tag import PassiveTag
from repro.obs import metrics, tracing

#: EPC length of the {PC, EPC} reply frames re-validated under injected
#: bit corruption (the standard 96-bit EPC the tags in this sim carry).
_EPC_BITS = 96


def inventory_at_pose(
    tags: Sequence[PassiveTag],
    powered: Callable[[PassiveTag], bool],
    rng: np.random.Generator,
    max_slots: int = 512,
) -> Set[int]:
    """Run one inventory pass; return the EPCs read at this pose.

    ``powered`` models reachability: whether the relay's downlink lights
    each tag at the current drone position. Both inventory targets (A
    then B) are run so that a pose reads every reachable tag regardless
    of the flag state left by the previous pose.
    """
    read: Set[int] = set()
    with tracing.span("sim.inventory", n_tags=len(tags)):
        for target in ("A", "B"):
            result = run_inventory(
                [t.protocol for t in tags],
                rng,
                target=target,
                max_slots=max_slots,
                hears=_wrap_powered(tags, powered),
            )
            read.update(result.epcs)
        if faults.watching("gen2.frame"):
            read = _filter_corrupted_reads(read)
        metrics.count("sim.tags_inventoried", len(read))
    return read


def _filter_corrupted_reads(read: Set[int]) -> Set[int]:
    """Re-validate each read's EPC frame under injected bit corruption.

    With a ``gen2.frame`` fault engaged, every successful read replays
    its {EPC, CRC-16} reply with the corruption hook flipping bits
    *before* :func:`check_crc16` — a corrupted read is rejected by the
    CRC (and counted), never delivered wrong.
    """
    surviving: Set[int] = set()
    for epc in sorted(read):
        frame = append_crc16(bits_from_int(epc, _EPC_BITS))
        frame = faults.corrupt_bits("gen2.frame", frame)
        try:
            check_crc16(frame)
        except CRCError:
            metrics.count("sim.reads_rejected_crc")
            continue
        surviving.add(epc)
    return surviving


def _wrap_powered(tags: Sequence[PassiveTag], powered: Callable[[PassiveTag], bool]):
    """Adapt a PassiveTag predicate to the Gen2Tag objects the MAC sees."""
    by_protocol = {id(t.protocol): t for t in tags}
    return lambda protocol_tag: powered(by_protocol[id(protocol_tag)])
