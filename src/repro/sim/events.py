"""Per-pose inventory events.

At each pose along the flight, the (relayed) reader runs Gen2 inventory
over whatever tags the relay currently powers. The relay is transparent
to the protocol (paper §3), so this is the ordinary anti-collision MAC
of :mod:`repro.gen2.inventory` — including the relay-embedded reference
RFID, which participates like any other tag and is told apart by its
stored EPC (paper §5.1).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Set

import numpy as np

from repro.gen2.inventory import run_inventory
from repro.hardware.tag import PassiveTag
from repro.obs import metrics, tracing


def inventory_at_pose(
    tags: Sequence[PassiveTag],
    powered: Callable[[PassiveTag], bool],
    rng: np.random.Generator,
    max_slots: int = 512,
) -> Set[int]:
    """Run one inventory pass; return the EPCs read at this pose.

    ``powered`` models reachability: whether the relay's downlink lights
    each tag at the current drone position. Both inventory targets (A
    then B) are run so that a pose reads every reachable tag regardless
    of the flag state left by the previous pose.
    """
    read: Set[int] = set()
    with tracing.span("sim.inventory", n_tags=len(tags)):
        for target in ("A", "B"):
            result = run_inventory(
                [t.protocol for t in tags],
                rng,
                target=target,
                max_slots=max_slots,
                hears=_wrap_powered(tags, powered),
            )
            read.update(result.epcs)
        metrics.count("sim.tags_inventoried", len(read))
    return read


def _wrap_powered(tags: Sequence[PassiveTag], powered: Callable[[PassiveTag], bool]):
    """Adapt a PassiveTag predicate to the Gen2Tag objects the MAC sees."""
    by_protocol = {id(t.protocol): t for t in tags}
    return lambda protocol_tag: powered(by_protocol[id(protocol_tag)])
