"""The EPC-to-object database and inventory reconciliation (paper §3).

"To identify the localized objects, the system leverages a local
database that maps each RFID's unique ID to the object it is attached
to." This module supplies that database plus the reconciliation a
warehouse run actually needs: which expected items were found, where
they are, which are missing, and which reads were unexpected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Item:
    """One cataloged object: identity plus its expected location."""

    epc: int
    name: str
    expected_position: Optional[Tuple[float, float]] = None
    category: str = ""

    def __post_init__(self) -> None:
        if self.epc < 0:
            raise ConfigurationError("EPC must be non-negative")
        if not self.name:
            raise ConfigurationError("item needs a name")


@dataclass(frozen=True)
class LocatedItem:
    """A found item with its measured position."""

    item: Item
    position: np.ndarray
    n_reads: int

    @property
    def displacement_m(self) -> Optional[float]:
        """Distance from the expected shelf spot, if one is cataloged."""
        if self.item.expected_position is None:
            return None
        return float(
            np.linalg.norm(
                self.position - np.asarray(self.item.expected_position)
            )
        )


@dataclass
class ReconciliationReport:
    """The outcome of matching a scan against the catalog."""

    found: List[LocatedItem] = field(default_factory=list)
    missing: List[Item] = field(default_factory=list)
    unexpected_epcs: List[int] = field(default_factory=list)

    @property
    def found_fraction(self) -> float:
        """Share of cataloged items found by the scan."""
        total = len(self.found) + len(self.missing)
        return len(self.found) / total if total else 1.0

    def misplaced(self, threshold_m: float = 1.0) -> List[LocatedItem]:
        """Found items sitting far from their cataloged spot."""
        if threshold_m <= 0:
            raise ConfigurationError("threshold must be positive")
        return [
            located
            for located in self.found
            if located.displacement_m is not None
            and located.displacement_m > threshold_m
        ]


class ItemDatabase:
    """The manufacturer-style EPC -> object catalog."""

    def __init__(self, items: Sequence[Item] = ()) -> None:
        self._items: Dict[int, Item] = {}
        for item in items:
            self.add(item)

    def add(self, item: Item) -> None:
        """Add one item to the catalog (EPCs must be unique)."""
        if item.epc in self._items:
            raise ConfigurationError(f"duplicate EPC {item.epc:#x} in catalog")
        self._items[item.epc] = item

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, epc: int) -> bool:
        return epc in self._items

    def lookup(self, epc: int) -> Optional[Item]:
        """The cataloged item for an EPC, or None for foreign tags."""
        return self._items.get(epc)

    def reconcile(
        self,
        located: Dict[int, np.ndarray],
        read_counts: Optional[Dict[int, int]] = None,
    ) -> ReconciliationReport:
        """Match scan results against the catalog.

        Parameters
        ----------
        located:
            EPC -> estimated position for every localized tag.
        read_counts:
            Optional EPC -> number of successful reads.
        """
        read_counts = read_counts or {}
        report = ReconciliationReport()
        for epc, position in located.items():
            item = self.lookup(epc)
            if item is None:
                report.unexpected_epcs.append(epc)
                continue
            report.found.append(
                LocatedItem(
                    item=item,
                    position=np.asarray(position, dtype=float),
                    n_reads=int(read_counts.get(epc, 0)),
                )
            )
        found_epcs = {f.item.epc for f in report.found}
        report.missing = [
            item for epc, item in self._items.items() if epc not in found_epcs
        ]
        return report
