"""Result statistics and table formatting for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import RFlyError


class ResultError(RFlyError):
    """Raised for empty or malformed result sets."""


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative probabilities) — the CDFs of Fig. 9-12."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ResultError("cannot build a CDF from no values")
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (q in [0, 100]), linear interpolation."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ResultError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise ResultError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class Summary:
    """Median / 10th / 90th / 99th percentile summary of a metric."""

    n: int
    median: float
    p10: float
    p90: float
    p99: float
    mean: float

    def row(self, label: str, unit: str = "") -> List[str]:
        """Render this summary as one table row."""
        fmt = lambda v: f"{v:.3g}{unit}"
        return [
            label,
            str(self.n),
            fmt(self.median),
            fmt(self.p10),
            fmt(self.p90),
            fmt(self.p99),
        ]


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a result vector."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ResultError("cannot summarize no values")
    return Summary(
        n=int(arr.size),
        median=float(np.median(arr)),
        p10=percentile(arr, 10.0),
        p90=percentile(arr, 90.0),
        p99=percentile(arr, 99.0),
        mean=float(np.mean(arr)),
    )


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width ASCII table (what the benchmark harness prints)."""
    if not headers:
        raise ResultError("a table needs headers")
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ResultError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    line = lambda cells: " | ".join(c.ljust(w) for c, w in zip(cells, widths))
    sep = "-+-".join("-" * w for w in widths)
    out = [line(headers), sep]
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)
