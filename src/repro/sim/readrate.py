"""The read-rate-vs-distance model behind paper Fig. 11.

Three curves:

* **No relay** — the reader powers the tag directly. The downlink power
  budget is the binding constraint (paper §2): the tag needs about
  -15 dBm, which free-space physics denies beyond ~10 m.
* **Relay, line-of-sight** — the relay re-amplifies the query with its
  tunable downlink gain, decoupling communication range from power-up
  range. The binding constraints become (a) the oscillation criterion
  L < I of Eq. 3, and (b) enough output power to light the tag.
* **Relay, non-line-of-sight** — identical, minus wall attenuation on
  the reader-relay leg.

Every trial draws small-scale fading on each leg, so the read rate is a
probability rather than a step function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.channel.pathloss import (
    free_space_path_loss_db,
    log_distance_path_loss_db,
)
from repro.constants import (
    BOLTZMANN_DBM_PER_HZ,
    READER_ANTENNA_GAIN_DBI,
    READER_DECODE_SNR_DB,
    READER_NOISE_FIGURE_DB,
    READER_TX_POWER_DBM,
    RELAY_PA_P1DB_DBM,
    TAG_ANTENNA_GAIN_DBI,
    TAG_MODULATION_LOSS_DB,
    TAG_SENSITIVITY_DBM,
    UHF_CENTER_FREQUENCY,
)
from repro.errors import ConfigurationError
from repro.dsp.units import linear_to_db
from repro.obs import metrics, tracing


@dataclass(frozen=True)
class RangeConfig:
    """Link parameters of the Fig. 11 experiment."""

    frequency_hz: float = UHF_CENTER_FREQUENCY
    reader_tx_power_dbm: float = READER_TX_POWER_DBM
    reader_antenna_gain_dbi: float = READER_ANTENNA_GAIN_DBI
    tag_antenna_gain_dbi: float = TAG_ANTENNA_GAIN_DBI
    tag_sensitivity_dbm: float = TAG_SENSITIVITY_DBM
    tag_backscatter_loss_db: float = TAG_MODULATION_LOSS_DB
    polarization_loss_db: float = 3.0
    indoor_exponent: float = 2.3
    fading_std_db: float = 2.5
    # Relay parameters. The Eq. 3 isolation here is the TX-to-RX
    # leakage suppression seen by the reader-relay loop, which the
    # baseband filters raise above the worst-case intra-link figure.
    relay_isolation_db: float = 82.0
    relay_antenna_gain_dbi: float = 2.0
    relay_pa_output_dbm: float = RELAY_PA_P1DB_DBM
    relay_max_downlink_gain_db: float = 74.0
    relay_max_uplink_gain_db: float = 58.0
    relay_tag_distance_m: float = 2.0
    nlos_wall_loss_db: float = 13.0
    # Receiver.
    decode_snr_db: float = READER_DECODE_SNR_DB
    noise_bandwidth_hz: float = 1.0e6
    noise_figure_db: float = READER_NOISE_FIGURE_DB

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        if self.fading_std_db < 0:
            raise ConfigurationError("fading std must be >= 0")
        if self.relay_isolation_db <= 0:
            raise ConfigurationError("isolation must be positive")

    @property
    def noise_floor_dbm(self) -> float:
        """Receiver noise floor over the noise bandwidth."""
        return (
            BOLTZMANN_DBM_PER_HZ
            + linear_to_db(self.noise_bandwidth_hz)
            + self.noise_figure_db
        )


class RangeModel:
    """Monte-Carlo read-rate estimator for the three Fig. 11 curves."""

    def __init__(self, config: RangeConfig = RangeConfig()) -> None:
        self.config = config

    # -- helpers ----------------------------------------------------------------

    def _fade(self, rng: Optional[np.random.Generator]) -> float:
        if rng is None or self.config.fading_std_db == 0.0:
            return 0.0
        return float(rng.normal(0.0, self.config.fading_std_db))

    def _indoor_loss(self, distance_m: float) -> float:
        return log_distance_path_loss_db(
            distance_m, self.config.frequency_hz, self.config.indoor_exponent
        )

    # -- no relay ------------------------------------------------------------

    def no_relay_read(
        self, distance_m: float, rng: Optional[np.random.Generator] = None
    ) -> bool:
        """One trial of a direct reader->tag read at a distance."""
        c = self.config
        loss = self._indoor_loss(distance_m) + self._fade(rng)
        incident = (
            c.reader_tx_power_dbm
            + c.reader_antenna_gain_dbi
            + c.tag_antenna_gain_dbi
            - c.polarization_loss_db
            - loss
        )
        if incident < c.tag_sensitivity_dbm:
            return False
        # Uplink: almost never binding when the tag is powered (paper §2),
        # but checked for completeness.
        uplink = (
            incident
            - c.tag_backscatter_loss_db
            - self._indoor_loss(distance_m)
            - self._fade(rng)
            + c.reader_antenna_gain_dbi
        )
        return uplink - c.noise_floor_dbm >= c.decode_snr_db

    # -- with relay ---------------------------------------------------------------

    def relay_read(
        self,
        reader_relay_distance_m: float,
        rng: Optional[np.random.Generator] = None,
        line_of_sight: bool = True,
        relay_tag_distance_m: Optional[float] = None,
    ) -> bool:
        """One trial of a reader->relay->tag read.

        The relay's VGAs auto-tune toward full PA output, subject to the
        stability cap (gain below intra-link isolation, §6.1).
        """
        c = self.config
        d_tag = relay_tag_distance_m or c.relay_tag_distance_m
        wall = 0.0 if line_of_sight else c.nlos_wall_loss_db

        # Leg 1: reader -> relay.
        leg1_fade = self._fade(rng)
        leg1_loss = self._indoor_loss(reader_relay_distance_m) + wall + leg1_fade
        at_relay = (
            c.reader_tx_power_dbm
            + c.reader_antenna_gain_dbi
            + c.relay_antenna_gain_dbi
            - leg1_loss
        )
        # Oscillation criterion (Eq. 3): the loss between the relay and
        # reader (including the wall and this trial's fade) must stay
        # below the isolation, else the arriving signal drowns in the
        # relay's own leakage and the loop rings.
        stability_loss = (
            free_space_path_loss_db(reader_relay_distance_m, c.frequency_hz)
            + wall
            + leg1_fade
        )
        if stability_loss > c.relay_isolation_db:
            return False
        # Downlink amplification toward the PA ceiling.
        relay_out = min(
            at_relay + c.relay_max_downlink_gain_db, c.relay_pa_output_dbm
        )
        # Leg 2: relay -> tag.
        leg2_loss = self._indoor_loss(d_tag) + self._fade(rng)
        incident = (
            relay_out
            + c.relay_antenna_gain_dbi
            + c.tag_antenna_gain_dbi
            - c.polarization_loss_db
            - leg2_loss
        )
        if incident < c.tag_sensitivity_dbm:
            return False
        # Uplink: tag -> relay -> reader.
        back_at_relay = (
            incident
            - c.tag_backscatter_loss_db
            - self._indoor_loss(d_tag)
            - self._fade(rng)
            + c.relay_antenna_gain_dbi
        )
        at_reader = (
            back_at_relay
            + c.relay_max_uplink_gain_db
            + c.relay_antenna_gain_dbi
            + c.reader_antenna_gain_dbi
            - leg1_loss
        )
        return at_reader - c.noise_floor_dbm >= c.decode_snr_db

    # -- rates -------------------------------------------------------------------

    def read_rate(
        self,
        distance_m: float,
        mode: str,
        rng: np.random.Generator,
        trials: int = 200,
    ) -> float:
        """Fraction of successful reads at a distance.

        ``mode`` is one of ``"no_relay"``, ``"relay_los"``,
        ``"relay_nlos"`` — the three curves of Fig. 11.
        """
        if trials <= 0:
            raise ConfigurationError("trials must be positive")
        if mode == "no_relay":
            trial = lambda: self.no_relay_read(distance_m, rng)
        elif mode == "relay_los":
            trial = lambda: self.relay_read(distance_m, rng, line_of_sight=True)
        elif mode == "relay_nlos":
            trial = lambda: self.relay_read(distance_m, rng, line_of_sight=False)
        else:
            raise ConfigurationError(f"unknown mode {mode!r}")
        with tracing.span("sim.read_rate", mode=mode, trials=trials):
            metrics.count("sim.readrate.trials", trials)
            return sum(trial() for _ in range(trials)) / trials
