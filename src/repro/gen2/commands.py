"""Gen2 reader command frames.

The paper's USRP reader "handles a variety of commands including the
Query command, ACK command, Select command, and QueryRep command"
(§6.3); QueryAdjust and NAK complete the inventory set. Each command
knows its bit layout, its CRC protection, and whether it is sent with the
full Query preamble or a frame-sync.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Sequence, Tuple, Union

from repro.errors import ProtocolError
from repro.gen2.bitops import Bits, bits_from_int, bits_to_int, validate_bits
from repro.gen2.crc import append_crc16, check_crc16, check_crc5, crc5

DR_CODES = {8.0: 0, 64.0 / 3.0: 1}
MILLER_CODES = {1: 0, 2: 1, 4: 2, 8: 3}
SESSIONS = ("S0", "S1", "S2", "S3")
TARGETS = ("A", "B")
SELECT_TARGETS = ("S0", "S1", "S2", "S3", "SL")
MEMORY_BANKS = ("RFU", "EPC", "TID", "USER")


@dataclass(frozen=True)
class Query:
    """Query: starts an inventory round with 2**q slots.

    Fields follow the spec order: command code 1000, DR, M, TRext, Sel,
    Session, Target, Q, CRC-5.
    """

    COMMAND_CODE: ClassVar[Bits] = (1, 0, 0, 0)
    PREAMBLE: ClassVar[bool] = True

    q: int = 4
    dr: float = 64.0 / 3.0
    miller_m: int = 1
    trext: bool = False
    sel: int = 0  # 00 all, 01 all, 10 ~SL, 11 SL
    session: str = "S0"
    target: str = "A"

    def __post_init__(self) -> None:
        if not 0 <= self.q <= 15:
            raise ProtocolError(f"Q must be 0-15, got {self.q}")
        if self.dr not in DR_CODES:
            raise ProtocolError(f"DR must be 8 or 64/3, got {self.dr}")
        if self.miller_m not in MILLER_CODES:
            raise ProtocolError(f"M must be one of {sorted(MILLER_CODES)}")
        if self.sel not in (0, 1, 2, 3):
            raise ProtocolError(f"Sel must be 0-3, got {self.sel}")
        if self.session not in SESSIONS:
            raise ProtocolError(f"session must be one of {SESSIONS}")
        if self.target not in TARGETS:
            raise ProtocolError(f"target must be A or B, got {self.target}")

    def to_bits(self) -> Bits:
        """Serialize the command to its over-the-air bits."""
        body = (
            self.COMMAND_CODE
            + bits_from_int(DR_CODES[self.dr], 1)
            + bits_from_int(MILLER_CODES[self.miller_m], 2)
            + bits_from_int(int(self.trext), 1)
            + bits_from_int(self.sel, 2)
            + bits_from_int(SESSIONS.index(self.session), 2)
            + bits_from_int(TARGETS.index(self.target), 1)
            + bits_from_int(self.q, 4)
        )
        return body + crc5(body)

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "Query":
        """Parse a received frame into this command type."""
        bits = validate_bits(bits)
        if len(bits) != 22:
            raise ProtocolError(f"Query must be 22 bits, got {len(bits)}")
        body = check_crc5(bits)
        if body[:4] != cls.COMMAND_CODE:
            raise ProtocolError("not a Query frame")
        dr = next(k for k, v in DR_CODES.items() if v == body[4])
        miller = next(k for k, v in MILLER_CODES.items() if v == bits_to_int(body[5:7]))
        return cls(
            q=bits_to_int(body[13:17]),
            dr=dr,
            miller_m=miller,
            trext=bool(body[7]),
            sel=bits_to_int(body[8:10]),
            session=SESSIONS[bits_to_int(body[10:12])],
            target=TARGETS[body[12]],
        )


@dataclass(frozen=True)
class QueryRep:
    """QueryRep: advances to the next slot of the round."""

    COMMAND_CODE: ClassVar[Bits] = (0, 0)
    PREAMBLE: ClassVar[bool] = False

    session: str = "S0"

    def __post_init__(self) -> None:
        if self.session not in SESSIONS:
            raise ProtocolError(f"session must be one of {SESSIONS}")

    def to_bits(self) -> Bits:
        """Serialize the command to its over-the-air bits."""
        return self.COMMAND_CODE + bits_from_int(SESSIONS.index(self.session), 2)

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "QueryRep":
        """Parse a received frame into this command type."""
        bits = validate_bits(bits)
        if len(bits) != 4 or bits[:2] != cls.COMMAND_CODE:
            raise ProtocolError("not a QueryRep frame")
        return cls(session=SESSIONS[bits_to_int(bits[2:4])])


@dataclass(frozen=True)
class QueryAdjust:
    """QueryAdjust: nudges Q up/down and restarts the round."""

    COMMAND_CODE: ClassVar[Bits] = (1, 0, 0, 1)
    PREAMBLE: ClassVar[bool] = False

    session: str = "S0"
    updn: int = 0  # +1, 0, or -1

    _UPDN_CODES: ClassVar[dict] = {1: (1, 1, 0), 0: (0, 0, 0), -1: (0, 1, 1)}

    def __post_init__(self) -> None:
        if self.session not in SESSIONS:
            raise ProtocolError(f"session must be one of {SESSIONS}")
        if self.updn not in self._UPDN_CODES:
            raise ProtocolError(f"updn must be -1, 0 or +1, got {self.updn}")

    def to_bits(self) -> Bits:
        """Serialize the command to its over-the-air bits."""
        return (
            self.COMMAND_CODE
            + bits_from_int(SESSIONS.index(self.session), 2)
            + self._UPDN_CODES[self.updn]
        )

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "QueryAdjust":
        """Parse a received frame into this command type."""
        bits = validate_bits(bits)
        if len(bits) != 9 or bits[:4] != cls.COMMAND_CODE:
            raise ProtocolError("not a QueryAdjust frame")
        updn_bits = bits[6:9]
        updn = next(
            (k for k, v in cls._UPDN_CODES.items() if v == updn_bits), None
        )
        if updn is None:
            raise ProtocolError(f"invalid UpDn code {updn_bits}")
        return cls(session=SESSIONS[bits_to_int(bits[4:6])], updn=updn)


@dataclass(frozen=True)
class Ack:
    """ACK: echoes a tag's RN16 to request its {PC, EPC, CRC-16}."""

    COMMAND_CODE: ClassVar[Bits] = (0, 1)
    PREAMBLE: ClassVar[bool] = False

    rn16: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.rn16 < (1 << 16):
            raise ProtocolError(f"RN16 must be a 16-bit value, got {self.rn16}")

    def to_bits(self) -> Bits:
        """Serialize the command to its over-the-air bits."""
        return self.COMMAND_CODE + bits_from_int(self.rn16, 16)

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "Ack":
        """Parse a received frame into this command type."""
        bits = validate_bits(bits)
        if len(bits) != 18 or bits[:2] != cls.COMMAND_CODE:
            raise ProtocolError("not an ACK frame")
        return cls(rn16=bits_to_int(bits[2:]))


@dataclass(frozen=True)
class Nak:
    """NAK: returns all tags in the round to Arbitrate."""

    COMMAND_CODE: ClassVar[Bits] = (1, 1, 0, 0, 0, 0, 0, 0)
    PREAMBLE: ClassVar[bool] = False

    def to_bits(self) -> Bits:
        """Serialize the command to its over-the-air bits."""
        return self.COMMAND_CODE

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "Nak":
        """Parse a received frame into this command type."""
        bits = validate_bits(bits)
        if tuple(bits) != cls.COMMAND_CODE:
            raise ProtocolError("not a NAK frame")
        return cls()


@dataclass(frozen=True)
class Select:
    """Select: marks a tag sub-population by a memory mask.

    RFly's reader uses Select to single out specific tags (for instance
    the relay-embedded reference RFID) before an inventory round.
    """

    COMMAND_CODE: ClassVar[Bits] = (1, 0, 1, 0)
    PREAMBLE: ClassVar[bool] = False

    target: str = "SL"
    action: int = 0
    membank: str = "EPC"
    pointer: int = 0x20  # EPC memory: skip CRC+PC words
    mask: Bits = ()
    truncate: bool = False

    def __post_init__(self) -> None:
        if self.target not in SELECT_TARGETS:
            raise ProtocolError(f"target must be one of {SELECT_TARGETS}")
        if not 0 <= self.action <= 7:
            raise ProtocolError(f"action must be 0-7, got {self.action}")
        if self.membank not in MEMORY_BANKS:
            raise ProtocolError(f"membank must be one of {MEMORY_BANKS}")
        if not 0 <= self.pointer < (1 << 8):
            raise ProtocolError("pointer must fit the single-byte EBV used here")
        if len(self.mask) > 255:
            raise ProtocolError(f"mask of {len(self.mask)} bits exceeds 255")
        object.__setattr__(self, "mask", validate_bits(self.mask))

    def to_bits(self) -> Bits:
        """Serialize the command to its over-the-air bits."""
        body = (
            self.COMMAND_CODE
            + bits_from_int(SELECT_TARGETS.index(self.target), 3)
            + bits_from_int(self.action, 3)
            + bits_from_int(MEMORY_BANKS.index(self.membank), 2)
            + bits_from_int(self.pointer, 8)  # single-byte EBV
            + bits_from_int(len(self.mask), 8)
            + self.mask
            + bits_from_int(int(self.truncate), 1)
        )
        return append_crc16(body)

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "Select":
        """Parse a received frame into this command type."""
        body = check_crc16(bits)
        if body[:4] != cls.COMMAND_CODE:
            raise ProtocolError("not a Select frame")
        mask_length = bits_to_int(body[20:28])
        expected = 28 + mask_length + 1
        if len(body) != expected:
            raise ProtocolError(
                f"Select length {len(body)} != expected {expected}"
            )
        return cls(
            target=SELECT_TARGETS[bits_to_int(body[4:7])],
            action=bits_to_int(body[7:10]),
            membank=MEMORY_BANKS[bits_to_int(body[10:12])],
            pointer=bits_to_int(body[12:20]),
            mask=body[28 : 28 + mask_length],
            truncate=bool(body[-1]),
        )


#: Any Gen2 reader command this module can encode or parse.
Command = Union[Query, QueryRep, QueryAdjust, Ack, Nak, Select]

_COMMAND_CODES = (
    (Query.COMMAND_CODE, Query, 22),
    (QueryAdjust.COMMAND_CODE, QueryAdjust, 9),
    (Select.COMMAND_CODE, Select, None),
    (Nak.COMMAND_CODE, Nak, 8),
    (Ack.COMMAND_CODE, Ack, 18),
    (QueryRep.COMMAND_CODE, QueryRep, 4),
)


def parse_command(bits: Sequence[int]) -> Command:
    """Parse a received bit vector into the matching command object.

    Command codes are prefix-free once length is considered; candidates
    are tried longest-code first so Query (1000) wins over ACK (01) etc.
    """
    bits = validate_bits(bits)
    for code, cls, length in _COMMAND_CODES:
        if len(bits) >= len(code) and bits[: len(code)] == code:
            if length is not None and len(bits) != length:
                continue
            return cls.from_bits(bits)
    raise ProtocolError(f"unrecognized command of {len(bits)} bits")
