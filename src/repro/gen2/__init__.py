"""EPC Class-1 Generation-2 (Gen2) protocol substrate.

The paper's reader is a USRP software-radio implementation of the Gen2
air interface, and the relay is *transparent* to this protocol — queries
and tag replies are forwarded in the analog domain without decoding. To
reproduce the end-to-end system we therefore implement the protocol
itself: reader PIE encoding, tag FM0/Miller backscatter encodings, the
CRC-5/CRC-16 checks, the command set the paper's reader handles (Query,
QueryRep, QueryAdjust, ACK, Select, NAK), the tag inventory state
machine, and the slotted-ALOHA anti-collision MAC with the Q algorithm.
"""

from __future__ import annotations

from repro.gen2.crc import crc5, crc16, check_crc16, append_crc16
from repro.gen2.bitops import bits_from_int, bits_to_int
from repro.gen2.pie import PIEDecoder, PIEEncoder, ReaderParams
from repro.gen2.backscatter import (
    FM0Decoder,
    FM0Encoder,
    MillerDecoder,
    MillerEncoder,
    TagParams,
)
from repro.gen2.commands import (
    Ack,
    Nak,
    Query,
    QueryAdjust,
    QueryRep,
    Select,
    parse_command,
)
from repro.gen2.tag_state import Gen2Tag, TagState
from repro.gen2.inventory import InventoryRound, QAlgorithm, SlotOutcome, run_inventory

__all__ = [
    "crc5",
    "crc16",
    "check_crc16",
    "append_crc16",
    "bits_from_int",
    "bits_to_int",
    "ReaderParams",
    "PIEEncoder",
    "PIEDecoder",
    "TagParams",
    "FM0Encoder",
    "FM0Decoder",
    "MillerEncoder",
    "MillerDecoder",
    "Query",
    "QueryRep",
    "QueryAdjust",
    "Ack",
    "Nak",
    "Select",
    "parse_command",
    "Gen2Tag",
    "TagState",
    "QAlgorithm",
    "SlotOutcome",
    "InventoryRound",
    "run_inventory",
]
