"""Gen2 CRC-5 and CRC-16 implementations.

Per the EPCglobal Gen2 specification (Annex F):

* **CRC-5** protects the Query command. Polynomial x^5 + x^3 + 1
  (0b101001), preset 0b01001. The register is transmitted as-is.
* **CRC-16** protects longer reader commands and tag {PC, EPC} replies.
  It is the CCITT CRC: polynomial 0x1021, preset 0xFFFF, and the ones-
  complement of the register is appended. A correct frame leaves the
  receiver's register at the residue 0x1D0F.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import CRCError
from repro.gen2.bitops import Bits, bits_from_int, validate_bits

CRC5_POLY = 0b01001  # x^5 + x^3 + 1, with the x^5 term implicit
CRC5_PRESET = 0b01001
CRC16_POLY = 0x1021  # CCITT
CRC16_PRESET = 0xFFFF
CRC16_RESIDUE = 0x1D0F


def crc5(bits: Sequence[int]) -> Bits:
    """CRC-5 of a bit sequence, as 5 bits MSB-first."""
    register = CRC5_PRESET
    for bit in validate_bits(bits):
        msb = (register >> 4) & 1
        register = ((register << 1) & 0x1F) | 0
        if msb ^ bit:
            register ^= CRC5_POLY
    return bits_from_int(register, 5)


def crc16(bits: Sequence[int]) -> Bits:
    """CRC-16 of a bit sequence, ones-complemented, as 16 bits MSB-first."""
    register = CRC16_PRESET
    for bit in validate_bits(bits):
        msb = (register >> 15) & 1
        register = (register << 1) & 0xFFFF
        if msb ^ bit:
            register ^= CRC16_POLY
    return bits_from_int(register ^ 0xFFFF, 16)


def append_crc16(bits: Sequence[int]) -> Bits:
    """Return ``bits`` with its CRC-16 appended (how tags build replies)."""
    payload = validate_bits(bits)
    return payload + crc16(payload)


def check_crc16(bits_with_crc: Sequence[int]) -> Bits:
    """Validate a CRC-16-protected frame and return the payload bits.

    Raises
    ------
    CRCError
        If the frame is shorter than a CRC or the check fails.
    """
    frame = validate_bits(bits_with_crc)
    if len(frame) < 16:
        raise CRCError(f"frame of {len(frame)} bits is shorter than a CRC-16")
    payload, received = frame[:-16], frame[-16:]
    if crc16(payload) != received:
        raise CRCError("CRC-16 check failed")
    return payload


def check_crc5(bits_with_crc: Sequence[int]) -> Bits:
    """Validate a CRC-5-protected frame and return the payload bits."""
    frame = validate_bits(bits_with_crc)
    if len(frame) < 5:
        raise CRCError(f"frame of {len(frame)} bits is shorter than a CRC-5")
    payload, received = frame[:-5], frame[-5:]
    if crc5(payload) != received:
        raise CRCError("CRC-5 check failed")
    return payload
