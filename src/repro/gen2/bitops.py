"""Bit-vector helpers shared by the Gen2 codecs.

Bits are represented as tuples of ints (0/1), most-significant bit first,
matching the over-the-air ordering of the Gen2 specification.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.errors import EncodingError

Bits = Tuple[int, ...]


def validate_bits(bits: Iterable[int]) -> Bits:
    """Return ``bits`` as a tuple, checking every element is 0 or 1."""
    out = tuple(int(b) for b in bits)
    if any(b not in (0, 1) for b in out):
        raise EncodingError(f"bit vector contains non-binary values: {out[:16]}...")
    return out


def bits_from_int(value: int, width: int) -> Bits:
    """Big-endian bit expansion of ``value`` into exactly ``width`` bits."""
    if width < 0:
        raise EncodingError(f"width must be >= 0, got {width}")
    if value < 0 or value >= (1 << width):
        raise EncodingError(f"value {value} does not fit in {width} bits")
    return tuple((value >> (width - 1 - i)) & 1 for i in range(width))


def bits_to_int(bits: Sequence[int]) -> int:
    """Big-endian interpretation of a bit vector as an unsigned integer."""
    value = 0
    for b in validate_bits(bits):
        value = (value << 1) | b
    return value


def bits_to_str(bits: Sequence[int]) -> str:
    """Render bits as a '0101...' string (debugging aid)."""
    return "".join(str(b) for b in validate_bits(bits))


def hamming_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Number of differing positions between two equal-length bit vectors."""
    a, b = validate_bits(a), validate_bits(b)
    if len(a) != len(b):
        raise EncodingError(f"length mismatch: {len(a)} vs {len(b)}")
    return sum(x != y for x, y in zip(a, b))
