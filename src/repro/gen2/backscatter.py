"""Tag-to-reader backscatter encodings: FM0 and Miller-modulated subcarrier.

A powered tag replies by switching its antenna impedance between a
reflective and a non-reflective state — ON-OFF keying of the reader's
continuous wave. The baseband reflection coefficient is therefore a
two-level waveform; Gen2 specifies its shape as FM0 (biphase space) or
Miller-M with a subcarrier of M cycles per symbol.

The key spectral fact RFly's relay exploits: both encodings concentrate
the reply's energy around the backscatter link frequency (BLF), hundreds
of kHz away from the carrier, while the reader's query sits within
~125 kHz of it (paper Fig. 4).

Encoding conventions
--------------------
Waveform levels are the tag's reflection states, 1.0 (reflective) and
0.0 (non-reflective). FM0 obeys the Gen2 rules: the level inverts at
every symbol boundary, and data-0 carries an extra mid-symbol inversion.
The FM0 preamble is the spec's ``1 0 1 0 v 1`` pattern, where ``v`` is a
symbol-long violation (no boundary inversion), optionally preceded by a
12-zero pilot when TRext is set. Each reply ends with the spec's "dummy
data-1" terminator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.constants import GEN2_BLF_DEFAULT, GEN2_BLF_MAX, GEN2_BLF_MIN
from repro.dsp.signal import Signal
from repro.errors import ConfigurationError, EncodingError
from repro.gen2.bitops import Bits, validate_bits
from repro.obs import metrics

PILOT_ZEROS = 12
PREAMBLE_BITS = 6  # 1 0 1 0 v 1


@dataclass(frozen=True)
class TagParams:
    """Tag reply parameters: link frequency, encoding, pilot tone."""

    blf: float = GEN2_BLF_DEFAULT
    miller_m: int = 1  # 1 = FM0; 2/4/8 = Miller subcarrier
    trext: bool = False  # long pilot tone

    def __post_init__(self) -> None:
        if not GEN2_BLF_MIN <= self.blf <= GEN2_BLF_MAX:
            raise ConfigurationError(
                f"BLF {self.blf / 1e3:.0f} kHz outside the Gen2 range "
                f"[{GEN2_BLF_MIN / 1e3:.0f}, {GEN2_BLF_MAX / 1e3:.0f}] kHz"
            )
        if self.miller_m not in (1, 2, 4, 8):
            raise ConfigurationError(f"Miller M must be 1, 2, 4 or 8, got {self.miller_m}")

    @property
    def symbol_period(self) -> float:
        """Duration of one data symbol, seconds."""
        return self.miller_m / self.blf


def _halves_to_signal(
    halves: Sequence[int],
    blf: float,
    sample_rate: float,
    center_frequency_hz: float,
    start_time: float,
) -> Signal:
    """Render half-symbol logic levels (0/1) into a sampled waveform."""
    half = 0.5 / blf
    boundaries = (np.arange(len(halves) + 1) * half * sample_rate).round().astype(int)
    samples = np.zeros(boundaries[-1], dtype=np.complex128)
    for level, lo, hi in zip(halves, boundaries[:-1], boundaries[1:]):
        samples[lo:hi] = float(level)
    metrics.count("gen2.samples_synthesized", len(samples))
    return Signal(samples, sample_rate, center_frequency_hz, start_time)


class FM0Encoder:
    """FM0 (biphase-space) encoder producing reflection waveforms."""

    def __init__(self, params: TagParams, sample_rate: float) -> None:
        if params.miller_m != 1:
            raise ConfigurationError("FM0Encoder requires miller_m == 1")
        if sample_rate < 4.0 * params.blf:
            raise ConfigurationError(
                f"sample rate {sample_rate} too low for BLF {params.blf}"
            )
        self.params = params
        self.sample_rate = float(sample_rate)

    def encode_halves(self, bits: Sequence[int]) -> List[int]:
        """Half-symbol levels for preamble + bits + dummy-1 terminator."""
        bits = validate_bits(bits)
        halves: List[int] = []
        level = 1  # reflective
        if self.params.trext:
            for _ in range(PILOT_ZEROS):
                level = 1 - level  # boundary inversion
                halves.extend([level, 1 - level])  # data-0: mid inversion
                level = 1 - level
        # Preamble 1 0 1 0 v 1.
        for bit in (1, 0, 1, 0):
            level = 1 - level
            if bit:
                halves.extend([level, level])
            else:
                halves.extend([level, 1 - level])
                level = 1 - level
        # Violation: hold the current level a full symbol with NO boundary
        # inversion — impossible for data, so it uniquely marks the frame.
        halves.extend([level, level])
        # Final preamble data-1.
        level = 1 - level
        halves.extend([level, level])
        # Data bits.
        for bit in bits:
            level = 1 - level
            if bit:
                halves.extend([level, level])
            else:
                halves.extend([level, 1 - level])
                level = 1 - level
        # Dummy data-1 terminator.
        level = 1 - level
        halves.extend([level, level])
        return halves

    def encode(
        self,
        bits: Sequence[int],
        center_frequency_hz: float = 0.0,
        start_time: float = 0.0,
    ) -> Signal:
        """Encode ``bits`` into a sampled reflection waveform."""
        halves = self.encode_halves(bits)
        return _halves_to_signal(
            halves, self.params.blf, self.sample_rate, center_frequency_hz, start_time
        )

    def duration_of(self, n_bits: int) -> float:
        """Airtime of a reply with ``n_bits`` payload bits, seconds."""
        pilot = PILOT_ZEROS if self.params.trext else 0
        symbols = pilot + PREAMBLE_BITS + n_bits + 1
        return symbols / self.params.blf

    def preamble_reference(self) -> np.ndarray:
        """The pilot+preamble rendered as ±1 samples (for receiver sync).

        Data-independent by construction, so a reader can correlate
        against it to time-align a reply before decoding.
        """
        pilot = PILOT_ZEROS if self.params.trext else 0
        n_halves = 2 * (pilot + PREAMBLE_BITS)
        halves = self.encode_halves(())[:n_halves]
        sig = _halves_to_signal(halves, self.params.blf, self.sample_rate, 0.0, 0.0)
        return np.real(sig.samples) * 2.0 - 1.0


class FM0Decoder:
    """Correlation-based FM0 decoder.

    Operates on real-valued reflection waveforms (complex inputs are
    projected; see :mod:`repro.reader.channel_estimation` for carrier
    phase recovery). The preamble violation anchors frame alignment.
    """

    def __init__(self, params: TagParams, sample_rate: float) -> None:
        self.params = params
        self.sample_rate = float(sample_rate)
        self._encoder = FM0Encoder(params, sample_rate)

    def _half_levels(self, samples: np.ndarray, n_halves: int, offset: int) -> np.ndarray:
        """Average the waveform over each half-symbol window."""
        half = 0.5 / self.params.blf * self.sample_rate
        levels = np.empty(n_halves)
        for i in range(n_halves):
            lo = offset + int(round(i * half))
            hi = offset + int(round((i + 1) * half))
            hi = min(hi, len(samples))
            if hi <= lo:
                raise EncodingError("waveform too short for the expected reply")
            levels[i] = float(np.mean(samples[lo:hi]))
        return levels

    def decode(self, sig: Signal, n_bits: int, offset: int = 0) -> Bits:
        """Decode ``n_bits`` payload bits from a reply waveform.

        Parameters
        ----------
        sig:
            Reflection waveform (real levels around {0, 1}, possibly
            scaled/offset — the decoder normalizes).
        n_bits:
            Expected payload length (the reader always knows it: 16 for
            RN16, PC+EPC+CRC for an EPC reply).
        offset:
            Sample index where the reply starts.
        """
        samples = np.real(sig.samples)
        pilot = PILOT_ZEROS if self.params.trext else 0
        n_halves = 2 * (pilot + PREAMBLE_BITS + n_bits + 1)
        levels = self._half_levels(samples, n_halves, offset)
        # Normalize to ±1 around the midpoint.
        mid = 0.5 * (np.max(levels) + np.min(levels))
        spread = np.max(levels) - np.min(levels)
        if spread < 1e-12:
            raise EncodingError("no backscatter modulation present")
        norm = np.sign(levels - mid)
        norm[norm == 0] = 1
        reference = np.asarray(self._encoder.encode_halves(tuple([0] * n_bits)))
        reference = np.sign(reference * 2 - 1)
        # Resolve the polarity ambiguity using the preamble halves.
        n_pre = 2 * (pilot + PREAMBLE_BITS)
        agreement = float(np.mean(norm[:n_pre] == reference[:n_pre]))
        if agreement < 0.5:
            norm = -norm
            agreement = 1.0 - agreement
        if agreement < 0.9:
            raise EncodingError(
                f"FM0 preamble correlation too weak ({agreement:.2f})"
            )
        bits = []
        for i in range(n_bits):
            first = norm[n_pre + 2 * i]
            second = norm[n_pre + 2 * i + 1]
            bits.append(1 if first == second else 0)
        return tuple(bits)


class MillerEncoder:
    """Miller-M encoder: baseband Miller times an M-cycle subcarrier.

    Baseband Miller rules (Gen2): a data-1 carries a mid-symbol phase
    inversion; the phase also inverts at the boundary between two
    successive data-0s. The baseband is then multiplied by a square
    subcarrier with M cycles per symbol. The preamble is four data-0
    symbols followed by ``010111`` (spec pattern), abbreviated here to the
    four zeros plus a data-1 marker, mirrored by the decoder.
    """

    PREAMBLE = (0, 1, 0, 1, 1, 1)

    def __init__(self, params: TagParams, sample_rate: float) -> None:
        if params.miller_m not in (2, 4, 8):
            raise ConfigurationError("MillerEncoder requires miller_m in {2, 4, 8}")
        samples_per_half_cycle = sample_rate / (2.0 * params.blf)
        if samples_per_half_cycle < 2.0:
            raise ConfigurationError(
                f"sample rate {sample_rate} too low for BLF {params.blf}"
            )
        self.params = params
        self.sample_rate = float(sample_rate)

    def _baseband_phases(self, bits: Sequence[int]) -> List[int]:
        """Per-half-symbol baseband phase (0/1) following the Miller rules."""
        phases: List[int] = []
        phase = 0
        previous = None
        for bit in bits:
            if previous == 0 and bit == 0:
                phase ^= 1  # inversion between successive zeros
            if bit:
                phases.extend([phase, phase ^ 1])
                phase ^= 1  # mid-symbol inversion for data-1
            else:
                phases.extend([phase, phase])
            previous = bit
        return phases

    def frame_bits(self, bits: Sequence[int]) -> Bits:
        """Pilot + preamble + payload + dummy-1, as baseband Miller bits."""
        bits = validate_bits(bits)
        pilot = (0,) * (16 if self.params.trext else 4)
        return pilot + self.PREAMBLE + bits + (1,)

    def encode(
        self,
        bits: Sequence[int],
        center_frequency_hz: float = 0.0,
        start_time: float = 0.0,
    ) -> Signal:
        """Encode payload bits into the subcarrier reflection waveform."""
        framed = self.frame_bits(bits)
        phases = self._baseband_phases(framed)
        m = self.params.miller_m
        # Each half-symbol contains M/2 subcarrier cycles = M half-cycles.
        halves: List[int] = []
        for phase in phases:
            for k in range(m):
                halves.append((k + phase) % 2)
        # Subcarrier half-cycle duration is 1/(2 BLF); reuse the renderer
        # by treating the subcarrier half-cycles as "halves" at BLF.
        return _halves_to_signal(
            halves, self.params.blf, self.sample_rate, center_frequency_hz, start_time
        )

    def duration_of(self, n_bits: int) -> float:
        """Airtime of a reply with ``n_bits`` payload bits, seconds."""
        framed = (16 if self.params.trext else 4) + len(self.PREAMBLE) + n_bits + 1
        return framed * self.params.miller_m / self.params.blf

    def preamble_reference(self) -> np.ndarray:
        """The pilot+preamble rendered as ±1 samples (for receiver sync)."""
        prefix = self.frame_bits(())[:-1]  # drop the dummy terminator
        phases = self._baseband_phases(prefix)
        m = self.params.miller_m
        halves = [(k + phase) % 2 for phase in phases for k in range(m)]
        sig = _halves_to_signal(halves, self.params.blf, self.sample_rate, 0.0, 0.0)
        return np.real(sig.samples) * 2.0 - 1.0


class MillerDecoder:
    """Correlation-based Miller-M decoder (mirror of the encoder)."""

    def __init__(self, params: TagParams, sample_rate: float) -> None:
        self.params = params
        self.sample_rate = float(sample_rate)
        self._encoder = MillerEncoder(params, sample_rate)

    def decode(self, sig: Signal, n_bits: int, offset: int = 0) -> Bits:
        """Decode ``n_bits`` payload bits from a Miller reply waveform."""
        samples = np.real(sig.samples)
        framed_len = len(self._encoder.frame_bits(tuple([0] * n_bits)))
        m = self.params.miller_m
        n_halves = framed_len * 2 * m
        # Average each subcarrier half-cycle (duration 1 / (2 BLF)).
        half_duration = self.sample_rate / (2.0 * self.params.blf)
        levels = np.empty(n_halves)
        for i in range(n_halves):
            lo = offset + int(round(i * half_duration))
            hi = offset + int(round((i + 1) * half_duration))
            hi = min(hi, len(samples))
            if hi <= lo:
                raise EncodingError("waveform too short for the expected reply")
            levels[i] = float(np.mean(samples[lo:hi]))
        mid = 0.5 * (np.max(levels) + np.min(levels))
        if np.max(levels) - np.min(levels) < 1e-12:
            raise EncodingError("no backscatter modulation present")
        norm = np.sign(levels - mid)
        norm[norm == 0] = 1

        def volts(bits_guess: Bits) -> np.ndarray:
            """Re-encode a bit hypothesis as subcarrier half-cycles."""
            phases = self._encoder._baseband_phases(
                self._encoder.frame_bits(bits_guess)
            )
            out = []
            for phase in phases:
                for k in range(m):
                    out.append(1.0 if (k + phase) % 2 else -1.0)
            return np.asarray(out)

        # Decode symbol by symbol against both bit hypotheses, tracking
        # the running phase exactly as the encoder does.
        framed_prefix = self._encoder.frame_bits(())[:-1]  # pilot+preamble
        reference = volts(tuple([0] * n_bits))
        n_pre_halves = len(framed_prefix) * 2 * m
        agreement = float(np.mean(norm[:n_pre_halves] == reference[:n_pre_halves]))
        if agreement < 0.5:
            norm = -norm
            agreement = 1.0 - agreement
        if agreement < 0.9:
            raise EncodingError(
                f"Miller preamble correlation too weak ({agreement:.2f})"
            )
        # Greedy per-bit decision: for each bit position, compare the
        # received halves with re-encodings of (decoded so far + 0/1).
        decoded: List[int] = []
        for i in range(n_bits):
            scores = []
            for candidate in (0, 1):
                trial = tuple(decoded) + (candidate,) + tuple([0] * (n_bits - i - 1))
                ref = volts(trial)
                lo = n_pre_halves + i * 2 * m
                hi = lo + 2 * m
                scores.append(float(np.mean(norm[lo:hi] == ref[lo:hi])))
            decoded.append(int(scores[1] > scores[0]))
        return tuple(decoded)
