"""Reader-side inventory MAC: slotted ALOHA with the Gen2 Q algorithm.

A reader inventories a population by opening ``2**Q`` slots per round.
Each slot produces one of three outcomes — idle, single reply (success,
followed by the ACK handshake), or collision — and the Q algorithm
(Gen2 Annex D) adapts Q from the observed outcome mix.

The relay is transparent to all of this (paper §3): it forwards the
queries and replies in the analog domain, so the MAC below runs
unmodified whether or not a relay sits in the middle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ProtocolError
from repro.gen2.bitops import Bits, bits_to_int
from repro.gen2.commands import Ack, Query, QueryAdjust, QueryRep
from repro.gen2.crc import check_crc16
from repro.gen2.tag_state import EpcReply, Gen2Tag, Rn16Reply


class SlotOutcome(enum.Enum):
    """What the reader observed in one slot."""

    IDLE = "idle"
    SUCCESS = "success"
    COLLISION = "collision"
    DECODE_ERROR = "decode_error"


class QAlgorithm:
    """The Gen2 Annex-D adaptive Q algorithm.

    Maintains a floating-point ``Qfp``; collisions push it up by C,
    idle slots pull it down by C, successes leave it unchanged. The
    integer Q is the round of Qfp, and a change of integer Q triggers a
    QueryAdjust.
    """

    def __init__(self, initial_q: int = 4, c: float = 0.3) -> None:
        if not 0 <= initial_q <= 15:
            raise ProtocolError(f"initial Q must be 0-15, got {initial_q}")
        if not 0.1 <= c <= 0.5:
            raise ProtocolError(f"C must be within [0.1, 0.5], got {c}")
        self.qfp = float(initial_q)
        self.c = float(c)

    @property
    def q(self) -> int:
        """Current integer slot-count exponent."""
        return int(round(self.qfp))

    def update(self, outcome: SlotOutcome) -> int:
        """Fold in a slot outcome; return the UpDn adjustment (-1/0/+1)."""
        before = self.q
        if outcome == SlotOutcome.COLLISION:
            self.qfp = min(15.0, self.qfp + self.c)
        elif outcome == SlotOutcome.IDLE:
            self.qfp = max(0.0, self.qfp - self.c)
        after = self.q
        return int(np.sign(after - before))


@dataclass
class SlotRecord:
    """One slot of an inventory round, as the reader saw it."""

    outcome: SlotOutcome
    epc: Optional[int] = None
    responders: int = 0


@dataclass
class InventoryRound:
    """The full outcome of one or more rounds over a tag population."""

    epcs: List[int] = field(default_factory=list)
    slots: List[SlotRecord] = field(default_factory=list)
    commands_sent: int = 0
    final_q: int = 0

    @property
    def successes(self) -> int:
        """Number of successful (singulation) slots."""
        return sum(1 for s in self.slots if s.outcome == SlotOutcome.SUCCESS)

    @property
    def collisions(self) -> int:
        """Number of collision slots."""
        return sum(1 for s in self.slots if s.outcome == SlotOutcome.COLLISION)

    @property
    def idles(self) -> int:
        """Number of idle slots."""
        return sum(1 for s in self.slots if s.outcome == SlotOutcome.IDLE)


def _broadcast(
    tags: Sequence[Gen2Tag],
    command,
    hears: Callable[[Gen2Tag], bool],
) -> List[Tuple[Gen2Tag, object]]:
    """Deliver a command to every tag that can hear it; gather replies."""
    replies = []
    for tag in tags:
        if not hears(tag):
            continue
        reply = tag.handle(command)
        if reply is not None:
            replies.append((tag, reply))
    return replies


def run_inventory(
    tags: Sequence[Gen2Tag],
    rng: np.random.Generator,
    session: str = "S0",
    target: str = "A",
    initial_q: int = 4,
    max_slots: int = 4096,
    hears: Optional[Callable[[Gen2Tag], bool]] = None,
    decodes: Optional[Callable[[Gen2Tag], bool]] = None,
    use_query_adjust: bool = True,
) -> InventoryRound:
    """Run inventory rounds until the population is exhausted.

    Parameters
    ----------
    tags:
        The tag population (only powered, in-range tags should be given;
        alternatively pass ``hears`` to model reachability).
    hears:
        Predicate: can this tag hear the reader's (possibly relayed)
        downlink right now? Defaults to "all tags".
    decodes:
        Predicate: given a single uncollided reply, does the reader
        decode it? Models uplink SNR. Defaults to "always".
    use_query_adjust:
        When True, integer-Q changes are applied mid-round via
        QueryAdjust, per the Annex-D strategy.

    Returns
    -------
    InventoryRound
        EPCs read (as integers) and per-slot outcomes.
    """
    hears = hears or (lambda tag: True)
    decodes = decodes or (lambda tag: True)
    qalg = QAlgorithm(initial_q=initial_q)
    result = InventoryRound()

    query = Query(q=qalg.q, session=session, target=target)
    replies = _broadcast(tags, query, hears)
    result.commands_sent += 1

    remaining = lambda: any(
        hears(t) and t.inventoried[session] == target for t in tags
    )
    slots_done = 0
    slots_in_round = 1 << qalg.q
    slot_index = 1

    while slots_done < max_slots:
        slots_done += 1
        record = SlotRecord(outcome=SlotOutcome.IDLE, responders=len(replies))
        if len(replies) == 1:
            tag, rn16_reply = replies[0]
            if isinstance(rn16_reply, Rn16Reply) and decodes(tag):
                ack = Ack(rn16=rn16_reply.rn16)
                result.commands_sent += 1
                epc_replies = _broadcast(tags, ack, hears)
                epc_replies = [
                    (t, r) for t, r in epc_replies if isinstance(r, EpcReply)
                ]
                if len(epc_replies) == 1 and decodes(epc_replies[0][0]):
                    payload = check_crc16(epc_replies[0][1].bits)
                    epc_bits = payload[16:]
                    record.outcome = SlotOutcome.SUCCESS
                    record.epc = bits_to_int(epc_bits)
                    result.epcs.append(record.epc)
                else:
                    record.outcome = SlotOutcome.DECODE_ERROR
            else:
                record.outcome = SlotOutcome.DECODE_ERROR
        elif len(replies) > 1:
            record.outcome = SlotOutcome.COLLISION
        result.slots.append(record)

        if not remaining():
            break

        updn = qalg.update(record.outcome)
        if use_query_adjust and updn != 0:
            adjust = QueryAdjust(session=session, updn=updn)
            replies = _broadcast(tags, adjust, hears)
            result.commands_sent += 1
            slots_in_round = 1 << qalg.q
            slot_index = 1
        elif slot_index >= slots_in_round:
            query = Query(q=qalg.q, session=session, target=target)
            replies = _broadcast(tags, query, hears)
            result.commands_sent += 1
            slots_in_round = 1 << qalg.q
            slot_index = 1
        else:
            rep = QueryRep(session=session)
            replies = _broadcast(tags, rep, hears)
            result.commands_sent += 1
            slot_index += 1

    result.final_q = qalg.q
    return result
