"""Gen2 link timing and inventory throughput.

The paper's motivation (§1) is inventory speed: manual warehouse scans
take up to a month, and a drone that continuously reads tags while
flying can cut that dramatically. This module computes the protocol's
airtime budget — command durations, the T1-T3 turnaround gaps, singulation
time per tag — and from it the achievable read rate and area scan time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.constants import (
    GEN2_EPC_BITS,
    GEN2_PC_BITS,
    GEN2_CRC16_BITS,
    GEN2_RN16_BITS,
)
from repro.errors import ConfigurationError
from repro.gen2.backscatter import PILOT_ZEROS, PREAMBLE_BITS, TagParams
from repro.gen2.commands import Ack, Query, QueryRep
from repro.gen2.pie import DELIMITER_SECONDS, ReaderParams


@dataclass(frozen=True)
class LinkTiming:
    """Airtime calculator for one reader/tag parameter set."""

    reader: ReaderParams
    tag: TagParams

    # -- reader-side durations -------------------------------------------------

    def command_seconds(self, bits, preamble: bool) -> float:
        """Airtime of a PIE-encoded command."""
        p = self.reader
        ones = sum(bits)
        zeros = len(bits) - ones
        total = DELIMITER_SECONDS + p.data0 + p.rtcal
        if preamble:
            total += p.trcal
        return total + ones * p.data1 + zeros * p.data0

    @property
    def query_seconds(self) -> float:
        """Airtime of a full Query command."""
        q = Query()
        return self.command_seconds(q.to_bits(), preamble=True)

    @property
    def query_rep_seconds(self) -> float:
        """Airtime of a QueryRep command."""
        return self.command_seconds(QueryRep().to_bits(), preamble=False)

    @property
    def ack_seconds(self) -> float:
        """Airtime of an ACK command."""
        return self.command_seconds(Ack(rn16=0).to_bits(), preamble=False)

    # -- tag-side durations -----------------------------------------------------

    def reply_seconds(self, n_bits: int) -> float:
        """Airtime of a tag reply of ``n_bits`` payload bits."""
        pilot = (PILOT_ZEROS if self.tag.trext else 0)
        if self.tag.miller_m == 1:
            symbols = pilot + PREAMBLE_BITS + n_bits + 1
            return symbols / self.tag.blf
        framed = (16 if self.tag.trext else 4) + 6 + n_bits + 1
        return framed * self.tag.miller_m / self.tag.blf

    @property
    def rn16_seconds(self) -> float:
        """Airtime of an RN16 reply."""
        return self.reply_seconds(GEN2_RN16_BITS)

    @property
    def epc_reply_seconds(self) -> float:
        """Airtime of a {PC, EPC, CRC-16} reply."""
        return self.reply_seconds(GEN2_PC_BITS + GEN2_EPC_BITS + GEN2_CRC16_BITS)

    # -- turnaround gaps (Gen2 Table 6.16, for DR = 64/3) ----------------------------

    @property
    def t1_seconds(self) -> float:
        """Reader-command end to tag-reply start: max(RTcal, 10/BLF)."""
        return max(self.reader.rtcal, 10.0 / self.tag.blf)

    @property
    def t2_seconds(self) -> float:
        """Tag-reply end to next reader command: ~10 BLF periods."""
        return 10.0 / self.tag.blf

    # -- throughput -------------------------------------------------------------

    @property
    def singulation_seconds(self) -> float:
        """One successful slot: QueryRep + RN16 + ACK + EPC + gaps."""
        return (
            self.query_rep_seconds
            + self.t1_seconds
            + self.rn16_seconds
            + self.t2_seconds
            + self.ack_seconds
            + self.t1_seconds
            + self.epc_reply_seconds
            + self.t2_seconds
        )

    @property
    def empty_slot_seconds(self) -> float:
        """An idle slot: QueryRep plus the T1+T3 listening window."""
        return self.query_rep_seconds + self.t1_seconds + self.t2_seconds

    def reads_per_second(self, slot_efficiency: float = 0.35) -> float:
        """Sustained tag reads per second.

        ``slot_efficiency`` is the fraction of airtime spent in
        successful slots; slotted ALOHA with an adapted Q peaks near
        1/e ~ 0.37 of slots being singulations.
        """
        if not 0.0 < slot_efficiency <= 1.0:
            raise ConfigurationError("slot efficiency must be in (0, 1]")
        effective = self.singulation_seconds / slot_efficiency
        return 1.0 / effective

    def scan_seconds(
        self,
        n_tags: int,
        passes: float = 1.5,
        reads_per_second: Optional[float] = None,
    ) -> float:
        """Time to read ``n_tags`` (with re-read margin)."""
        if n_tags < 0:
            raise ConfigurationError("tag count must be >= 0")
        if passes < 1.0:
            raise ConfigurationError("passes must be >= 1")
        rate = reads_per_second or self.reads_per_second()
        return n_tags * passes / rate
