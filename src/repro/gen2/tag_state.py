"""Gen2 tag inventory state machine.

Implements the tag side of the Gen2 inventory protocol: slot-counter
arbitration, RN16 handshake, EPC backscatter, session inventoried flags,
and the SL (selected) flag that Select manipulates. The relay-embedded
reference RFID of the paper (§5.1) is an ordinary instance of this
machine — "it abides by the EPC Gen2 protocol which enables RFly to
naturally avoid collisions" between it and environment tags.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import ProtocolError
from repro.gen2.bitops import Bits, bits_from_int, bits_to_int, validate_bits
from repro.gen2.commands import Ack, Nak, Query, QueryAdjust, QueryRep, Select
from repro.gen2.crc import append_crc16


class TagState(enum.Enum):
    """Inventory states of the Gen2 tag FSM (the subset inventory uses)."""

    READY = "ready"
    ARBITRATE = "arbitrate"
    REPLY = "reply"
    ACKNOWLEDGED = "acknowledged"


@dataclass(frozen=True)
class Rn16Reply:
    """A tag's 16-bit random handle, backscattered in its slot."""

    rn16: int

    @property
    def bits(self) -> Bits:
        """The reply payload as bits, MSB first."""
        return bits_from_int(self.rn16, 16)


@dataclass(frozen=True)
class EpcReply:
    """A tag's {PC, EPC, CRC-16} reply to a valid ACK."""

    pc: int
    epc: Bits

    @property
    def bits(self) -> Bits:
        """The reply payload as bits, MSB first."""
        return append_crc16(bits_from_int(self.pc, 16) + self.epc)


class Gen2Tag:
    """One tag's protocol engine.

    Parameters
    ----------
    epc:
        The tag's EPC as a bit tuple (96 bits for the Alien Squiggle
        class of tags used in the paper).
    rng:
        Randomness source for slot draws and RN16 generation.
    """

    def __init__(self, epc: Sequence[int], rng: np.random.Generator) -> None:
        self.epc: Bits = validate_bits(epc)
        if len(self.epc) % 16 != 0:
            raise ProtocolError(
                f"EPC length must be a multiple of 16 bits, got {len(self.epc)}"
            )
        self.rng = rng
        # PC word: EPC length in words, in the top 5 bits.
        self.pc = (len(self.epc) // 16) << 11
        self.state = TagState.READY
        self.slot = 0
        self.rn16 = 0
        self.selected = False  # SL flag
        self.inventoried: Dict[str, str] = {s: "A" for s in ("S0", "S1", "S2", "S3")}
        self._session = "S0"
        self._q = 0

    # -- helpers -----------------------------------------------------------

    def _matches_select(self, command: Select) -> bool:
        if command.membank != "EPC":
            return False
        start = command.pointer - 0x20  # EPC memory starts after CRC+PC
        if start < 0 or start + len(command.mask) > len(self.epc):
            return False
        return self.epc[start : start + len(command.mask)] == command.mask

    def _matches_query_criteria(self, query: Query) -> bool:
        if query.sel == 2 and self.selected:
            return False
        if query.sel == 3 and not self.selected:
            return False
        return self.inventoried[query.session] == query.target

    def _draw_slot(self) -> Optional[Rn16Reply]:
        self.slot = int(self.rng.integers(0, 1 << self._q)) if self._q else 0
        if self.slot == 0:
            self.rn16 = int(self.rng.integers(0, 1 << 16))
            self.state = TagState.REPLY
            return Rn16Reply(self.rn16)
        self.state = TagState.ARBITRATE
        return None

    # -- the FSM ---------------------------------------------------------------

    def handle(self, command) -> Optional[object]:
        """Process a reader command; return a reply or None.

        The return value is :class:`Rn16Reply`, :class:`EpcReply`, or
        ``None`` when the tag stays silent.
        """
        if isinstance(command, Select):
            return self._handle_select(command)
        if isinstance(command, Query):
            return self._handle_query(command)
        if isinstance(command, QueryRep):
            return self._handle_query_rep(command)
        if isinstance(command, QueryAdjust):
            return self._handle_query_adjust(command)
        if isinstance(command, Ack):
            return self._handle_ack(command)
        if isinstance(command, Nak):
            return self._handle_nak()
        raise ProtocolError(f"tag cannot handle {type(command).__name__}")

    def _handle_select(self, command: Select) -> None:
        matched = self._matches_select(command)
        # Action table (Gen2 Table 6.29), applied to SL or inventoried:
        #   action 0: assert/deassert   4: deassert/assert
        #   action 1: assert/nothing    5: deassert/nothing
        #   action 2: nothing/deassert  6: nothing/assert
        #   action 3: toggle/nothing    7: nothing/toggle
        assert_actions = {0: matched, 1: matched, 4: not matched, 6: not matched}
        deassert_actions = {0: not matched, 2: not matched, 4: matched, 5: matched}
        toggle_actions = {3: matched, 7: not matched}
        if command.target == "SL":
            if assert_actions.get(command.action, False):
                self.selected = True
            elif deassert_actions.get(command.action, False):
                self.selected = False
            elif toggle_actions.get(command.action, False):
                self.selected = not self.selected
        else:
            flags = self.inventoried
            if assert_actions.get(command.action, False):
                flags[command.target] = "A"
            elif deassert_actions.get(command.action, False):
                flags[command.target] = "B"
            elif toggle_actions.get(command.action, False):
                flags[command.target] = (
                    "B" if flags[command.target] == "A" else "A"
                )
        self.state = TagState.READY
        return None

    def _handle_query(self, query: Query) -> Optional[Rn16Reply]:
        # A new round: an acknowledged tag first toggles its flag.
        if self.state == TagState.ACKNOWLEDGED:
            self._toggle_inventoried()
        self._session = query.session
        self._q = query.q
        if not self._matches_query_criteria(query):
            self.state = TagState.READY
            return None
        return self._draw_slot()

    def _handle_query_rep(self, command: QueryRep) -> Optional[Rn16Reply]:
        if command.session != self._session:
            return None
        if self.state == TagState.ACKNOWLEDGED:
            self._toggle_inventoried()
            self.state = TagState.READY
            return None
        if self.state != TagState.ARBITRATE:
            if self.state == TagState.REPLY:
                # Our RN16 went unacknowledged: return to arbitration.
                self.state = TagState.ARBITRATE
                self.slot = 1 << 15  # effectively out of this round
            return None
        self.slot -= 1
        if self.slot == 0:
            self.rn16 = int(self.rng.integers(0, 1 << 16))
            self.state = TagState.REPLY
            return Rn16Reply(self.rn16)
        return None

    def _handle_query_adjust(self, command: QueryAdjust) -> Optional[Rn16Reply]:
        if command.session != self._session:
            return None
        if self.state == TagState.ACKNOWLEDGED:
            self._toggle_inventoried()
            self.state = TagState.READY
            return None
        if self.state not in (TagState.ARBITRATE, TagState.REPLY):
            return None
        self._q = int(np.clip(self._q + command.updn, 0, 15))
        return self._draw_slot()

    def _handle_ack(self, command: Ack) -> Optional[EpcReply]:
        if self.state == TagState.REPLY and command.rn16 == self.rn16:
            self.state = TagState.ACKNOWLEDGED
            return EpcReply(self.pc, self.epc)
        if self.state in (TagState.REPLY, TagState.ACKNOWLEDGED):
            # Wrong RN16: back to arbitration per the spec.
            if command.rn16 != self.rn16:
                self.state = TagState.ARBITRATE
                self.slot = 1 << 15
                return None
            # Re-ACK of an acknowledged tag re-sends the EPC.
            return EpcReply(self.pc, self.epc)
        return None

    def _handle_nak(self) -> None:
        if self.state != TagState.READY:
            self.state = TagState.ARBITRATE
            self.slot = 1 << 15
        return None

    def _toggle_inventoried(self) -> None:
        flag = self.inventoried[self._session]
        self.inventoried[self._session] = "B" if flag == "A" else "A"

    # -- introspection -------------------------------------------------------

    @property
    def epc_int(self) -> int:
        """The EPC as an integer (convenient dictionary key)."""
        return bits_to_int(self.epc)

    def power_reset(self) -> None:
        """Model a loss of power: volatile inventory state resets.

        Session S0 inventoried flags are volatile and reset to A; SL and
        S2/S3 flags have persistence times we conservatively keep.
        """
        self.state = TagState.READY
        self.slot = 0
        self.rn16 = 0
        self.inventoried["S0"] = "A"
