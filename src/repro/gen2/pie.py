"""Reader-to-tag PIE (pulse-interval encoding) modulation.

Gen2 readers talk to tags with DSB-ASK + PIE: the continuous wave is
briefly attenuated at the end of every symbol, and the bit value is
carried by the symbol *length* (data-1 is 1.5-2x longer than data-0,
whose length is called Tari). A Query is preceded by a preamble
(delimiter, data-0, RTcal, TRcal); other commands by a frame-sync
(delimiter, data-0, RTcal). TRcal communicates the backscatter link
frequency the tag must reply at: BLF = DR / TRcal.

The narrow (~125 kHz) spectrum of this waveform versus the tag's
~500 kHz-offset response is the guard-band that RFly's relay filters
exploit (paper Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.constants import (
    GEN2_BLF_DEFAULT,
    GEN2_TARI_DEFAULT,
    GEN2_TARI_MAX,
    GEN2_TARI_MIN,
)
from repro.dsp.signal import Signal
from repro.errors import ConfigurationError, EncodingError
from repro.gen2.bitops import Bits, validate_bits
from repro.obs import metrics

DELIMITER_SECONDS = 12.5e-6
DR_64_OVER_3 = 64.0 / 3.0
DR_8 = 8.0


@dataclass(frozen=True)
class ReaderParams:
    """Reader link parameters: symbol timing and modulation depth.

    ``blf`` is the backscatter link frequency the reader asks tags to use;
    it determines TRcal through the divide ratio ``dr``.
    """

    tari: float = GEN2_TARI_DEFAULT
    data1_factor: float = 2.0  # data-1 length as a multiple of Tari (1.5-2)
    pw_factor: float = 0.5  # low-pulse width as a fraction of Tari
    modulation_depth: float = 0.9
    dr: float = DR_64_OVER_3
    blf: float = GEN2_BLF_DEFAULT
    edge_smoothing_seconds: float = 0.0
    """Envelope rise/fall time. Real readers shape the ASK edges to meet
    the regulatory ~125 kHz mask (paper Fig. 4); 0 disables shaping."""

    def __post_init__(self) -> None:
        if not GEN2_TARI_MIN <= self.tari <= GEN2_TARI_MAX:
            raise ConfigurationError(
                f"Tari {self.tari * 1e6:.2f} us outside the Gen2 range "
                f"[{GEN2_TARI_MIN * 1e6}, {GEN2_TARI_MAX * 1e6}] us"
            )
        if not 1.5 <= self.data1_factor <= 2.0:
            raise ConfigurationError(
                f"data-1 length must be 1.5-2.0 Tari, got {self.data1_factor}"
            )
        if not 0.0 < self.modulation_depth <= 1.0:
            raise ConfigurationError(
                f"modulation depth must be in (0, 1], got {self.modulation_depth}"
            )
        if self.dr not in (DR_64_OVER_3, DR_8):
            raise ConfigurationError(f"DR must be 64/3 or 8, got {self.dr}")
        if self.blf <= 0:
            raise ConfigurationError(f"BLF must be positive, got {self.blf}")
        if self.edge_smoothing_seconds < 0:
            raise ConfigurationError("edge smoothing must be >= 0")
        if self.edge_smoothing_seconds > self.pw:
            raise ConfigurationError(
                "edge smoothing longer than the low pulse would erase it"
            )
        if not 1.1 * self.rtcal <= self.trcal <= 3.0 * self.rtcal:
            raise ConfigurationError(
                f"TRcal {self.trcal * 1e6:.1f} us outside [1.1, 3] x RTcal "
                f"({self.rtcal * 1e6:.1f} us) — choose a compatible Tari/BLF"
            )

    @property
    def data0(self) -> float:
        """Data-0 symbol length (= Tari), seconds."""
        return self.tari

    @property
    def data1(self) -> float:
        """Data-1 symbol length, seconds."""
        return self.data1_factor * self.tari

    @property
    def pw(self) -> float:
        """Low-pulse width at the end of each symbol, seconds."""
        return self.pw_factor * self.tari

    @property
    def rtcal(self) -> float:
        """Reader-to-tag calibration symbol: data-0 + data-1 lengths."""
        return self.data0 + self.data1

    @property
    def trcal(self) -> float:
        """Tag-to-reader calibration symbol: sets the BLF as DR / TRcal."""
        return self.dr / self.blf


class PIEEncoder:
    """Encode command bits into a PIE complex-envelope waveform."""

    def __init__(self, params: ReaderParams, sample_rate: float) -> None:
        if sample_rate < 8.0 / params.tari:
            raise ConfigurationError(
                f"sample rate {sample_rate} too low to represent Tari "
                f"{params.tari}"
            )
        self.params = params
        self.sample_rate = float(sample_rate)
        self._low_level = 1.0 - params.modulation_depth

    def _samples(self, duration: float, level: float) -> np.ndarray:
        n = max(1, int(round(duration * self.sample_rate)))
        return np.full(n, level, dtype=np.complex128)

    def _symbol(self, total: float) -> np.ndarray:
        high = self._samples(total - self.params.pw, 1.0)
        low = self._samples(self.params.pw, self._low_level)
        return np.concatenate([high, low])

    def _delimiter(self) -> np.ndarray:
        return self._samples(DELIMITER_SECONDS, self._low_level)

    def encode(
        self,
        bits: Sequence[int],
        preamble: bool,
        center_frequency_hz: float = 0.0,
        start_time: float = 0.0,
    ) -> Signal:
        """Encode ``bits`` with a Query preamble or a frame-sync.

        Parameters
        ----------
        bits:
            Command bits, MSB first.
        preamble:
            True for the full Query preamble (with TRcal), False for the
            frame-sync used by every other command.
        """
        bits = validate_bits(bits)
        if not bits:
            raise EncodingError("cannot encode an empty command")
        p = self.params
        pieces: List[np.ndarray] = [self._delimiter(), self._symbol(p.data0)]
        pieces.append(self._symbol(p.rtcal))
        if preamble:
            pieces.append(self._symbol(p.trcal))
        for bit in bits:
            pieces.append(self._symbol(p.data1 if bit else p.data0))
        # Return to continuous wave after the command, as a real reader
        # does; this also gives the decoder the final symbol's edge.
        pieces.append(self._samples(p.tari, 1.0))
        samples = np.concatenate(pieces)
        if p.edge_smoothing_seconds > 0:
            window_len = max(int(round(p.edge_smoothing_seconds * self.sample_rate)), 2)
            window = np.hanning(window_len + 2)[1:-1]
            window = window / np.sum(window)
            # Symmetric smoothing keeps the threshold crossings centered,
            # so PIE interval decoding is unaffected.
            samples = np.convolve(samples, window, mode="same")
        metrics.count("gen2.samples_synthesized", len(samples))
        return Signal(samples, self.sample_rate, center_frequency_hz, start_time)


class PIEDecoder:
    """Decode a PIE waveform back into bits (what a tag's front end does).

    The decoder is calibration-driven, like a real tag: it measures RTcal
    from the waveform itself and classifies each symbol against the
    RTcal/2 pivot, so it works for any Tari the reader chose.
    """

    def __init__(self, sample_rate: float) -> None:
        if sample_rate <= 0:
            raise ConfigurationError("sample rate must be positive")
        self.sample_rate = float(sample_rate)

    def _edges(self, envelope: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Indices of falling and rising threshold crossings."""
        lo, hi = float(np.min(envelope)), float(np.max(envelope))
        if hi - lo < 1e-12:
            raise EncodingError("waveform has no modulation to decode")
        threshold = 0.5 * (lo + hi)
        above = envelope > threshold
        changes = np.flatnonzero(np.diff(above.astype(np.int8)))
        falling = changes[~above[changes + 1]] + 1
        rising = changes[above[changes + 1]] + 1
        return falling, rising

    def decode(self, sig: Signal) -> Tuple[Bits, bool, float]:
        """Decode a command waveform.

        Returns
        -------
        (bits, had_preamble, trcal_seconds)
            The command bits, whether a Query preamble (TRcal) was
            present, and the measured TRcal (0.0 when absent).
        """
        envelope = np.abs(sig.samples)
        falling, rising = self._edges(envelope)
        if len(rising) < 3 or len(falling) < 3:
            raise EncodingError("too few symbol edges for a Gen2 command")
        # The delimiter is the first low region; symbols start at its
        # rising edge. Symbol i spans rising[i] .. rising[i+1].
        durations = np.diff(rising) / self.sample_rate
        if len(durations) < 2:
            raise EncodingError("waveform ends before RTcal")
        data0 = durations[0]
        rtcal = durations[1]
        if not 2.4 * data0 <= rtcal <= 3.2 * data0:
            raise EncodingError(
                f"RTcal {rtcal * 1e6:.2f} us inconsistent with data-0 "
                f"{data0 * 1e6:.2f} us"
            )
        pivot = rtcal / 2.0
        index = 2
        trcal = 0.0
        had_preamble = False
        if index < len(durations) and durations[index] > 1.05 * rtcal:
            trcal = float(durations[index])
            had_preamble = True
            index += 1
        bits = tuple(int(d > pivot) for d in durations[index:])
        if not bits:
            raise EncodingError("command carried no data bits")
        return bits, had_preamble, trcal

    def blf_from_trcal(self, trcal: float, dr: float = DR_64_OVER_3) -> float:
        """Backscatter link frequency implied by a measured TRcal."""
        if trcal <= 0:
            raise EncodingError("TRcal must be positive to derive a BLF")
        return dr / trcal
