"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so ``pip install -e .``
cannot build the PEP 660 editable wheel. ``python setup.py develop`` (or
``pip install -e . --no-build-isolation`` on newer toolchains) installs the
package from pyproject.toml metadata instead.
"""

from setuptools import setup

setup()
