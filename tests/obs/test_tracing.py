"""Unit tests for the structured tracing layer (repro.obs.tracing)."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracing import (
    _NULL_SPAN,
    Span,
    Tracer,
    activated,
    active_tracer,
    render_span_tree,
    span,
    write_spans_jsonl,
)


class TestSpanTree:
    def test_nesting_builds_parent_child_edges(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert [child.name for child in root.children] == [
            "inner_a",
            "inner_b",
        ]

    def test_sibling_order_is_open_order(self):
        tracer = Tracer()
        with tracer.span("root"):
            for name in ("first", "second", "third"):
                with tracer.span(name):
                    pass
        assert [c.name for c in tracer.roots[0].children] == [
            "first",
            "second",
            "third",
        ]

    def test_sequential_roots_form_a_forest(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [root.name for root in tracer.roots] == ["a", "b"]

    def test_timings_recorded_and_nested_le_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.wall_time_s >= inner.wall_time_s >= 0.0
        assert outer.cpu_time_s >= 0.0

    def test_stack_unwinds_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        # Both spans closed despite the exception; a new span is a root.
        with tracer.span("after"):
            pass
        assert [root.name for root in tracer.roots] == ["outer", "after"]

    def test_attrs_sorted_deterministically(self):
        tracer = Tracer()
        with tracer.span("s", zebra=1, alpha=2):
            pass
        assert tracer.roots[0].attrs == (("alpha", 2), ("zebra", 1))

    def test_walk_is_depth_first(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        names = [node.name for node in tracer.roots[0].walk()]
        assert names == ["root", "a", "a1", "b"]


class TestSerialization:
    def _sample_tracer(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("root", grid=32):
            with tracer.span("child", phase="fine"):
                pass
        return tracer

    def test_to_dict_from_dict_round_trip(self):
        root = self._sample_tracer().roots[0]
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt.structure() == root.structure()
        assert rebuilt.wall_time_s == root.wall_time_s
        assert rebuilt.cpu_time_s == root.cpu_time_s

    def test_to_dict_is_json_serializable(self):
        root = self._sample_tracer().roots[0]
        text = json.dumps(root.to_dict(), sort_keys=True)
        assert Span.from_dict(json.loads(text)).structure() == root.structure()

    def test_structure_excludes_timings(self):
        a = Span(name="s", wall_time_s=1.0, cpu_time_s=0.5)
        b = Span(name="s", wall_time_s=2.0, cpu_time_s=0.1)
        assert a.structure() == b.structure()

    def test_structure_includes_attrs_and_children(self):
        a = Span(name="s", attrs=(("n", 1),))
        b = Span(name="s", attrs=(("n", 2),))
        assert a.structure() != b.structure()
        c = Span(name="s", children=[Span(name="k")])
        assert a.structure() != c.structure()

    def test_write_spans_jsonl(self, tmp_path):
        root = self._sample_tracer().roots[0]
        path = write_spans_jsonl(
            tmp_path / "deep" / "trace.jsonl",
            [{"task": None, "span": root.to_dict()}],
        )
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["task"] is None
        assert entry["span"]["name"] == "root"


class TestModuleLevelSpan:
    def test_inactive_returns_shared_null_span(self):
        assert active_tracer() is None
        assert span("anything", n=1) is _NULL_SPAN
        with span("still.inactive"):
            pass  # no-op context manager works

    def test_activated_records_and_restores(self):
        tracer = Tracer()
        with activated(tracer):
            assert active_tracer() is tracer
            with span("recorded", n=3):
                pass
        assert active_tracer() is None
        assert [root.name for root in tracer.roots] == ["recorded"]
        assert tracer.roots[0].attrs == (("n", 3),)

    def test_activated_none_leaves_tracing_untouched(self):
        outer = Tracer()
        with activated(outer):
            with activated(None):
                with span("goes.to.outer"):
                    pass
        assert [root.name for root in outer.roots] == ["goes.to.outer"]

    def test_activated_nests_and_unwinds(self):
        outer, inner = Tracer(), Tracer()
        with activated(outer):
            with activated(inner):
                with span("inner.span"):
                    pass
            with span("outer.span"):
                pass
        assert [r.name for r in inner.roots] == ["inner.span"]
        assert [r.name for r in outer.roots] == ["outer.span"]


class TestRenderSpanTree:
    def test_empty(self):
        assert render_span_tree([]) == "(no spans recorded)"

    def test_renders_names_attrs_and_percentages(self):
        tracer = Tracer()
        with tracer.span("sweep.run", sweep="fig12"):
            with tracer.span("sweep.dispatch", n_tasks=6):
                pass
        text = render_span_tree(tracer.root_dicts())
        assert "sweep.run [sweep=fig12]" in text
        assert "  sweep.dispatch [n_tasks=6]" in text
        assert "%" in text

    def test_total_wall_time_sets_denominator(self):
        spans = [{"name": "half", "wall_time_s": 0.5, "children": []}]
        text = render_span_tree(spans, total_wall_time_s=1.0)
        assert "50.0%" in text
