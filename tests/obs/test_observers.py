"""Observer protocol tests: probes, telemetry envelopes, engine wiring."""

from __future__ import annotations

import json
import logging

import pytest

from repro.obs import metrics as metrics_mod
from repro.obs import tracing as tracing_mod
from repro.obs.observers import (
    NULL_PROBE,
    CProfileObserver,
    MetricsObserver,
    SweepObserver,
    TaskTelemetry,
    TraceMallocObserver,
    TraceObserver,
    WorkerProbe,
    combined_probe,
    probed,
    task_span_coverage,
)
from repro.runtime import ResultCache, RuntimeConfig, SweepTask, cache_key, run_sweep

from tests.runtime import sweep_fns


def _tasks(n_tasks=3, n=16):
    return [
        SweepTask.make(
            sweep_fns.instrumented,
            params={"n": n},
            seed=seed,
            label=f"obs/t{seed}",
        )
        for seed in range(n_tasks)
    ]


class TestWorkerProbe:
    def test_null_probe_disabled(self):
        assert not NULL_PROBE.enabled

    def test_any_flag_enables(self):
        assert WorkerProbe(trace=True).enabled
        assert WorkerProbe(metrics=True).enabled
        assert WorkerProbe(trace_malloc=True).enabled
        assert WorkerProbe(profile=True).enabled

    def test_merged_is_union(self):
        merged = WorkerProbe(trace=True).merged(WorkerProbe(profile=True))
        assert merged == WorkerProbe(trace=True, profile=True)

    def test_combined_probe_unions_observers(self):
        probe = combined_probe([TraceObserver(), MetricsObserver()])
        assert probe == WorkerProbe(trace=True, metrics=True)

    def test_base_observer_contributes_nothing(self):
        assert combined_probe([SweepObserver()]) == NULL_PROBE


class TestProbed:
    def test_null_probe_collects_nothing(self):
        with probed(NULL_PROBE) as telemetry:
            tracing_mod.span("ignored")
        assert telemetry == TaskTelemetry()

    def test_trace_probe_collects_spans_and_restores(self):
        before = tracing_mod.active_tracer()
        with probed(WorkerProbe(trace=True)) as telemetry:
            with tracing_mod.span("probed.span", n=1):
                pass
        assert tracing_mod.active_tracer() is before
        assert [s["name"] for s in telemetry.spans] == ["probed.span"]

    def test_metrics_probe_snapshots_and_restores(self):
        before = metrics_mod.active_registry()
        with probed(WorkerProbe(metrics=True)) as telemetry:
            metrics_mod.count("probed.counter", 3)
        assert metrics_mod.active_registry() is before
        assert telemetry.metrics["counters"] == {"probed.counter": 3.0}

    def test_fresh_collectors_shadow_outer_scope(self):
        # A task inside an engine-activated tracer/registry must record
        # into its own fresh collectors, then restore the engine's.
        outer_tracer = tracing_mod.Tracer()
        outer_registry = metrics_mod.MetricsRegistry()
        with tracing_mod.activated(outer_tracer), metrics_mod.activated(
            outer_registry
        ):
            with probed(WorkerProbe(trace=True, metrics=True)) as telemetry:
                with tracing_mod.span("task.only"):
                    metrics_mod.count("task.only")
            with tracing_mod.span("engine.only"):
                metrics_mod.count("engine.only")
        assert [s["name"] for s in telemetry.spans] == ["task.only"]
        assert telemetry.metrics["counters"] == {"task.only": 1.0}
        assert [r.name for r in outer_tracer.roots] == ["engine.only"]
        assert outer_registry.counters == {"engine.only": 1.0}

    def test_trace_malloc_probe_records_peak(self):
        with probed(WorkerProbe(trace_malloc=True)) as telemetry:
            _ = [bytearray(1024) for _ in range(64)]
        assert telemetry.peak_memory_bytes > 0

    def test_profile_probe_records_rows(self):
        with probed(WorkerProbe(profile=True)) as telemetry:
            sum(range(10_000))
        assert telemetry.profile_rows
        row = telemetry.profile_rows[0]
        assert {"function", "ncalls", "tottime_s", "cumtime_s"} <= set(row)


class TestTraceObserver:
    def test_report_renders_engine_spans(self):
        observer = TraceObserver()
        run_sweep(_tasks(), name="obs_trace", observers=[observer])
        report = observer.report()
        assert "sweep.run" in report
        assert "sweep.dispatch" in report

    def test_writes_trace_jsonl(self, tmp_path):
        observer = TraceObserver(out_dir=tmp_path)
        run_sweep(_tasks(2), name="obs_trace", observers=[observer])
        assert observer.last_path == tmp_path / "obs_trace.trace.jsonl"
        entries = [
            json.loads(line)
            for line in observer.last_path.read_text().splitlines()
        ]
        engine = [e for e in entries if e["task"] is None]
        per_task = [e for e in entries if e["task"] is not None]
        assert engine and engine[0]["span"]["name"] == "sweep.run"
        assert [e["task"] for e in per_task] == [0, 1]
        assert all(e["span"]["name"] == "task.execute" for e in per_task)

    def test_manifest_records_task_spans(self):
        observer = TraceObserver()
        result = run_sweep(_tasks(1), name="obs_trace", observers=[observer])
        spans = result.manifest.tasks[0].spans
        root = tracing_mod.Span.from_dict(spans[0])
        names = [node.name for node in root.walk()]
        assert names[0] == "task.execute"
        assert "test.task" in names and "test.draw" in names

    def test_task_span_coverage_near_total_when_serial(self):
        observer = TraceObserver()
        result = run_sweep(
            [
                SweepTask.make(
                    sweep_fns.slow_square,
                    params={"x": 3, "delay_s": 0.02},
                    label=f"slow/{i}",
                )
                for i in range(3)
            ],
            name="obs_coverage",
            observers=[observer],
        )
        assert task_span_coverage(result.manifest) >= 0.9

    def test_empty_report_without_sweeps(self):
        assert TraceObserver().report() == "(no sweeps traced)"


class TestMetricsObserver:
    def test_engine_and_task_counters_merge(self):
        observer = MetricsObserver()
        run_sweep(_tasks(3, n=8), name="obs_metrics", observers=[observer])
        counters = observer.registry.counters
        assert counters["runtime.sweeps"] == 1.0
        assert counters["runtime.tasks.dispatched"] == 3.0
        assert counters["test.draws"] == 3 * 8
        assert observer.registry.histograms["test.total"].count == 3

    def test_writes_metrics_json(self, tmp_path):
        observer = MetricsObserver(out_dir=tmp_path)
        run_sweep(_tasks(1), name="obs_metrics", observers=[observer])
        assert observer.last_path == tmp_path / "obs_metrics.metrics.json"
        data = json.loads(observer.last_path.read_text())
        assert data["counters"]["runtime.sweeps"] == 1.0

    def test_cache_counters(self, tmp_path):
        config = RuntimeConfig(cache_dir=tmp_path / "cache")
        cold = MetricsObserver()
        run_sweep(_tasks(2), config, name="obs_cache", observers=[cold])
        assert cold.registry.counters["runtime.cache.misses"] == 2.0
        assert cold.registry.counters["runtime.cache.stores"] == 2.0
        warm = MetricsObserver()
        run_sweep(_tasks(2), config, name="obs_cache", observers=[warm])
        assert warm.registry.counters["runtime.cache.hits"] == 2.0
        assert "runtime.tasks.dispatched" in warm.registry.counters
        assert warm.registry.counters["runtime.tasks.dispatched"] == 0.0


class TestProfilingObservers:
    def test_trace_malloc_observer_collects_peaks(self):
        observer = TraceMallocObserver()
        result = run_sweep(_tasks(2), name="obs_malloc", observers=[observer])
        assert set(observer.peaks_by_label) == {"obs/t0", "obs/t1"}
        assert all(peak > 0 for peak in observer.peaks_by_label.values())
        assert result.manifest.tasks[0].peak_memory_bytes > 0

    def test_cprofile_observer_aggregates_rows(self):
        observer = CProfileObserver(top_n=5)
        run_sweep(_tasks(2), name="obs_profile", observers=[observer])
        rows = observer.top_rows()
        assert 0 < len(rows) <= 5
        assert "function" in observer.report()

    def test_cprofile_empty_report(self):
        assert CProfileObserver().report() == "(no profile collected)"


class TestTraceMemoryShim:
    def test_trace_memory_flag_warns_and_still_works(self):
        with pytest.warns(DeprecationWarning, match="trace_memory"):
            result = run_sweep(
                _tasks(1),
                RuntimeConfig(trace_memory=True),
                name="obs_shim",
            )
        assert result.manifest.tasks[0].peak_memory_bytes > 0

    def test_observers_do_not_warn(self, recwarn):
        run_sweep(_tasks(1), name="obs_clean", observers=[TraceMallocObserver()])
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]


class TestCorruptCacheSelfHealing:
    def test_eviction_counts_and_warns(self, tmp_path, caplog):
        cache = ResultCache(tmp_path)
        task = _tasks(1)[0]
        key = cache_key(task)
        cache.store(key, {"ok": True})
        cache.path_for(key).write_bytes(b"not a pickle")
        registry = metrics_mod.MetricsRegistry()
        with metrics_mod.activated(registry):
            with caplog.at_level(logging.WARNING, logger="repro.runtime.cache"):
                hit, payload = cache.load(key)
        assert not hit and payload is None
        assert registry.counters["runtime.cache.corrupt_evicted"] == 1.0
        assert key in caplog.text
        assert not cache.path_for(key).exists()

    def test_sweep_self_heals_corrupt_entry(self, tmp_path):
        config = RuntimeConfig(cache_dir=tmp_path)
        tasks = _tasks(1)
        run_sweep(tasks, config, name="obs_heal")
        corrupt_path = ResultCache(tmp_path).path_for(cache_key(tasks[0]))
        corrupt_path.write_bytes(b"\x80garbage")
        observer = MetricsObserver()
        result = run_sweep(tasks, config, name="obs_heal", observers=[observer])
        assert observer.registry.counters["runtime.cache.corrupt_evicted"] == 1.0
        assert observer.registry.counters["runtime.cache.misses"] == 1.0
        assert result.manifest.tasks[0].cache_hit is False
        # The healed entry is rewritten and serves the next run.
        follow_up = MetricsObserver()
        run_sweep(tasks, config, name="obs_heal", observers=[follow_up])
        assert follow_up.registry.counters["runtime.cache.hits"] == 1.0
