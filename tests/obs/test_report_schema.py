"""The shared report schema, and the committed reports' compliance.

Tier-1 sweeps every committed file under ``benchmarks/reports/`` —
``BENCH_*.json`` and ``SOAK_TREND.json`` — through the validator, so a
report that drifts from the envelope (or a float metric that loses its
unit suffix) fails the suite, not a human reviewer. The gitignore
tests pin the other half of the satellite: committed report names must
be addable without ``-f`` while generated artifacts stay ignored.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.errors import ReportError
from repro.obs.reports import (
    REPORT_SCHEMA_VERSION,
    bench_report,
    canonical_json,
    load_report,
    metric_suffix_of,
    validate_metrics,
    validate_report,
    write_json_atomic,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
REPORTS_DIR = REPO_ROOT / "benchmarks" / "reports"


# -- suffix discipline -----------------------------------------------------------


@pytest.mark.parametrize(
    ("key", "suffix"),
    [
        ("p99_latency_ms", "ms"),
        ("cold_wall_s", "s"),
        ("throughput_per_s", "per_s"),
        ("mean_error_m", "m"),
        ("speedup_ratio", "ratio"),
        ("shed_fraction", "fraction"),
        ("max_accumulator_diff_abs", "abs"),
        ("virtual_hours", "hours"),
        ("speedup", None),
        ("load", None),
        ("coverage", None),
    ],
)
def test_metric_suffix_of(key, suffix):
    assert metric_suffix_of(key) == suffix


def test_validate_metrics_accepts_suffixed_floats_and_bare_ints():
    validate_metrics(
        {
            "offered": 500,
            "identical": True,
            "p99_latency_ms": 2.3,
            "nested": {"rows": [{"speedup_ratio": 5.0, "grid_nodes": 70}]},
        }
    )


def test_validate_metrics_names_the_dotted_path():
    with pytest.raises(
        ReportError, match=r"metrics\.nested\.rows\[1\]\.speedup"
    ):
        validate_metrics(
            {"nested": {"rows": [{"ok_s": 1.0}, {"speedup": 5.0}]}}
        )


# -- envelope --------------------------------------------------------------------


def test_bench_report_builds_a_valid_envelope():
    doc = bench_report("demo", {"wall_s": 1.0}, {"load": 4.0})
    validate_report(doc, name="demo")
    assert doc["schema_version"] == REPORT_SCHEMA_VERSION
    assert doc["kind"] == "bench"


def test_context_is_exempt_from_the_suffix_discipline():
    bench_report("demo", {"wall_s": 1.0}, {"load": 4.0, "floors": 2.5})


def test_unsuffixed_metric_is_rejected_at_build_time():
    with pytest.raises(ReportError, match="speedup"):
        bench_report("demo", {"speedup": 5.0})


def test_name_mismatch_is_rejected():
    doc = bench_report("demo", {"wall_s": 1.0})
    with pytest.raises(ReportError, match="does not match"):
        validate_report(doc, name="other")


def test_newer_schema_version_is_rejected():
    doc = bench_report("demo", {"wall_s": 1.0})
    doc["schema_version"] = REPORT_SCHEMA_VERSION + 1
    with pytest.raises(ReportError, match="newer"):
        validate_report(doc)


def test_unknown_kind_is_rejected():
    doc = bench_report("demo", {"wall_s": 1.0})
    doc["kind"] = "vibes"
    with pytest.raises(ReportError, match="vibes"):
        validate_report(doc)


# -- committed report sweep ------------------------------------------------------


def _committed_reports():
    return sorted(REPORTS_DIR.glob("BENCH_*.json")) + sorted(
        REPORTS_DIR.glob("SOAK_TREND.json")
    )


def test_the_sweep_actually_sees_the_committed_reports():
    names = [path.name for path in _committed_reports()]
    assert "BENCH_serve.json" in names
    assert "SOAK_TREND.json" in names


@pytest.mark.parametrize(
    "path", _committed_reports(), ids=lambda p: p.name
)
def test_every_committed_report_validates(path):
    doc = load_report(path)
    assert doc["schema_version"] <= REPORT_SCHEMA_VERSION
    # Committed files must be in canonical serialization: rewriting
    # them must be a byte-level no-op.
    assert canonical_json(doc) == path.read_text(encoding="utf-8")


# -- gitignore: reports commit without -f ----------------------------------------


def _is_ignored(relative: str) -> bool:
    result = subprocess.run(
        ["git", "check-ignore", "-q", relative],
        cwd=REPO_ROOT,
        capture_output=True,
    )
    return result.returncode == 0


def test_committed_report_names_are_not_ignored():
    assert not _is_ignored("benchmarks/reports/BENCH_anything.json")
    assert not _is_ignored("benchmarks/reports/SOAK_TREND.json")


def test_generated_artifacts_stay_ignored():
    assert _is_ignored("benchmarks/reports/serve.txt")
    assert _is_ignored("benchmarks/reports/manifests/anything.json")
    assert _is_ignored("benchmarks/reports/whatever.trace.jsonl")


# -- atomic writes ---------------------------------------------------------------


def test_write_json_atomic_leaves_no_tmp_and_is_canonical(tmp_path):
    path = tmp_path / "BENCH_demo.json"
    doc = bench_report("demo", {"wall_s": 1.0})
    write_json_atomic(path, doc)
    assert not list(tmp_path.glob("*.tmp"))
    assert path.read_text(encoding="utf-8") == canonical_json(doc)
    assert load_report(path) == json.loads(canonical_json(doc))


def test_failed_write_leaves_the_existing_report_intact(tmp_path):
    path = tmp_path / "BENCH_demo.json"
    write_json_atomic(path, bench_report("demo", {"wall_s": 1.0}))
    before = path.read_bytes()
    with pytest.raises(ValueError):
        # NaN is rejected by the canonical serializer *before* the
        # target is touched.
        write_json_atomic(path, {"bad_s": float("nan")})
    with pytest.raises(TypeError):
        write_json_atomic(path, {"bad": object()})
    assert path.read_bytes() == before
    assert not list(tmp_path.glob("*.tmp"))
