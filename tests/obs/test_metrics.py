"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import json
import math

from repro.obs.metrics import (
    HistogramState,
    MetricsRegistry,
    activated,
    active_registry,
    count,
    observe,
    set_gauge,
)


class TestRegistry:
    def test_counters_add(self):
        registry = MetricsRegistry()
        registry.count("hits")
        registry.count("hits", 4)
        assert registry.counters["hits"] == 5.0

    def test_gauges_take_last_write(self):
        registry = MetricsRegistry()
        registry.set_gauge("workers", 2)
        registry.set_gauge("workers", 8)
        assert registry.gauges["workers"] == 8.0

    def test_histograms_summarize(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            registry.observe("latency", value)
        state = registry.histograms["latency"]
        assert state.count == 3
        assert state.total == 6.0
        assert state.min_value == 1.0
        assert state.max_value == 3.0

    def test_render_text_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.count("b.counter", 2)
        registry.count("a.counter", 1)
        registry.set_gauge("g", 1.5)
        registry.observe("h", 4.0)
        lines = registry.render_text().splitlines()
        assert lines[0] == "counter    a.counter = 1"
        assert lines[1] == "counter    b.counter = 2"
        assert lines[2] == "gauge      g = 1.5"
        assert lines[3].startswith("histogram  h: n=1")

    def test_render_text_empty(self):
        assert MetricsRegistry().render_text() == "(no metrics recorded)"

    def test_to_json_round_trips_through_snapshot(self):
        registry = MetricsRegistry()
        registry.count("c", 3)
        registry.observe("h", 0.25)
        data = json.loads(registry.to_json())
        other = MetricsRegistry()
        other.merge_snapshot(data)
        assert other.snapshot() == registry.snapshot()

    def test_save_json_creates_parents(self, tmp_path):
        registry = MetricsRegistry()
        registry.count("c")
        path = registry.save_json(tmp_path / "a" / "b" / "metrics.json")
        assert json.loads(path.read_text())["counters"] == {"c": 1.0}


class TestMergeSemantics:
    def _registry(self, events):
        registry = MetricsRegistry()
        for kind, name, value in events:
            getattr(registry, kind)(name, value)
        return registry

    def test_merge_is_order_insensitive_for_counters_and_histograms(self):
        events_a = [("count", "c", 2.0), ("observe", "h", 1.0)]
        events_b = [("count", "c", 3.0), ("observe", "h", 8.0)]
        forward = MetricsRegistry()
        forward.merge_snapshot(self._registry(events_a).snapshot())
        forward.merge_snapshot(self._registry(events_b).snapshot())
        backward = MetricsRegistry()
        backward.merge_snapshot(self._registry(events_b).snapshot())
        backward.merge_snapshot(self._registry(events_a).snapshot())
        assert forward.counters == backward.counters
        assert (
            forward.histograms["h"].to_dict()
            == backward.histograms["h"].to_dict()
        )

    def test_merge_gauges_take_later_snapshot(self):
        target = MetricsRegistry()
        target.merge_snapshot({"gauges": {"g": 1.0}})
        target.merge_snapshot({"gauges": {"g": 7.0}})
        assert target.gauges["g"] == 7.0

    def test_merged_totals_equal_single_registry(self):
        # Split the same event stream across two registries (what the
        # engine does per task): merged result == one shared registry.
        shared = MetricsRegistry()
        parts = [MetricsRegistry(), MetricsRegistry()]
        for i, value in enumerate([0.5, 2.0, 4.0, 64.0]):
            shared.count("n")
            shared.observe("v", value)
            parts[i % 2].count("n")
            parts[i % 2].observe("v", value)
        merged = MetricsRegistry()
        for part in parts:
            merged.merge_snapshot(part.snapshot())
        assert merged.counters == shared.counters
        assert merged.histograms["v"].to_dict() == shared.histograms["v"].to_dict()


class TestHistogramState:
    def test_empty_to_dict_has_null_bounds(self):
        data = HistogramState().to_dict()
        assert data["min"] is None and data["max"] is None

    def test_from_dict_round_trip(self):
        state = HistogramState()
        for value in (0.0, 1.5, -3.0, 1e9):
            state.observe(value)
        rebuilt = HistogramState.from_dict(state.to_dict())
        assert rebuilt.to_dict() == state.to_dict()

    def test_merge_widens_bounds_and_adds_buckets(self):
        a, b = HistogramState(), HistogramState()
        a.observe(1.0)
        b.observe(100.0)
        a.merge(b)
        assert a.count == 2
        assert a.min_value == 1.0
        assert a.max_value == 100.0
        assert sum(a.buckets.values()) == 2

    def test_empty_merge_keeps_bounds_empty(self):
        a = HistogramState()
        a.merge(HistogramState())
        assert a.count == 0
        assert math.isinf(a.min_value)


class TestModuleLevelHelpers:
    def test_noop_when_inactive(self):
        assert active_registry() is None
        count("dropped")
        set_gauge("dropped", 1.0)
        observe("dropped", 1.0)  # nothing raised, nothing recorded

    def test_activated_records_and_restores(self):
        registry = MetricsRegistry()
        with activated(registry):
            assert active_registry() is registry
            count("c", 2)
            set_gauge("g", 3)
            observe("h", 4.0)
        assert active_registry() is None
        assert registry.counters == {"c": 2.0}
        assert registry.gauges == {"g": 3.0}
        assert registry.histograms["h"].count == 1

    def test_activated_none_leaves_registry_untouched(self):
        outer = MetricsRegistry()
        with activated(outer):
            with activated(None):
                count("goes.to.outer")
        assert outer.counters == {"goes.to.outer": 1.0}
