"""Fault-injection rule: the engine is the only fault surface (F601)."""

from __future__ import annotations

import textwrap

from repro.analysis import AnalysisConfig, analyze_source

FAULTS_ONLY = AnalysisConfig(select=("F",))


def codes(source: str, path: str = "src/repro/demo.py") -> list:
    return [
        f.code
        for f in analyze_source(
            textwrap.dedent(source), path=path, config=FAULTS_ONLY
        )
    ]


class TestMonkeypatchingFlagged:
    def test_module_attribute_assignment_flagged(self):
        src = """
        from repro.relay import mirrored
        mirrored.MirroredRelay = object
        """
        assert codes(src) == ["F601"]

    def test_nested_attribute_assignment_flagged(self):
        src = """
        import repro.hardware
        repro.hardware.synthesizer.Synthesizer.tune = lambda self, f: None
        """
        assert codes(src) == ["F601"]

    def test_aliased_module_assignment_flagged(self):
        src = """
        import repro.channel.environment as env
        env.Environment = object
        """
        assert codes(src) == ["F601"]

    def test_augmented_assignment_flagged(self):
        src = """
        from repro.serve import service
        service._MIN_TAG_MAGNITUDE += 1.0
        """
        assert codes(src) == ["F601"]

    def test_setattr_on_repro_module_flagged(self):
        src = """
        from repro import faults
        setattr(faults, "dropped", lambda site, **kw: True)
        """
        assert codes(src) == ["F601"]

    def test_mock_patch_over_repro_target_flagged(self):
        src = """
        from unittest import mock
        patched = mock.patch("repro.relay.paths.RelayPath.forward")
        """
        assert codes(src) == ["F601"]

    def test_bare_patch_call_flagged(self):
        src = """
        from unittest.mock import patch
        patched = patch("repro.gen2.crc.check_crc16")
        """
        assert codes(src) == ["F601"]


class TestEngineEntryPointsReserved:
    def test_direct_engine_construction_flagged(self):
        src = """
        from repro.faults import FaultEngine, FaultPlan
        engine = FaultEngine(FaultPlan(), seed=0)
        """
        assert codes(src) == ["F601"]

    def test_activate_engine_call_flagged(self):
        src = """
        from repro import faults
        faults.activate_engine(None)
        """
        assert codes(src) == ["F601"]


class TestSanctionedUsagePasses:
    def test_engaged_plan_passes(self):
        src = """
        from repro import faults
        from repro.faults import FaultPlan

        def run() -> None:
            with faults.engaged(FaultPlan.single("channel.link", "drop")):
                pass
        """
        assert codes(src) == []

    def test_hook_calls_pass(self):
        src = """
        from repro import faults

        def maybe_drop() -> bool:
            return faults.dropped("channel.link")
        """
        assert codes(src) == []

    def test_assignment_to_local_object_passes(self):
        src = """
        from repro.serve import ServeConfig

        class Holder:
            pass

        holder = Holder()
        holder.config = ServeConfig(frequency_hz=915e6)
        """
        assert codes(src) == []

    def test_patch_over_non_repro_target_passes(self):
        src = """
        from unittest import mock
        patched = mock.patch("os.path.exists")
        """
        assert codes(src) == []

    def test_tests_are_exempt(self):
        src = """
        from repro.relay import mirrored
        mirrored.MirroredRelay = object
        """
        assert codes(src, path="tests/relay/test_fake.py") == []

    def test_faults_package_itself_is_exempt(self):
        src = """
        engine = FaultEngine(plan, seed=0)
        """
        assert codes(src, path="src/repro/faults/engine.py") == []
