"""Determinism rules: unseeded RNGs and hidden global random state."""

from __future__ import annotations

import textwrap

from repro.analysis import AnalysisConfig, analyze_source

DETERMINISM_ONLY = AnalysisConfig(select=("R",))


def codes(source: str) -> list:
    return [
        f.code
        for f in analyze_source(textwrap.dedent(source), config=DETERMINISM_ONLY)
    ]


class TestUnseededDefaultRng:
    def test_argless_default_rng_is_flagged(self):
        assert "R301" in codes("import numpy as np\nrng = np.random.default_rng()")

    def test_seeded_default_rng_passes(self):
        assert codes("import numpy as np\nrng = np.random.default_rng(7)") == []

    def test_seed_from_constant_passes(self):
        src = """
        import numpy as np
        from repro.constants import DEFAULT_HARDWARE_SEED
        rng = np.random.default_rng(DEFAULT_HARDWARE_SEED)
        """
        assert codes(src) == []

    def test_bare_imported_default_rng_is_flagged(self):
        src = """
        from numpy.random import default_rng
        rng = default_rng()
        """
        assert "R301" in codes(src)


class TestLegacyGlobalNpRandom:
    def test_module_level_np_random_call_is_flagged(self):
        assert "R302" in codes("import numpy as np\nx = np.random.normal(0.0, 1.0)")

    def test_np_random_seed_is_flagged(self):
        assert "R302" in codes("import numpy as np\nnp.random.seed(0)")

    def test_injected_generator_passes(self):
        src = """
        import numpy as np
        def draw(rng: np.random.Generator) -> float:
            return float(rng.normal(0.0, 1.0))
        """
        assert codes(src) == []


class TestAdHocParallelism:
    def codes_at(self, source: str, path: str) -> list:
        return [
            f.code
            for f in analyze_source(
                textwrap.dedent(source), path=path, config=DETERMINISM_ONLY
            )
        ]

    def test_import_multiprocessing_is_flagged(self):
        assert "R304" in codes("import multiprocessing")

    def test_import_multiprocessing_submodule_is_flagged(self):
        assert "R304" in codes("import multiprocessing.pool")

    def test_from_concurrent_futures_is_flagged(self):
        assert "R304" in codes(
            "from concurrent.futures import ProcessPoolExecutor"
        )

    def test_from_concurrent_import_futures_is_flagged(self):
        assert "R304" in codes("from concurrent import futures")

    def test_runtime_backends_module_is_exempt(self):
        src = "from concurrent.futures import ProcessPoolExecutor"
        assert self.codes_at(src, "src/repro/runtime/backends.py") == []

    def test_experiments_module_is_not_exempt(self):
        src = "import multiprocessing"
        assert "R304" in self.codes_at(src, "src/repro/experiments/cli.py")

    def test_unrelated_imports_pass(self):
        assert codes("import concurrency_helpers\nimport threading") == []


class TestStdlibRandomImport:
    def test_import_random_is_flagged(self):
        assert "R303" in codes("import random")

    def test_from_random_import_is_flagged(self):
        assert "R303" in codes("from random import choice")

    def test_numpy_random_subpackage_import_passes(self):
        assert codes("from numpy import random") == []
