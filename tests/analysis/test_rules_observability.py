"""Observability rules: ad-hoc clock reads outside the sanctioned layers."""

from __future__ import annotations

import textwrap

from repro.analysis import AnalysisConfig, analyze_source

OBSERVABILITY_ONLY = AnalysisConfig(select=("O",))


def codes(source: str) -> list:
    return [
        f.code
        for f in analyze_source(
            textwrap.dedent(source), config=OBSERVABILITY_ONLY
        )
    ]


def codes_at(source: str, path: str) -> list:
    return [
        f.code
        for f in analyze_source(
            textwrap.dedent(source), path=path, config=OBSERVABILITY_ONLY
        )
    ]


class TestAdHocTiming:
    def test_time_time_call_is_flagged(self):
        assert "O501" in codes("import time\nstart = time.time()")

    def test_perf_counter_call_is_flagged(self):
        assert "O501" in codes("import time\nstart = time.perf_counter()")

    def test_process_time_call_is_flagged(self):
        assert "O501" in codes("import time\ncpu = time.process_time()")

    def test_monotonic_ns_call_is_flagged(self):
        assert "O501" in codes("import time\nt = time.monotonic_ns()")

    def test_stopwatch_pair_yields_one_finding_per_read(self):
        src = """
        import time
        start = time.perf_counter()
        work()
        elapsed = time.perf_counter() - start
        """
        assert codes(src) == ["O501", "O501"]

    def test_from_time_import_clock_is_flagged(self):
        assert "O501" in codes("from time import perf_counter")

    def test_from_time_import_mixed_names(self):
        # sleep is fine; the clock import in the same statement is not.
        assert codes("from time import sleep, monotonic") == ["O501"]


class TestNonClockTimeUsagePasses:
    def test_time_sleep_passes(self):
        assert codes("import time\ntime.sleep(0.1)") == []

    def test_bare_import_time_passes(self):
        assert codes("import time") == []

    def test_from_time_import_sleep_passes(self):
        assert codes("from time import sleep") == []

    def test_strftime_passes(self):
        assert codes("import time\ntime.strftime('%Y')") == []

    def test_other_objects_named_time_pass(self):
        # Only the ``time`` module's clocks are in scope, but a local
        # object called ``time`` is indistinguishable by AST — the rule
        # accepts that false-positive risk; unrelated attributes pass.
        assert codes("signal.time_stretch()") == []


class TestUnboundedQueue:
    def test_bare_deque_is_flagged(self):
        assert "O502" in codes("from collections import deque\nq = deque()")

    def test_deque_seeded_without_maxlen_is_flagged(self):
        assert "O502" in codes(
            "from collections import deque\nq = deque([1, 2, 3])"
        )

    def test_collections_attribute_deque_is_flagged(self):
        assert "O502" in codes("import collections\nq = collections.deque()")

    def test_deque_maxlen_none_is_flagged(self):
        assert "O502" in codes(
            "from collections import deque\nq = deque([], maxlen=None)"
        )

    def test_deque_with_maxlen_keyword_passes(self):
        assert codes(
            "from collections import deque\nq = deque(maxlen=128)"
        ) == []

    def test_deque_with_positional_maxlen_passes(self):
        assert codes(
            "from collections import deque\nq = deque([], 128)"
        ) == []

    def test_deque_with_dynamic_maxlen_passes(self):
        assert codes(
            "from collections import deque\nq = deque(maxlen=capacity)"
        ) == []

    def test_queue_without_maxsize_is_flagged(self):
        assert "O502" in codes("import queue\nq = queue.Queue()")

    def test_queue_maxsize_zero_is_flagged(self):
        # maxsize=0 is queue.Queue's spelling of "infinite".
        assert "O502" in codes("import queue\nq = queue.Queue(maxsize=0)")

    def test_queue_positional_zero_is_flagged(self):
        assert "O502" in codes("import queue\nq = queue.Queue(0)")

    def test_lifo_and_priority_queues_are_covered(self):
        assert codes(
            "import queue\na = queue.LifoQueue()\nb = queue.PriorityQueue()"
        ) == ["O502", "O502"]

    def test_queue_with_maxsize_passes(self):
        assert codes("import queue\nq = queue.Queue(maxsize=64)") == []

    def test_bare_name_queue_import_is_flagged(self):
        assert "O502" in codes("from queue import Queue\nq = Queue()")

    def test_simple_queue_is_always_flagged(self):
        assert "O502" in codes("import queue\nq = queue.SimpleQueue()")

    def test_serve_package_is_exempt(self):
        src = "from collections import deque\nq = deque()"
        assert codes_at(src, "src/repro/serve/queueing.py") == []

    def test_other_packages_are_not_exempt(self):
        src = "from collections import deque\nq = deque()"
        assert "O502" in codes_at(src, "src/repro/runtime/engine.py")

    def test_unrelated_calls_pass(self):
        assert codes("make_queue(), dequeue()") == []


class TestExemptPaths:
    def test_obs_tracing_module_is_exempt(self):
        src = "import time\nstart = time.perf_counter()"
        assert codes_at(src, "src/repro/obs/tracing.py") == []

    def test_runtime_engine_module_is_exempt(self):
        src = "import time\nstart = time.perf_counter()"
        assert codes_at(src, "src/repro/runtime/engine.py") == []

    def test_experiments_module_is_not_exempt(self):
        src = "import time\nstart = time.perf_counter()"
        assert "O501" in codes_at(src, "src/repro/experiments/cli.py")

    def test_windows_style_paths_are_normalized(self):
        src = "import time\nstart = time.perf_counter()"
        assert codes_at(src, "src\\repro\\obs\\tracing.py") == []


class TestSaltedHashRouting:
    def test_hash_modulo_routing_is_flagged(self):
        src = """
        def route(tag_id, n_shards):
            return hash(tag_id) % n_shards
        """
        assert codes(src) == ["O503"]

    def test_bare_hash_call_is_flagged(self):
        assert "O503" in codes("shard = hash('tag-0001')")

    def test_builtins_qualified_hash_is_flagged(self):
        assert "O503" in codes(
            "import builtins\nshard = builtins.hash(key)"
        )

    def test_hash_inside_dunder_hash_passes(self):
        src = """
        class Key:
            def __hash__(self):
                return hash((self.a, self.b))
        """
        assert codes(src) == []

    def test_hash_outside_dunder_hash_in_class_is_flagged(self):
        src = """
        class Router:
            def route(self, key):
                return hash(key) % 4
        """
        assert codes(src) == ["O503"]

    def test_hashlib_digest_routing_passes(self):
        src = """
        import hashlib

        def route(key):
            return hashlib.blake2b(key.encode()).digest()
        """
        assert codes(src) == []

    def test_method_named_hash_on_other_object_passes(self):
        assert codes("digest = hasher.hash(key)") == []

    def test_no_path_exemption_for_the_serve_package(self):
        # Unlike the queue rule, routing has no exempt package: the
        # shard ring itself must use keyed hashlib digests.
        src = "shard = hash(key) % 8"
        assert "O503" in codes_at(src, "src/repro/serve/shard.py")
