"""The baseline ratchet: no grandfathered findings may remain.

The reprolint baseline exists to adopt the linter on a tree with
accepted legacy findings and then ratchet them away PR by PR. The last
grandfathered entry (A406 against ``fig10_phase.py``'s inline
``PassiveTag`` bench rig) was retired by porting the rig onto
:func:`repro.scenarios.trials.bench_tag`, so the checked-in baseline
must now be empty — and stay empty. Adding a key back is a regression,
not a workaround.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "reprolint-baseline.json"


class TestBaselineRatchet:
    def test_checked_in_baseline_is_empty(self):
        payload = json.loads(BASELINE.read_text(encoding="utf-8"))
        assert payload["version"] == 2
        assert payload["keys"] == [], (
            "reprolint-baseline.json must stay empty: fix new findings "
            "at the source instead of grandfathering them"
        )

    def test_fig10_bench_rig_carries_no_a406(self, capsys):
        # The retired entry's file must lint clean *without* the
        # baseline — the ratchet is real, not suppressed.
        target = REPO_ROOT / "src/repro/experiments/fig10_phase.py"
        exit_code = main([str(target), "--select", "A406"])
        out = capsys.readouterr().out
        assert exit_code == 0, out
        assert "A406" not in out
