"""Runtime-powered lint driver: equivalence, caching, invalidation.

The acceptance property is byte-identity: the driver must produce the
exact finding list of the in-process engine, on every backend, warm or
cold — the report is part of the reproduction's deterministic surface.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import AnalysisConfig, analyze_paths
from repro.analysis.driver import (
    ANALYZER_SCHEMA,
    analyze_project,
    dependency_signature,
    file_sha,
    project_signature,
)
from repro.analysis.reporting import render_text
from repro.runtime import RuntimeConfig

#: Source snippets with known findings, for hypothesis-generated trees.
SNIPPETS = (
    '"""M."""\nfrom __future__ import annotations\n\nX = 1\n',
    '"""M."""\nfrom __future__ import annotations\n\nimport numpy as np\n\nrng = np.random.default_rng()\n',
    (
        '"""M."""\nfrom __future__ import annotations\n\n'
        "def f(gain_db: float, cutoff_hz: float) -> float:\n"
        "    a = gain_db\n"
        "    return a + cutoff_hz\n"
    ),
    (
        '"""M."""\nfrom __future__ import annotations\n\n'
        "def merge(items: list) -> list:\n"
        "    keys = set(items)\n"
        "    return list(keys)\n"
    ),
)


def _write_tree(root, contents):
    for index, text in enumerate(contents):
        (root / f"mod_{index}.py").write_text(text, encoding="utf-8")


@pytest.fixture
def small_tree(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    _write_tree(tree, SNIPPETS)
    return tree


class TestEquivalence:
    def test_serial_matches_inline(self, small_tree, tmp_path):
        inline = analyze_paths([str(small_tree)])
        driven = analyze_project(
            [str(small_tree)],
            runtime=RuntimeConfig(backend="serial", cache_dir=tmp_path / "c"),
        )
        assert driven == inline
        assert render_text(driven) == render_text(inline)

    def test_process_matches_serial(self, small_tree, tmp_path):
        serial = analyze_project(
            [str(small_tree)],
            runtime=RuntimeConfig(backend="serial", cache_dir=tmp_path / "c1"),
        )
        pooled = analyze_project(
            [str(small_tree)],
            runtime=RuntimeConfig(
                backend="process", max_workers=2, cache_dir=tmp_path / "c2"
            ),
        )
        assert render_text(pooled) == render_text(serial)

    def test_no_cache_dir_still_works(self, small_tree):
        driven = analyze_project([str(small_tree)], runtime=RuntimeConfig())
        assert driven == analyze_paths([str(small_tree)])

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        picks=st.lists(
            st.sampled_from(range(len(SNIPPETS))), min_size=1, max_size=4
        )
    )
    def test_repeated_runs_byte_identical(self, tmp_path_factory, picks):
        root = tmp_path_factory.mktemp("hyp-tree")
        _write_tree(root, [SNIPPETS[i] for i in picks])
        cache = tmp_path_factory.mktemp("hyp-cache")
        runs = [
            render_text(
                analyze_project(
                    [str(root)],
                    runtime=RuntimeConfig(backend="serial", cache_dir=cache),
                )
            )
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]
        assert runs[0] == render_text(analyze_paths([str(root)]))


class TestCaching:
    def test_warm_run_serves_from_cache(self, small_tree, tmp_path):
        runtime = RuntimeConfig(
            backend="serial",
            cache_dir=tmp_path / "cache",
            manifest_dir=tmp_path / "manifests",
        )
        analyze_project([str(small_tree)], runtime=runtime)
        analyze_project([str(small_tree)], runtime=runtime)
        manifest = json.loads(
            (tmp_path / "manifests" / "reprolint.json").read_text()
        )
        assert all(task["cache_hit"] for task in manifest["tasks"])

    def test_edit_invalidates_only_that_file(self, small_tree, tmp_path):
        runtime = RuntimeConfig(
            backend="serial",
            cache_dir=tmp_path / "cache",
            manifest_dir=tmp_path / "manifests",
        )
        analyze_project([str(small_tree)], runtime=runtime)
        (small_tree / "mod_0.py").write_text(
            '"""M."""\nfrom __future__ import annotations\n\nY = 2\n'
        )
        analyze_project([str(small_tree)], runtime=runtime)
        manifest = json.loads(
            (tmp_path / "manifests" / "reprolint.json").read_text()
        )
        hits = {task["label"]: task["cache_hit"] for task in manifest["tasks"]}
        assert hits["mod_0.py"] is False
        assert hits["mod_1.py"] is True

    def test_dependency_edit_invalidates_importer(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "dep.py").write_text(
            '"""D."""\nfrom __future__ import annotations\n\n'
            "def helper(power_dbm: float) -> float:\n"
            "    return power_dbm\n"
        )
        (tree / "user.py").write_text(
            '"""U."""\nfrom __future__ import annotations\n\n'
            "from dep import helper\n\n"
            "def call(level_dbm: float) -> float:\n"
            "    return helper(level_dbm)\n"
        )
        runtime = RuntimeConfig(
            backend="serial",
            cache_dir=tmp_path / "cache",
            manifest_dir=tmp_path / "manifests",
        )
        first = analyze_project([str(tree)], runtime=runtime)
        assert first == []
        # Changing the helper's parameter family must re-analyze
        # user.py (its cached findings were computed against the old
        # signature) and surface the new cross-module mismatch.
        (tree / "dep.py").write_text(
            '"""D."""\nfrom __future__ import annotations\n\n'
            "def helper(distance_m: float) -> float:\n"
            "    return distance_m\n"
        )
        second = analyze_project([str(tree)], runtime=runtime)
        assert "U111" in [f.code for f in second]
        manifest = json.loads(
            (tmp_path / "manifests" / "reprolint.json").read_text()
        )
        hits = {task["label"]: task["cache_hit"] for task in manifest["tasks"]}
        assert hits["user.py"] is False

    def test_syntax_error_single_report_warm_and_cold(self, tmp_path):
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "bad.py").write_text("def broken(:\n")
        runtime = RuntimeConfig(backend="serial", cache_dir=tmp_path / "cache")
        cold = analyze_project([str(tree)], runtime=runtime)
        warm = analyze_project([str(tree)], runtime=runtime)
        assert [f.code for f in cold] == ["E999"]
        assert warm == cold


class TestSignatures:
    def test_project_signature_tracks_content(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("X = 1\n")
        before = project_signature({str(target): file_sha(target)})
        target.write_text("X = 2\n")
        after = project_signature({str(target): file_sha(target)})
        assert before != after

    def test_dependency_signature_tracks_transitive_change(self):
        import ast

        from repro.analysis.project import ProjectModel

        model = ProjectModel.build(
            {
                "a.py": ast.parse("import b\n"),
                "b.py": ast.parse("import c\n"),
                "c.py": ast.parse("X = 1\n"),
            },
            names={"a.py": "a", "b.py": "b", "c.py": "c"},
        )
        shas = {"a": "s1", "b": "s2", "c": "s3"}
        before = dependency_signature("a", model, shas)
        assert dependency_signature("a", model, {**shas, "c": "zz"}) != before
        # An unrelated module's hash must not disturb the signature.
        assert dependency_signature("a", model, {**shas, "d": "zz"}) == before

    def test_schema_constant_is_pinned(self):
        assert isinstance(ANALYZER_SCHEMA, int) and ANALYZER_SCHEMA >= 1
