"""Determinism-taint rules (R310–R313): positives and clean cases."""

from __future__ import annotations

from repro.analysis import AnalysisConfig, analyze_source

TAINT = AnalysisConfig(select=("R31",))


def codes(source: str) -> "list[str]":
    return [f.code for f in analyze_source(source, config=TAINT)]


class TestR310TaintedSeed:
    def test_entropy_seed(self):
        source = (
            "import os\n"
            "import numpy as np\n"
            "def f():\n"
            "    noise = int.from_bytes(os.urandom(4), 'little')\n"
            "    return np.random.default_rng(noise)\n"
        )
        assert "R310" in codes(source)

    def test_wall_clock_seed(self):
        source = (
            "import time\n"
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng(int(time.time()))\n"
        )
        assert "R310" in codes(source)

    def test_tainted_seedsequence(self):
        source = (
            "import time\n"
            "from numpy.random import SeedSequence\n"
            "def f():\n"
            "    return SeedSequence(int(time.time_ns()))\n"
        )
        assert "R310" in codes(source)

    def test_constant_seed_clean(self):
        source = (
            "import numpy as np\n"
            "def f(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert codes(source) == []


class TestR311TaskBoundary:
    def test_wall_clock_param(self):
        source = (
            "import time\n"
            "from repro.runtime import SweepTask\n"
            "def trial(x, seed):\n"
            "    return x\n"
            "def build():\n"
            "    t0 = time.time()\n"
            "    return SweepTask.make(trial, {'x': t0}, seed=1)\n"
        )
        assert "R311" in codes(source)

    def test_tainted_call_to_known_task_fn(self):
        source = (
            "import os\n"
            "from repro.runtime import SweepTask\n"
            "def trial(x, seed):\n"
            "    return x\n"
            "def build():\n"
            "    return SweepTask.make(trial, {'x': 1}, seed=0)\n"
            "def sneaky():\n"
            "    return trial(os.urandom(1), seed=0)\n"
        )
        assert "R311" in codes(source)

    def test_pure_params_clean(self):
        source = (
            "from repro.runtime import SweepTask\n"
            "def trial(x, seed):\n"
            "    return x\n"
            "def build(trial_index):\n"
            "    return SweepTask.make(trial, {'x': trial_index}, seed=1)\n"
        )
        assert codes(source) == []


class TestR312SetIteration:
    def test_for_loop_over_set(self):
        source = (
            "def merge(payloads):\n"
            "    keys = set()\n"
            "    for p in payloads:\n"
            "        keys = keys | set(p)\n"
            "    out = []\n"
            "    for k in keys:\n"
            "        out.append(k)\n"
            "    return out\n"
        )
        assert "R312" in codes(source)

    def test_comprehension_over_set(self):
        source = (
            "def merge(a, b):\n"
            "    keys = set(a) | set(b)\n"
            "    return [k for k in keys]\n"
        )
        assert "R312" in codes(source)

    def test_list_of_set_is_order_sensitive(self):
        source = "def f(items):\n    keys = set(items)\n    return list(keys)\n"
        assert "R312" in codes(source)

    def test_sorted_iteration_clean(self):
        source = (
            "def merge(a, b):\n"
            "    keys = set(a) | set(b)\n"
            "    return [k for k in sorted(keys)]\n"
        )
        assert codes(source) == []

    def test_order_free_consumers_clean(self):
        source = (
            "def f(items):\n"
            "    keys = set(items)\n"
            "    return len(keys), sum(keys), min(keys), max(keys)\n"
        )
        assert codes(source) == []


class TestR313WallClockPayload:
    def test_wall_clock_in_task_return(self):
        source = (
            "import time\n"
            "from repro.runtime import SweepTask\n"
            "def trial(x, seed):\n"
            "    t_s = time.time()\n"
            "    return {'x': x, 't_s': t_s}\n"
            "def build():\n"
            "    return SweepTask.make(trial, {'x': 1}, seed=1)\n"
        )
        assert "R313" in codes(source)

    def test_clean_task_return(self):
        source = (
            "from repro.runtime import SweepTask\n"
            "def trial(x, seed):\n"
            "    return {'x': x * 2}\n"
            "def build():\n"
            "    return SweepTask.make(trial, {'x': 1}, seed=1)\n"
        )
        assert codes(source) == []

    def test_non_task_function_may_time(self):
        source = (
            "import time\n"
            "def report():\n"
            "    return time.time()\n"
        )
        assert "R313" not in codes(source)
