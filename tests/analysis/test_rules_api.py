"""API-contract rules: annotations, module hygiene, foot-guns."""

from __future__ import annotations

import textwrap

from repro.analysis import AnalysisConfig, analyze_source

API_ONLY = AnalysisConfig(select=("A",))

#: Minimal module preamble that satisfies A402/A403, so individual
#: tests can focus on one rule at a time.
CLEAN_HEADER = '"""Docstring."""\nfrom __future__ import annotations\n'


def codes(source: str, header: str = CLEAN_HEADER, path: str = "<string>") -> list:
    return [
        f.code
        for f in analyze_source(
            header + textwrap.dedent(source), path=path, config=API_ONLY
        )
    ]


#: A406 only bites under the experiments tree.
EXPERIMENT_PATH = "src/repro/experiments/fig99_example.py"


class TestMissingReturnAnnotation:
    def test_unannotated_public_function_is_flagged(self):
        assert "A401" in codes("def convert(x): ...")

    def test_annotated_public_function_passes(self):
        assert codes("def convert(x: float) -> float: ...") == []

    def test_private_function_is_skipped(self):
        assert codes("def _convert(x): ...") == []

    def test_public_method_is_flagged(self):
        src = """
        class Relay:
            def gain(self): ...
        """
        assert "A401" in codes(src)

    def test_nested_function_is_skipped(self):
        src = """
        def outer() -> None:
            def inner(): ...
        """
        assert codes(src) == []


class TestModuleHygiene:
    def test_missing_future_import_is_flagged(self):
        assert "A402" in codes("x = 1", header='"""Docstring."""\n')

    def test_missing_docstring_is_flagged(self):
        assert "A403" in codes(
            "x = 1", header="from __future__ import annotations\n"
        )

    def test_clean_module_passes(self):
        assert codes("x = 1") == []


class TestBareExcept:
    def test_bare_except_is_flagged(self):
        src = """
        try:
            x = 1
        except:
            pass
        """
        assert "A404" in codes(src)

    def test_typed_except_passes(self):
        src = """
        try:
            x = 1
        except ValueError:
            pass
        """
        assert codes(src) == []


class TestExperimentsBypassScenarioRegistry:
    def test_inline_grid_in_experiment_is_flagged(self):
        src = """
        from repro.localization.grid import Grid2D

        def build() -> None:
            Grid2D(-0.5, 4.0, 0.2, 3.0, 0.1)
        """
        assert "A406" in codes(src, path=EXPERIMENT_PATH)

    def test_aliased_import_is_still_flagged(self):
        src = """
        from repro.mobility.trajectory import LineTrajectory as LT

        def build() -> None:
            LT((0.0, 0.0), (3.5, 0.0))
        """
        assert "A406" in codes(src, path=EXPERIMENT_PATH)

    def test_module_attribute_call_is_flagged(self):
        src = """
        import repro.serve.traffic

        def build() -> None:
            repro.serve.traffic.generate_workload(n_tags=4)
        """
        assert "A406" in codes(src, path=EXPERIMENT_PATH)

    def test_deprecated_sim_builder_is_flagged(self):
        src = """
        from repro.sim.scenarios import fig12_trial

        def build() -> None:
            fig12_trial(seed=0)
        """
        assert "A406" in codes(src, path=EXPERIMENT_PATH)

    def test_scenario_compiler_path_passes(self):
        src = """
        from repro.scenarios import registry as scenario_registry
        from repro.scenarios.compiler import generate_workload

        def build() -> None:
            spec = scenario_registry.resolve("conveyor_flow_through")
            generate_workload(spec, n_tags=4)
        """
        assert codes(src, path=EXPERIMENT_PATH) == []

    def test_rule_is_scoped_to_the_experiments_tree(self):
        src = """
        from repro.localization.grid import Grid2D

        def build() -> None:
            Grid2D(-0.5, 4.0, 0.2, 3.0, 0.1)
        """
        assert codes(src, path="src/repro/serve/traffic.py") == []


class TestMutableDefaultArgument:
    def test_list_literal_default_is_flagged(self):
        assert "A405" in codes("def f(x=[]) -> None: ...")

    def test_dict_constructor_default_is_flagged(self):
        assert "A405" in codes("def f(x=dict()) -> None: ...")

    def test_keyword_only_mutable_default_is_flagged(self):
        assert "A405" in codes("def f(*, x={}) -> None: ...")

    def test_none_and_tuple_defaults_pass(self):
        assert codes("def f(x=None, y=()) -> None: ...") == []

    def test_frozen_dataclass_default_call_passes(self):
        # Config-object defaults (e.g. RelayConfig()) are the package
        # idiom for frozen dataclasses and are not mutable containers.
        assert codes("def f(config=RelayConfig()) -> None: ...") == []
