"""API-contract rules: annotations, module hygiene, foot-guns."""

from __future__ import annotations

import textwrap

from repro.analysis import AnalysisConfig, analyze_source

API_ONLY = AnalysisConfig(select=("A",))

#: Minimal module preamble that satisfies A402/A403, so individual
#: tests can focus on one rule at a time.
CLEAN_HEADER = '"""Docstring."""\nfrom __future__ import annotations\n'


def codes(source: str, header: str = CLEAN_HEADER) -> list:
    return [
        f.code
        for f in analyze_source(header + textwrap.dedent(source), config=API_ONLY)
    ]


class TestMissingReturnAnnotation:
    def test_unannotated_public_function_is_flagged(self):
        assert "A401" in codes("def convert(x): ...")

    def test_annotated_public_function_passes(self):
        assert codes("def convert(x: float) -> float: ...") == []

    def test_private_function_is_skipped(self):
        assert codes("def _convert(x): ...") == []

    def test_public_method_is_flagged(self):
        src = """
        class Relay:
            def gain(self): ...
        """
        assert "A401" in codes(src)

    def test_nested_function_is_skipped(self):
        src = """
        def outer() -> None:
            def inner(): ...
        """
        assert codes(src) == []


class TestModuleHygiene:
    def test_missing_future_import_is_flagged(self):
        assert "A402" in codes("x = 1", header='"""Docstring."""\n')

    def test_missing_docstring_is_flagged(self):
        assert "A403" in codes(
            "x = 1", header="from __future__ import annotations\n"
        )

    def test_clean_module_passes(self):
        assert codes("x = 1") == []


class TestBareExcept:
    def test_bare_except_is_flagged(self):
        src = """
        try:
            x = 1
        except:
            pass
        """
        assert "A404" in codes(src)

    def test_typed_except_passes(self):
        src = """
        try:
            x = 1
        except ValueError:
            pass
        """
        assert codes(src) == []


class TestMutableDefaultArgument:
    def test_list_literal_default_is_flagged(self):
        assert "A405" in codes("def f(x=[]) -> None: ...")

    def test_dict_constructor_default_is_flagged(self):
        assert "A405" in codes("def f(x=dict()) -> None: ...")

    def test_keyword_only_mutable_default_is_flagged(self):
        assert "A405" in codes("def f(*, x={}) -> None: ...")

    def test_none_and_tuple_defaults_pass(self):
        assert codes("def f(x=None, y=()) -> None: ...") == []

    def test_frozen_dataclass_default_call_passes(self):
        # Config-object defaults (e.g. RelayConfig()) are the package
        # idiom for frozen dataclasses and are not mutable containers.
        assert codes("def f(config=RelayConfig()) -> None: ...") == []
