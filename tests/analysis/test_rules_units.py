"""Unit-suffix and dB/linear hygiene rules over broken/fixed snippets."""

from __future__ import annotations

import textwrap

from repro.analysis import AnalysisConfig, analyze_source

#: Snippets below only exercise U1xx behaviour; module-hygiene rules
#: (A402/A403) would otherwise drown the assertions.
UNITS_ONLY = AnalysisConfig(select=("U",))


def codes(source: str, config: AnalysisConfig = UNITS_ONLY) -> list:
    return [f.code for f in analyze_source(textwrap.dedent(source), config=config)]


class TestUnitSuffixMissing:
    def test_param_with_physical_stem_and_no_suffix_is_flagged(self):
        assert "U101" in codes("def tune(center_frequency: float) -> None: ...")

    def test_param_with_suffix_passes(self):
        assert codes("def tune(center_frequency_hz: float) -> None: ...") == []

    def test_dataclass_field_flagged_and_fixed(self):
        broken = """
        class Signal:
            center_frequency: float
        """
        fixed = """
        class Signal:
            center_frequency_hz: float
        """
        assert "U101" in codes(broken)
        assert codes(fixed) == []

    def test_function_head_noun_flagged(self):
        assert "U101" in codes("def carrier_frequency(): ...")

    def test_function_with_stem_in_middle_not_flagged(self):
        # Returns an ablation result, not a frequency.
        assert codes("def frequency_shift_ablation(): ...") == []

    def test_allowlisted_conventional_name_passes(self):
        assert codes("def mix(sample_rate: float) -> None: ...") == []

    def test_private_function_params_are_skipped(self):
        assert codes("def _helper(center_frequency: float) -> None: ...") == []


class TestConflictingUnitAssignment:
    def test_db_assigned_from_watts_is_flagged(self):
        assert "U102" in codes("x_db = y_watts")

    def test_same_family_assignment_passes(self):
        assert codes("x_db = y_db") == []

    def test_attribute_source_is_flagged(self):
        assert "U102" in codes("level_db = config.power_watts")


class TestConflictingUnitAdditiveMix:
    def test_dbm_plus_meters_is_flagged(self):
        assert "U103" in codes("z = power_dbm + distance_m")

    def test_dbm_plus_db_gain_passes(self):
        # dBm + dB = dBm is the canonical link-budget operation.
        assert codes("rx_dbm = tx_dbm + gain_db") == []

    def test_same_family_sum_passes(self):
        assert codes("total_hz = f1_hz + f2_hz") == []

    def test_hz_minus_seconds_is_flagged(self):
        assert "U103" in codes("z = span_hz - delay_s")


class TestDecibelMultiplication:
    def test_db_times_db_is_flagged(self):
        assert "U104" in codes("z = gain_db * other_db")

    def test_dbm_times_db_is_flagged(self):
        assert "U104" in codes("z = power_dbm * gain_db")

    def test_db_times_scalar_passes(self):
        assert codes("z = gain_db * 2.0") == []

    def test_hz_times_seconds_passes(self):
        # Different units multiply fine outside the log domain.
        assert codes("cycles = rate_hz * window_s") == []


class TestConflictingUnitComparison:
    def test_dbm_compared_with_meters_is_flagged(self):
        assert "U105" in codes("flag = power_dbm > distance_m")

    def test_same_family_comparison_passes(self):
        assert codes("flag = floor_dbm > noise_dbm") == []

    def test_dbm_vs_db_comparison_passes(self):
        assert codes("flag = snr_db > margin_db") == []


class TestRawDbConversion:
    def test_pow_form_is_flagged(self):
        assert "U106" in codes("y = 10.0 ** (x_db / 10.0)")

    def test_log_form_is_flagged(self):
        assert "U106" in codes("import numpy as np\ny = 10.0 * np.log10(ratio)")

    def test_amplitude_domain_20log10_passes(self):
        assert codes("import numpy as np\ny = 20.0 * np.log10(amplitude)") == []

    def test_converter_call_passes(self):
        assert codes("from repro.dsp.units import db_to_linear\ny = db_to_linear(x_db)") == []

    def test_units_module_itself_is_exempt(self):
        found = analyze_source(
            "y = 10.0 ** (x_db / 10.0)",
            path="src/repro/dsp/units.py",
            config=UNITS_ONLY,
        )
        assert found == []
