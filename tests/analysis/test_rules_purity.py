"""Worker-purity rules (P701–P703): positives, clean cases, exemptions."""

from __future__ import annotations

from repro.analysis import AnalysisConfig, analyze_source

PURITY = AnalysisConfig(select=("P70",))


def codes(source: str, path: str = "<string>") -> "list[str]":
    return [f.code for f in analyze_source(source, path=path, config=PURITY)]


TASK_PREAMBLE = (
    "from repro.runtime import SweepTask\n"
    "def build():\n"
    "    return SweepTask.make(trial, {'x': 1}, seed=1)\n"
)


class TestP701GlobalMutation:
    def test_task_fn_mutates_module_global(self):
        source = (
            "_CACHE = {}\n"
            "def trial(x, seed):\n"
            "    _CACHE[x] = seed\n"
            "    return x\n" + TASK_PREAMBLE
        )
        assert "P701" in codes(source)

    def test_mutation_in_reachable_helper(self):
        source = (
            "_SEEN = []\n"
            "def record(x):\n"
            "    _SEEN.append(x)\n"
            "def trial(x, seed):\n"
            "    record(x)\n"
            "    return x\n" + TASK_PREAMBLE
        )
        assert "P701" in codes(source)

    def test_global_declaration_store(self):
        source = (
            "_TOTAL = 0\n"
            "def trial(x, seed):\n"
            "    global _TOTAL\n"
            "    _TOTAL = _TOTAL + x\n"
            "    return x\n" + TASK_PREAMBLE
        )
        assert "P701" in codes(source)

    def test_unreachable_mutation_not_flagged(self):
        source = (
            "_CACHE = {}\n"
            "def offline_tool(x):\n"
            "    _CACHE[x] = 1\n"
            "def trial(x, seed):\n"
            "    return x\n" + TASK_PREAMBLE
        )
        assert codes(source) == []

    def test_local_shadow_clean(self):
        source = (
            "def trial(x, seed):\n"
            "    cache = {}\n"
            "    cache[x] = seed\n"
            "    return cache\n" + TASK_PREAMBLE
        )
        assert codes(source) == []

    def test_exempt_packages(self):
        source = (
            "_CACHE = {}\n"
            "def trial(x, seed):\n"
            "    _CACHE[x] = seed\n"
            "    return x\n" + TASK_PREAMBLE
        )
        assert codes(source, path="src/repro/runtime/whatever.py") == []
        assert codes(source, path="src/repro/obs/metrics.py") == []


class TestP702UnpicklableTaskFn:
    def test_lambda(self):
        source = (
            "from repro.runtime import SweepTask\n"
            "def build():\n"
            "    return SweepTask.make(lambda x, seed: x, {'x': 1}, seed=1)\n"
        )
        assert "P702" in codes(source)

    def test_partial(self):
        source = (
            "from functools import partial\n"
            "from repro.runtime import SweepTask\n"
            "def trial(x, y, seed):\n"
            "    return x + y\n"
            "def build():\n"
            "    return SweepTask.make(partial(trial, y=2), {'x': 1}, seed=1)\n"
        )
        assert "P702" in codes(source)

    def test_nested_function(self):
        source = (
            "from repro.runtime import SweepTask\n"
            "def build():\n"
            "    def inner(x, seed):\n"
            "        return x\n"
            "    return SweepTask.make(inner, {'x': 1}, seed=1)\n"
        )
        assert "P702" in codes(source)

    def test_module_level_fn_clean(self):
        source = (
            "from repro.runtime import SweepTask\n"
            "def trial(x, seed):\n"
            "    return x\n"
            "def build():\n"
            "    return SweepTask.make(trial, {'x': 1}, seed=1)\n"
        )
        assert codes(source) == []


class TestP703SharedStateMutation:
    def test_environ_store(self):
        source = (
            "import os\n"
            "def trial(x, seed):\n"
            "    os.environ['X'] = str(x)\n"
            "    return x\n" + TASK_PREAMBLE
        )
        assert "P703" in codes(source)

    def test_putenv_call(self):
        source = (
            "import os\n"
            "def trial(x, seed):\n"
            "    os.putenv('X', str(x))\n"
            "    return x\n" + TASK_PREAMBLE
        )
        assert "P703" in codes(source)

    def test_class_attribute_store(self):
        source = (
            "class Config:\n"
            "    limit = 1\n"
            "def trial(x, seed):\n"
            "    Config.limit = x\n"
            "    return x\n" + TASK_PREAMBLE
        )
        assert "P703" in codes(source)

    def test_sys_path_mutation(self):
        source = (
            "import sys\n"
            "def trial(x, seed):\n"
            "    sys.path.append('/tmp')\n"
            "    return x\n" + TASK_PREAMBLE
        )
        assert "P703" in codes(source)

    def test_instance_attribute_clean(self):
        source = (
            "def trial(x, seed):\n"
            "    holder = make_holder()\n"
            "    holder.value = x\n"
            "    return x\n" + TASK_PREAMBLE
        )
        assert codes(source) == []

    def test_local_named_path_not_confused_with_sys_path(self):
        source = (
            "def trial(x, seed):\n"
            "    path = [0]\n"
            "    path[0] = x\n"
            "    path.append(x)\n"
            "    return path\n" + TASK_PREAMBLE
        )
        assert codes(source) == []
