"""Project model: extraction, resolution, graphs, and round-trips.

The serialization round-trips are hypothesis-pinned because the model
ships between processes as JSON: any field the ``to_dict``/``from_dict``
pair drops or reorders would silently change worker-side findings.
"""

from __future__ import annotations

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.project import (
    FunctionSummary,
    ModuleSummary,
    ProjectModel,
    module_name_for_path,
)

FAMILIES = ("db", "dbm", "hz", "m", "s", "angle", "watts", "ppm")

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)
dotted = st.lists(identifiers, min_size=1, max_size=3).map(".".join)


def _model(sources: "dict[str, str]") -> ProjectModel:
    parsed = {path: ast.parse(text) for path, text in sources.items()}
    names = {path: path.rsplit("/", 1)[-1][: -len(".py")] for path in parsed}
    return ProjectModel.build(parsed, names=names)


class TestModuleNames:
    def test_package_rooted_name(self, tmp_path):
        pkg = tmp_path / "pkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("")
        assert module_name_for_path(str(pkg / "mod.py")) == "pkg.sub.mod"
        assert module_name_for_path(str(pkg / "__init__.py")) == "pkg.sub"

    def test_bare_file_uses_stem(self, tmp_path):
        target = tmp_path / "helper.py"
        target.write_text("")
        assert module_name_for_path(str(target)) == "helper"


class TestExtraction:
    def test_function_summary_facts(self):
        model = _model(
            {
                "m.py": (
                    "def path_loss_db(distance_m, frequency_hz, n):\n"
                    "    scale = helper(distance_m)\n"
                    "    return scale\n"
                )
            }
        )
        fn = model.function("m:path_loss_db")
        assert fn is not None
        assert fn.params == ("distance_m", "frequency_hz", "n")
        assert dict(fn.param_families) == {
            "distance_m": "m",
            "frequency_hz": "hz",
        }
        assert fn.return_family == "db"
        assert "helper" in fn.calls
        assert fn.is_public

    def test_module_level_names_and_task_refs(self):
        model = _model(
            {
                "m.py": (
                    "from repro.runtime import SweepTask\n"
                    "LIMIT = 3\n"
                    "def trial(x, seed):\n"
                    "    return x\n"
                    "def build():\n"
                    "    return SweepTask.make(trial, {'x': 1}, seed=0)\n"
                )
            }
        )
        summary = model.modules["m"]
        assert "LIMIT" in summary.module_level_names
        assert summary.task_fn_refs == ("trial",)
        assert model.task_functions() == frozenset({"m:trial"})


class TestResolution:
    def test_bare_local_and_from_import(self):
        model = _model(
            {
                "util.py": "def gain_db():\n    return 1.0\n",
                "m.py": (
                    "from util import gain_db\n"
                    "def caller():\n"
                    "    return gain_db()\n"
                ),
            }
        )
        fn = model.resolve_call("m", "gain_db")
        assert fn is not None and fn.symbol == "util:gain_db"

    def test_module_alias_attribute_chain(self):
        model = _model(
            {
                "units.py": "def db_to_linear(value_db):\n    return value_db\n",
                "m.py": (
                    "import units\n"
                    "def caller(x_db):\n"
                    "    return units.db_to_linear(x_db)\n"
                ),
            }
        )
        fn = model.resolve_call("m", "units.db_to_linear")
        assert fn is not None and fn.symbol == "units:db_to_linear"

    def test_unknown_resolves_to_none(self):
        model = _model({"m.py": "def f():\n    return obj.method()\n"})
        assert model.resolve_call("m", "obj.method") is None
        assert model.resolve_call("nope", "anything") is None


class TestGraphs:
    def test_import_graph_and_transitive_dependencies(self):
        model = _model(
            {
                "a.py": "import b\n",
                "b.py": "import c\n",
                "c.py": "X = 1\n",
            }
        )
        graph = model.import_graph()
        assert graph["a"] == ("b",)
        assert graph["b"] == ("c",)
        assert model.dependencies_of("a") == frozenset({"b", "c"})
        assert model.dependencies_of("c") == frozenset()

    def test_reachability_crosses_modules(self):
        model = _model(
            {
                "worker.py": (
                    "from helpers import shared\n"
                    "def trial(x, seed):\n"
                    "    return shared(x)\n"
                ),
                "helpers.py": "def shared(x):\n    return x\n",
                "main.py": (
                    "from repro.runtime import SweepTask\n"
                    "from worker import trial\n"
                    "def build():\n"
                    "    return SweepTask.make(trial, {'x': 1}, seed=0)\n"
                ),
            }
        )
        reachable = model.reachable_from_tasks()
        assert "worker:trial" in reachable
        assert "helpers:shared" in reachable
        assert "main:build" not in reachable


function_summaries = st.builds(
    FunctionSummary,
    qualname=dotted,
    module=dotted,
    line=st.integers(min_value=1, max_value=10_000),
    params=st.lists(identifiers, max_size=4).map(tuple),
    param_families=st.lists(
        st.tuples(identifiers, st.sampled_from(FAMILIES)), max_size=3
    ).map(tuple),
    return_family=st.none() | st.sampled_from(FAMILIES),
    calls=st.lists(dotted, max_size=4).map(tuple),
    mutated_globals=st.lists(identifiers, max_size=3).map(tuple),
    is_public=st.booleans(),
)

module_summaries = st.builds(
    ModuleSummary,
    name=dotted,
    path=identifiers.map(lambda s: f"src/{s}.py"),
    imports=st.lists(st.tuples(identifiers, dotted), max_size=4).map(tuple),
    functions=st.lists(function_summaries, max_size=3).map(tuple),
    module_level_names=st.lists(identifiers, max_size=4).map(tuple),
    task_fn_refs=st.lists(identifiers, max_size=2).map(tuple),
)


class TestRoundTrips:
    @given(summary=function_summaries)
    def test_function_summary_roundtrip(self, summary):
        assert FunctionSummary.from_dict(summary.to_dict()) == summary

    @given(summary=module_summaries)
    def test_module_summary_roundtrip(self, summary):
        assert ModuleSummary.from_dict(summary.to_dict()) == summary

    @settings(max_examples=25)
    @given(summaries=st.lists(module_summaries, max_size=3, unique_by=lambda s: s.name))
    def test_project_model_roundtrip(self, summaries):
        model = ProjectModel()
        for summary in summaries:
            model.modules[summary.name] = summary
        rebuilt = ProjectModel.from_dict(model.to_dict())
        assert rebuilt.modules == model.modules

    @settings(max_examples=25)
    @given(summaries=st.lists(module_summaries, max_size=3, unique_by=lambda s: s.name))
    def test_to_dict_is_canonical(self, summaries):
        """Insertion order must not leak into the serialized form."""
        forward = ProjectModel()
        for summary in summaries:
            forward.modules[summary.name] = summary
        backward = ProjectModel()
        for summary in reversed(summaries):
            backward.modules[summary.name] = summary
        assert forward.to_dict() == backward.to_dict()

    def test_version_mismatch_raises(self):
        import pytest

        with pytest.raises(ValueError):
            ProjectModel.from_dict({"version": -1, "modules": []})
