"""Flow-sensitive unit rules (U110–U115): positives and clean cases."""

from __future__ import annotations

from repro.analysis import AnalysisConfig, analyze_source

FLOW = AnalysisConfig(select=("U11",))


def codes(source: str) -> "list[str]":
    return [f.code for f in analyze_source(source, config=FLOW)]


class TestU110AdditiveMix:
    def test_mix_through_locals(self):
        source = (
            "def f(gain_db, cutoff_hz):\n"
            "    a = gain_db\n"
            "    b = cutoff_hz\n"
            "    return a + b\n"
        )
        assert "U110" in codes(source)

    def test_direct_suffixed_pair_is_u103_territory(self):
        # Both operands carry explicit suffixes: the per-file U103 rule
        # owns that case, the flow rule must not double-report.
        source = "def f(gain_db, cutoff_hz):\n    return gain_db + cutoff_hz\n"
        assert "U110" not in codes(source)

    def test_db_plus_dbm_is_compatible(self):
        source = (
            "def f(gain_db, power_dbm):\n"
            "    a = gain_db\n"
            "    b = power_dbm\n"
            "    return a + b\n"
        )
        assert codes(source) == []

    def test_branch_disagreement_drops_to_unknown(self):
        source = (
            "def f(flag, gain_db, cutoff_hz, dwell_s):\n"
            "    if flag:\n"
            "        x = gain_db\n"
            "    else:\n"
            "        x = cutoff_hz\n"
            "    return x + dwell_s\n"
        )
        assert codes(source) == []


class TestU111CallArguments:
    def test_cross_function_mismatch(self):
        source = (
            "def attenuate(power_dbm):\n"
            "    return power_dbm\n"
            "def g(distance_m):\n"
            "    return attenuate(distance_m)\n"
        )
        assert "U111" in codes(source)

    def test_keyword_argument_mismatch(self):
        source = (
            "def attenuate(power_dbm):\n"
            "    return power_dbm\n"
            "def g(distance_m):\n"
            "    return attenuate(power_dbm=distance_m)\n"
        )
        assert "U111" in codes(source)

    def test_matching_families_clean(self):
        source = (
            "def attenuate(power_dbm):\n"
            "    return power_dbm\n"
            "def g(level_dbm):\n"
            "    return attenuate(level_dbm)\n"
        )
        assert codes(source) == []


class TestU112ReturnFamily:
    def test_return_contradicts_function_suffix(self):
        source = "def carrier_power_dbm(distance_m):\n    return distance_m\n"
        assert "U112" in codes(source)

    def test_consistent_return_clean(self):
        source = "def carrier_power_dbm(level_dbm):\n    return level_dbm\n"
        assert codes(source) == []


class TestU113DbLinearCrossing:
    def test_arithmetic_crossing(self):
        source = (
            "def f(power_dbm, noise_watts):\n"
            "    a = power_dbm\n"
            "    b = noise_watts\n"
            "    return a + b\n"
        )
        assert "U113" in codes(source)

    def test_assignment_crossing(self):
        source = "def f(power_dbm):\n    power_watts = power_dbm\n    return power_watts\n"
        assert "U113" in codes(source)

    def test_units_module_is_exempt(self):
        source = "def f(power_dbm):\n    power_watts = power_dbm\n    return power_watts\n"
        findings = analyze_source(
            source, path="src/repro/dsp/units.py", config=FLOW
        )
        assert "U113" not in [f.code for f in findings]

    def test_converted_value_clean(self):
        source = (
            "from repro.dsp.units import dbm_to_watts\n"
            "def f(power_dbm):\n"
            "    power_watts = dbm_to_watts(power_dbm)\n"
            "    return power_watts\n"
        )
        assert codes(source) == []


class TestU114AssignmentFlow:
    def test_inferred_value_into_suffixed_target(self):
        source = (
            "def f(cutoff_hz):\n"
            "    x = cutoff_hz\n"
            "    dwell_s = x\n"
            "    return dwell_s\n"
        )
        assert "U114" in codes(source)

    def test_direct_suffixed_value_is_u102_territory(self):
        source = "def f(cutoff_hz):\n    dwell_s = cutoff_hz\n    return dwell_s\n"
        assert "U114" not in codes(source)


class TestU115ComparisonFlow:
    def test_inferred_comparison_mismatch(self):
        source = (
            "def f(cutoff_hz, dwell_s):\n"
            "    x = cutoff_hz\n"
            "    return x > dwell_s\n"
        )
        assert "U115" in codes(source)

    def test_same_family_comparison_clean(self):
        source = (
            "def f(cutoff_hz, bandwidth_khz):\n"
            "    x = cutoff_hz\n"
            "    return x > bandwidth_khz\n"
        )
        assert codes(source) == []


class TestInference:
    def test_numeric_literal_scaling_preserves_family(self):
        source = (
            "def f(power_dbm, distance_m):\n"
            "    doubled = 2.0 * power_dbm\n"
            "    return doubled + distance_m\n"
        )
        assert "U110" in codes(source)

    def test_unknown_expression_product_drops_family(self):
        # hz * t is a phase, not a frequency: the product must not
        # carry the hz family into the addition.
        source = (
            "def f(frequency_hz, t, phase_rad):\n"
            "    return 6.28 * frequency_hz * t + phase_rad\n"
        )
        assert codes(source) == []

    def test_ratio_names_take_numerator_family(self):
        source = (
            "def f(noise_dbm_per_hz, bandwidth_db, distance_m):\n"
            "    floor = noise_dbm_per_hz + bandwidth_db\n"
            "    return floor + distance_m\n"
        )
        found = codes(source)
        assert "U110" in found  # dbm floor + meters
        assert found.count("U110") == 1  # density + dB term is clean

    def test_fact_flows_inside_loop_body(self):
        source = (
            "def f(levels, distance_m):\n"
            "    y = 0.0\n"
            "    for level_db in levels:\n"
            "        x = level_db\n"
            "        y = x + distance_m\n"
            "    return y\n"
        )
        assert "U110" in codes(source)
