"""Flag interactions (--select/--ignore/--baseline), SARIF, portability."""

from __future__ import annotations

import json

from repro.analysis import AnalysisConfig, analyze_source
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    portable_key,
    portable_path,
    write_baseline,
)
from repro.analysis.cli import main
from repro.analysis.findings import Finding
from repro.analysis.reporting import render_sarif

#: Triggers both an R-family (unseeded RNG) and an A-family finding.
BROKEN = "import numpy as np\nrng = np.random.default_rng()\n"


class TestFlagPrecedence:
    """--select narrows, --ignore prunes the selection, --baseline
    suppresses whatever survives — strictly in that order."""

    def test_ignore_prunes_within_selection(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BROKEN)
        code = main([str(tmp_path), "--select", "R,A", "--ignore", "A"])
        out = capsys.readouterr().out
        assert code == 1
        assert "R301" in out and "A403" not in out

    def test_ignore_beats_select_on_same_code(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BROKEN)
        code = main([str(tmp_path), "--select", "R301", "--ignore", "R301"])
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_baseline_applies_after_selection(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BROKEN)
        baseline = tmp_path / "baseline.json"
        # Snapshot everything, then re-run narrowed: the selected
        # finding is in the baseline, so the run is clean.
        assert main([str(tmp_path), "--write-baseline", str(baseline)]) == 0
        assert (
            main([str(tmp_path), "--select", "R", "--baseline", str(baseline)])
            == 0
        )
        capsys.readouterr()

    def test_write_baseline_respects_filters(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BROKEN)
        baseline = tmp_path / "baseline.json"
        # A baseline written under --select A must not grandfather the
        # R-family finding a later unfiltered run surfaces.
        assert main(
            [str(tmp_path), "--select", "A", "--write-baseline", str(baseline)]
        ) == 0
        keys = load_baseline(str(baseline))
        assert keys and all(key.startswith("A") for key in keys)
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 1
        assert "R301" in capsys.readouterr().out

    def test_baseline_and_ignore_compose(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BROKEN)
        baseline = tmp_path / "baseline.json"
        assert main(
            [str(tmp_path), "--select", "R", "--write-baseline", str(baseline)]
        ) == 0
        code = main(
            [str(tmp_path), "--ignore", "A", "--baseline", str(baseline)]
        )
        assert code == 0
        capsys.readouterr()


class TestSarifReport:
    def _findings(self, tmp_path):
        (tmp_path / "bad.py").write_text(BROKEN)
        source = (tmp_path / "bad.py").read_text()
        return analyze_source(
            source, path=str(tmp_path / "bad.py"), config=AnalysisConfig()
        )

    def test_document_shape(self, tmp_path):
        document = json.loads(render_sarif(self._findings(tmp_path)))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        assert run["results"]

    def test_rule_index_consistent_with_catalog(self, tmp_path):
        run = json.loads(render_sarif(self._findings(tmp_path)))["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_columns_are_one_based(self):
        finding = Finding("x.py", 3, 0, "U101", "msg")
        region = json.loads(render_sarif([finding]))["runs"][0]["results"][0][
            "locations"
        ][0]["physicalLocation"]["region"]
        assert region == {"startLine": 3, "startColumn": 1}

    def test_uris_are_posix_and_relative(self, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        finding = Finding(str(tmp_path / "pkg" / "mod.py"), 1, 0, "U101", "m")
        location = json.loads(render_sarif([finding]))["runs"][0]["results"][
            0
        ]["locations"][0]["physicalLocation"]["artifactLocation"]
        assert location["uri"] == "pkg/mod.py"
        assert location["uriBaseId"] == "SRCROOT"

    def test_severity_maps_to_level(self):
        warn = Finding("x.py", 1, 0, "U106", "m", severity="warning")
        result = json.loads(render_sarif([warn]))["runs"][0]["results"][0]
        assert result["level"] == "warning"

    def test_empty_report_is_valid(self):
        run = json.loads(render_sarif([]))["runs"][0]
        assert run["results"] == []
        assert run["tool"]["driver"]["rules"] == []

    def test_cli_format_sarif(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BROKEN)
        assert main([str(tmp_path), "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["runs"][0]["results"]


class TestBaselinePortability:
    def test_backslashes_normalize(self):
        assert portable_path("src\\repro\\dsp\\units.py") == "src/repro/dsp/units.py"

    def test_absolute_under_cwd_becomes_relative(self, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        assert portable_path(str(tmp_path / "a" / "b.py")) == "a/b.py"

    def test_absolute_outside_cwd_stays_absolute(self, monkeypatch, tmp_path):
        inner = tmp_path / "inner"
        inner.mkdir()
        monkeypatch.chdir(inner)
        assert portable_path(str(tmp_path / "x.py")) == (tmp_path / "x.py").as_posix()

    def test_absolute_and_relative_paths_share_a_key(self, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        absolute = Finding(str(tmp_path / "m.py"), 1, 0, "U101", "msg")
        relative = Finding("m.py", 9, 0, "U101", "msg")
        assert portable_key(absolute) == portable_key(relative)

    def test_baseline_written_absolute_suppresses_relative(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.chdir(tmp_path)
        absolute = Finding(str(tmp_path / "m.py"), 1, 0, "U101", "msg")
        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), [absolute])
        relative = Finding("m.py", 4, 0, "U101", "msg")
        assert apply_baseline([relative], load_baseline(str(baseline))) == []

    def test_legacy_raw_keys_still_honored(self):
        finding = Finding("/abs/elsewhere/m.py", 1, 0, "U101", "msg")
        legacy_keys = {finding.baseline_key()}
        assert apply_baseline([finding], legacy_keys) == []
