"""Engine plumbing: file discovery, filtering, baselines, CLI, reporters."""

from __future__ import annotations

import json

import pytest

from repro.analysis import AnalysisConfig, analyze_paths, analyze_source
from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.cli import main
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import all_rules

BROKEN = "import numpy as np\nrng = np.random.default_rng()\n"
CLEAN = '"""Docstring."""\nfrom __future__ import annotations\nX = 1\n'


class TestSelection:
    def test_select_restricts_to_prefix(self):
        found = analyze_source(BROKEN, config=AnalysisConfig(select=("R",)))
        assert {f.code for f in found} == {"R301"}

    def test_ignore_removes_codes(self):
        found = analyze_source(
            BROKEN, config=AnalysisConfig(select=("R", "A"), ignore=("A40",))
        )
        assert {f.code for f in found} == {"R301"}

    def test_rule_registry_covers_all_families(self):
        families = {rule.code[0] for rule in all_rules()}
        assert {"U", "R", "A"} <= families


class TestAnalyzePaths:
    def test_directory_walk_and_sorted_findings(self, tmp_path):
        (tmp_path / "a.py").write_text(BROKEN)
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text(CLEAN)
        findings = analyze_paths([str(tmp_path)], AnalysisConfig(select=("R",)))
        assert [f.code for f in findings] == ["R301"]
        assert findings[0].path.endswith("a.py")

    def test_syntax_error_becomes_finding_not_crash(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        findings = analyze_paths([str(tmp_path)])
        assert [f.code for f in findings] == ["E999"]

    def test_exclude_paths(self, tmp_path):
        (tmp_path / "skipme.py").write_text(BROKEN)
        findings = analyze_paths(
            [str(tmp_path)], AnalysisConfig(exclude_paths=("*skipme*",))
        )
        assert findings == []


class TestBaseline:
    def test_roundtrip_suppresses_known_findings(self, tmp_path):
        findings = analyze_source(BROKEN, config=AnalysisConfig(select=("R",)))
        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), findings)
        keys = load_baseline(str(baseline_file))
        assert apply_baseline(findings, keys) == []

    def test_new_findings_survive_baseline(self, tmp_path):
        findings = analyze_source(BROKEN, config=AnalysisConfig(select=("R",)))
        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), [])
        keys = load_baseline(str(baseline_file))
        assert apply_baseline(findings, keys) == findings

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_baseline(str(bad))


class TestReporters:
    def test_text_reporter_includes_location_and_tally(self):
        findings = analyze_source(BROKEN, path="x.py", config=AnalysisConfig(select=("R",)))
        report = render_text(findings)
        assert "x.py:2:" in report and "R301" in report and "1 finding" in report

    def test_text_reporter_clean(self):
        assert render_text([]) == "reprolint: no findings"

    def test_json_reporter_parses(self):
        findings = analyze_source(BROKEN, path="x.py", config=AnalysisConfig(select=("R",)))
        payload = json.loads(render_json(findings))
        assert payload["finding_count"] == 1
        assert payload["findings"][0]["code"] == "R301"


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main([str(tmp_path)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_exit_one_with_coded_findings_on_violations(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BROKEN)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R301" in out and "A403" in out

    def test_format_json(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BROKEN)
        assert main([str(tmp_path), "--format", "json", "--select", "R"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["finding_count"] == 1

    def test_baseline_flow_via_cli(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(BROKEN)
        baseline = tmp_path / "baseline.json"
        assert main([str(tmp_path), "--write-baseline", str(baseline)]) == 0
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main([str(tmp_path), "--baseline", str(tmp_path / "nope.json")]) == 2
        capsys.readouterr()

    def test_unknown_select_code_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(CLEAN)
        assert main([str(tmp_path), "--select", "ZZZ"]) == 2
        assert "matches no registered rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("U101", "U106", "R301", "A401"):
            assert code in out
