"""Tests for reader center-frequency discovery and hopping lock-on."""

import numpy as np
import pytest

from repro.constants import UHF_BAND_START, UHF_BAND_STOP
from repro.dsp import Signal, awgn, tone
from repro.errors import ConfigurationError, FrequencyLockError
from repro.relay import FrequencyDiscovery, HoppingPattern
from repro.relay.freq_discovery import ism_channels

FS = 64e6
CENTER = 915e6


def reader_wave(frequency, duration, amplitude=0.01, rng=None, snr_db=None):
    sig = tone(frequency - CENTER, duration, FS, amplitude, CENTER)
    if snr_db is not None:
        sig = awgn(sig, snr_db, rng)
    return sig


class TestIsmChannels:
    def test_fifty_channels(self):
        channels = ism_channels()
        assert len(channels) == 50
        assert channels[0] > UHF_BAND_START
        assert channels[-1] < UHF_BAND_STOP

    def test_spacing(self):
        channels = ism_channels()
        np.testing.assert_allclose(np.diff(channels), 500e3)


class TestDiscovery:
    @pytest.mark.parametrize("channel_index", [0, 17, 49])
    def test_finds_reader_channel(self, channel_index):
        target = float(ism_channels()[channel_index])
        fd = FrequencyDiscovery()
        sig = reader_wave(target, fd.total_sweep_seconds)
        assert fd.discover(sig) == pytest.approx(target)

    def test_finds_channel_in_noise(self):
        rng = np.random.default_rng(0)
        target = float(ism_channels()[30])
        fd = FrequencyDiscovery()
        sig = reader_wave(target, fd.total_sweep_seconds, rng=rng, snr_db=0.0)
        assert fd.discover(sig) == pytest.approx(target)

    def test_noise_only_raises(self):
        rng = np.random.default_rng(1)
        fd = FrequencyDiscovery()
        noise = awgn(
            Signal.silence(fd.total_sweep_seconds, FS, CENTER).with_samples(
                np.zeros(int(fd.total_sweep_seconds * FS), dtype=complex)
            ),
            -100.0,
            rng,
        )
        # awgn needs nonzero signal power; construct noise directly.
        noise = Signal(
            0.01 * (rng.standard_normal(len(noise)) + 1j * rng.standard_normal(len(noise))),
            FS,
            CENTER,
        )
        with pytest.raises(FrequencyLockError):
            fd.discover(noise)

    def test_strongest_reader_wins(self):
        """With two readers, the sweep locks to the stronger (§4.3)."""
        fd = FrequencyDiscovery()
        strong = reader_wave(float(ism_channels()[10]), fd.total_sweep_seconds, 0.02)
        weak = reader_wave(float(ism_channels()[40]), fd.total_sweep_seconds, 0.002)
        combined = strong + weak
        assert fd.discover(combined) == pytest.approx(float(ism_channels()[10]))

    def test_signal_too_short_raises(self):
        fd = FrequencyDiscovery()
        short = reader_wave(float(ism_channels()[5]), fd.total_sweep_seconds / 4)
        with pytest.raises(FrequencyLockError):
            fd.discover(short)

    def test_chunk_duration(self):
        fd = FrequencyDiscovery(total_sweep_seconds=20e-3)
        assert fd.chunk_seconds == pytest.approx(20e-3 / 50)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            FrequencyDiscovery(candidates=[])
        with pytest.raises(ConfigurationError):
            FrequencyDiscovery(total_sweep_seconds=-1.0)
        with pytest.raises(ConfigurationError):
            FrequencyDiscovery(min_peak_ratio=0.5)


class TestHopping:
    def test_random_pattern_covers_all_channels(self):
        pattern = HoppingPattern.random(np.random.default_rng(0))
        assert sorted(pattern.channels) == sorted(ism_channels().tolist())

    def test_channel_at_dwells(self):
        pattern = HoppingPattern.random(np.random.default_rng(1))
        assert pattern.channel_at(0.0) == pattern.channels[0]
        assert pattern.channel_at(pattern.dwell_seconds * 1.5) == pattern.channels[1]

    def test_wraps_around(self):
        pattern = HoppingPattern.random(np.random.default_rng(2))
        t = pattern.dwell_seconds * len(pattern.channels)
        assert pattern.channel_at(t) == pattern.channels[0]

    def test_next_after(self):
        pattern = HoppingPattern.random(np.random.default_rng(3))
        assert pattern.next_after(pattern.channels[0]) == pattern.channels[1]
        assert pattern.next_after(pattern.channels[-1]) == pattern.channels[0]

    def test_unknown_channel_rejected(self):
        pattern = HoppingPattern.random(np.random.default_rng(4))
        with pytest.raises(FrequencyLockError):
            pattern.index_of(2.4e9)

    def test_track_predicts_future_channel(self):
        """Once locked, the relay follows the hopping pattern (§4.2 fn 3)."""
        pattern = HoppingPattern.random(np.random.default_rng(5))
        fd = FrequencyDiscovery()
        locked = pattern.channels[7]
        t = 3.2 * pattern.dwell_seconds
        assert fd.track(locked, pattern, t) == pattern.channels[10]

    def test_invalid_dwell(self):
        with pytest.raises(ConfigurationError):
            HoppingPattern(channels=(915e6,), dwell_seconds=1.0)
        with pytest.raises(ConfigurationError):
            HoppingPattern(channels=())
