"""Sample-level feedback dynamics: Eq. 3's mechanism, demonstrated.

The contrast the paper's §4.3 design rests on, reproduced on real
waveforms:

* a **same-frequency (analog) loop** rings as soon as its gain exceeds
  the antenna coupling — recirculation grows every pass;
* a **frequency-shifting path** never self-oscillates, at any gain:
  each pass converts the signal out of its own input band, where the
  baseband filter destroys it. That is out-of-band full duplex.
"""

import numpy as np
import pytest

from repro.dsp import LowPassFilter, Oscillator, Signal, tone
from repro.dsp.amplifier import AmplifierChain, VariableGainAmplifier
from repro.dsp.units import amplitude_for_power_dbm, db_to_linear
from repro.errors import ConfigurationError
from repro.relay.feedback import FeedbackResult, simulate_feedback
from repro.relay.paths import ForwardingPath, PathConfig

FS = 4e6
F1 = 915e6
COUPLING_DB = 24.0


class _SameFrequencyAmplifier:
    """An analog amplify-and-forward stage (no conversion, no filter)."""

    def __init__(self, gain_db: float) -> None:
        self._amp = float(np.sqrt(db_to_linear(gain_db)))

    def forward(self, sig: Signal) -> Signal:
        return sig.scaled(self._amp)


def shifted_path(gain_db, feedthrough_db=18.0):
    return ForwardingPath(
        lo_in=Oscillator.ideal(F1),
        baseband_filter=LowPassFilter(100e3, FS, 6),
        amplifiers=AmplifierChain(
            [VariableGainAmplifier(gain_db, min_gain_db=-10, max_gain_db=60)]
        ),
        lo_out=Oscillator.ideal(F1 + 1e6),
        config=PathConfig(feedthrough_db=feedthrough_db),
    )


def seed():
    return tone(20e3, 2e-3, FS, amplitude_for_power_dbm(-40.0), F1)


class TestAnalogLoopDynamics:
    def test_rings_above_coupling(self):
        """Gain above coupling: each pass grows by gain - coupling."""
        loop = _SameFrequencyAmplifier(COUPLING_DB + 6.0)
        result = simulate_feedback(loop, seed(), COUPLING_DB)
        assert result.rings
        assert result.growth_per_pass_db == pytest.approx(6.0, abs=0.5)

    def test_decays_below_coupling(self):
        loop = _SameFrequencyAmplifier(COUPLING_DB - 6.0)
        result = simulate_feedback(loop, seed(), COUPLING_DB)
        assert not result.rings
        assert result.growth_per_pass_db == pytest.approx(-6.0, abs=0.5)

    def test_threshold_is_exactly_the_coupling(self):
        """The simulated ring threshold IS Eq. 3's criterion."""
        below = simulate_feedback(
            _SameFrequencyAmplifier(COUPLING_DB - 1.0), seed(), COUPLING_DB
        )
        above = simulate_feedback(
            _SameFrequencyAmplifier(COUPLING_DB + 1.0), seed(), COUPLING_DB
        )
        assert not below.rings and above.rings


class TestShiftedPathDynamics:
    @pytest.mark.parametrize("gain_db", [20.0, 40.0, 55.0])
    def test_never_rings_at_any_gain(self, gain_db):
        """Out-of-band full duplex: conversion + filtering kill the
        recirculation regardless of gain — the paper's §4.3 insight."""
        result = simulate_feedback(shifted_path(gain_db), seed(), COUPLING_DB)
        assert not result.rings

    def test_recirculation_decays_fast(self):
        result = simulate_feedback(shifted_path(45.0), seed(), COUPLING_DB)
        # After the first pass the converted content is out of band and
        # the filter destroys it: tens of dB down per pass.
        assert result.growth_per_pass_db < -15.0

    def test_feedthrough_leak_weaker_when_isolated(self):
        """More feed-through isolation lowers the leaked power level
        even though neither configuration rings."""
        leaky = simulate_feedback(
            shifted_path(35.0, feedthrough_db=10.0), seed(), COUPLING_DB
        )
        tight = simulate_feedback(
            shifted_path(35.0, feedthrough_db=40.0), seed(), COUPLING_DB
        )
        assert tight.pass_powers_watts[2] < leaky.pass_powers_watts[2]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_feedback(shifted_path(10.0), seed(), -1.0)
        with pytest.raises(ConfigurationError):
            simulate_feedback(shifted_path(10.0), seed(), 20.0, n_passes=1)


class TestFeedbackResult:
    def test_growth_handles_zero_power(self):
        result = FeedbackResult(pass_powers_watts=[0.0, 0.0])
        assert result.growth_per_pass_db == float("-inf")
        assert not result.rings
