"""Tests for isolation measurement, stability, and gain planning."""

import numpy as np
import pytest

from repro.constants import UHF_CENTER_FREQUENCY
from repro.errors import ConfigurationError, RelayInstabilityError
from repro.relay import (
    AnalogRelay,
    AntennaCoupling,
    IsolationReport,
    LeakagePath,
    MirroredRelay,
    is_stable,
    loop_gain_db,
    max_stable_range_m,
    measure_all_isolations,
    plan_gains,
)
from repro.relay.analog_baseline import AnalogCoupling
from repro.relay.isolation import measure_isolation_db
from repro.relay.mirrored import RelayConfig
from repro.relay.self_interference import require_stable


@pytest.fixture(scope="module")
def relay():
    return MirroredRelay(915e6, RelayConfig(), np.random.default_rng(0))


@pytest.fixture(scope="module")
def report(relay):
    return measure_all_isolations(relay)


class TestIsolationMeasurement:
    def test_paper_ordering_inter_above_intra(self, report):
        """Fig. 9: inter-link isolations exceed intra-link isolations."""
        assert report.inter_downlink_db > report.intra_downlink_db
        assert report.inter_uplink_db > report.intra_uplink_db

    def test_paper_ordering_downlink_above_uplink(self, report):
        """Fig. 9: downlink isolation beats uplink (LPF beats BPF)."""
        assert report.inter_downlink_db > report.inter_uplink_db
        assert report.intra_downlink_db > report.intra_uplink_db

    def test_magnitudes_near_paper_medians(self, report):
        """Medians 110/92/77/64 dB, a few dB of build tolerance."""
        assert report.inter_downlink_db == pytest.approx(110.0, abs=8.0)
        assert report.inter_uplink_db == pytest.approx(92.0, abs=8.0)
        assert report.intra_downlink_db == pytest.approx(77.0, abs=8.0)
        assert report.intra_uplink_db == pytest.approx(64.0, abs=8.0)

    def test_worst_is_min(self, report):
        assert report.worst_db == min(
            report.inter_downlink_db,
            report.inter_uplink_db,
            report.intra_downlink_db,
            report.intra_uplink_db,
        )

    def test_single_path_measurement_matches_report(self, relay, report):
        value = measure_isolation_db(relay, LeakagePath.INTER_DOWNLINK)
        assert value == pytest.approx(report.inter_downlink_db, abs=0.5)

    def test_isolation_independent_of_probe_power(self, relay):
        low = measure_isolation_db(relay, LeakagePath.INTER_UPLINK, -50.0)
        high = measure_isolation_db(relay, LeakagePath.INTER_UPLINK, -20.0)
        assert low == pytest.approx(high, abs=1.0)

    def test_fifty_db_improvement_over_analog(self, report):
        """Paper: >= 50 dB improvement over the analog relay baseline."""
        analog = AnalogRelay().isolation_report()
        for path in LeakagePath:
            assert report.of(path) - analog.of(path) >= 50.0


class TestCoupling:
    def test_path_accessor(self):
        c = AntennaCoupling(10.0, 11.0, 12.0, 13.0)
        assert c.of(LeakagePath.INTER_DOWNLINK) == 10.0
        assert c.of(LeakagePath.INTRA_UPLINK) == 13.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            AntennaCoupling(inter_downlink_db=-1.0)

    def test_random_draws_positive(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            c = AntennaCoupling.random(rng)
            for path in LeakagePath:
                assert c.of(path) >= 0.0


class TestStability:
    def test_loop_gain(self):
        assert loop_gain_db(30.0, 70.0) == pytest.approx(-40.0)

    def test_stable_below_margin(self):
        assert is_stable(30.0, 40.0, margin_db=3.0)
        assert not is_stable(38.0, 40.0, margin_db=3.0)

    def test_require_stable_raises(self):
        with pytest.raises(RelayInstabilityError):
            require_stable(50.0, 40.0)

    def test_max_range_matches_eq4(self):
        """30 dB -> <1 m; 80 dB -> hundreds of meters (paper Eq. 4)."""
        assert max_stable_range_m(30.0, UHF_CENTER_FREQUENCY) < 1.0
        assert 200.0 < max_stable_range_m(80.0, UHF_CENTER_FREQUENCY) < 300.0

    def test_negative_isolation_rejected(self):
        with pytest.raises(ConfigurationError):
            max_stable_range_m(-1.0, UHF_CENTER_FREQUENCY)


class TestAnalogBaseline:
    def test_isolation_is_coupling_only(self):
        relay = AnalogRelay(coupling=AnalogCoupling(inter_db=20.0, intra_db=10.0))
        report = relay.isolation_report()
        assert report.inter_downlink_db == 20.0
        assert report.intra_uplink_db == 10.0

    def test_excess_gain_rings(self):
        with pytest.raises(RelayInstabilityError):
            AnalogRelay(gain_db=30.0, coupling=AnalogCoupling(intra_db=12.0))

    def test_forward_applies_gain(self):
        from repro.dsp import mean_power_dbm, tone
        from repro.dsp.units import amplitude_for_power_dbm

        relay = AnalogRelay(gain_db=5.0)
        sig = tone(0.0, 1e-4, 4e6, amplitude_for_power_dbm(-30.0))
        assert mean_power_dbm(relay.forward(sig)) == pytest.approx(-25.0, abs=0.01)


class TestGainPlanning:
    def make_report(self, inter=100.0, intra_dl=77.0, intra_ul=64.0):
        return IsolationReport(inter, inter, intra_dl, intra_ul)

    def test_downlink_maximized(self):
        plan = plan_gains(self.make_report(), max_downlink_gain_db=45.0)
        assert plan.downlink_gain_db == 45.0

    def test_downlink_respects_intra_cap(self):
        plan = plan_gains(self.make_report(intra_dl=30.0), margin_db=3.0)
        assert plan.downlink_gain_db <= 27.0

    def test_total_respects_inter_cap(self):
        plan = plan_gains(self.make_report(inter=50.0), margin_db=3.0)
        assert plan.total_gain_db <= 47.0

    def test_uplink_gain_mostly_post_filter(self):
        plan = plan_gains(self.make_report())
        assert plan.uplink_post_filter_gain_db > plan.uplink_pre_filter_gain_db

    def test_infeasible_isolation_raises(self):
        with pytest.raises(RelayInstabilityError):
            plan_gains(self.make_report(inter=2.0, intra_dl=2.0, intra_ul=2.0))

    def test_plan_keeps_relay_stable(self):
        report = self.make_report()
        plan = plan_gains(report, margin_db=3.0)
        assert is_stable(plan.downlink_gain_db, report.intra_downlink_db, 3.0)
        assert is_stable(plan.uplink_gain_db, report.intra_uplink_db, 3.0)
        assert is_stable(
            plan.total_gain_db,
            min(report.inter_downlink_db, report.inter_uplink_db),
            3.0,
        )
