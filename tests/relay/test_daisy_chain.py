"""Tests for daisy-chained relays (paper §4.3 / §9 swarm extension)."""

import numpy as np
import pytest

from repro.constants import UHF_CENTER_FREQUENCY
from repro.errors import ConfigurationError, RelayInstabilityError
from repro.localization import Grid2D, Localizer, disentangle
from repro.relay import (
    ChainPlan,
    DaisyChainMeasurementModel,
    check_chain_stability,
    max_chain_range_m,
)

F = UHF_CENTER_FREQUENCY


class TestChainPlan:
    def test_frequency_ladder(self):
        plan = ChainPlan(reader_frequency_hz=F, shift_hz=1e6, n_relays=3)
        assert plan.hop_frequency_hz(0) == F
        assert plan.hop_frequency_hz(3) == F + 3e6
        assert plan.tag_frequency_hz == F + 3e6
        assert plan.band_span_hz() == 3e6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChainPlan(F, 1e6, 0)
        with pytest.raises(ConfigurationError):
            ChainPlan(F, -1e6, 2)
        with pytest.raises(ConfigurationError):
            ChainPlan(F, 1e6, 2).hop_frequency_hz(3)


class TestStabilityAndRange:
    def test_stable_chain_passes(self):
        check_chain_stability([50.0, 60.0], isolation_db=82.0)

    def test_overlong_hop_rings(self):
        with pytest.raises(RelayInstabilityError):
            check_chain_stability([50.0, 500.0], isolation_db=82.0)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            check_chain_stability([-1.0], 82.0)
        with pytest.raises(ConfigurationError):
            check_chain_stability([10.0], 82.0, margin_db=-1.0)

    def test_range_scales_with_relays(self):
        one = max_chain_range_m(1, 82.0)
        three = max_chain_range_m(3, 82.0)
        assert three > 2.5 * one

    def test_range_includes_tag_reach(self):
        assert max_chain_range_m(1, 82.0, tag_reach_m=3.0) == pytest.approx(
            max_chain_range_m(1, 82.0, tag_reach_m=0.0) + 3.0
        )


class TestChainMeasurements:
    def make_model(self, n_relays=2):
        plan = ChainPlan(reader_frequency_hz=F, shift_hz=1e6, n_relays=n_relays)
        return DaisyChainMeasurementModel((0.0, 0.0), plan)

    def test_wrong_relay_count_rejected(self):
        model = self.make_model(2)
        with pytest.raises(ConfigurationError):
            model.measure([np.array([10.0, 0.0])], (20.0, 1.0))

    def test_reference_isolates_final_link(self):
        """Dividing by the last drone's reference RFID removes every
        upstream hop, exactly like the single-relay Eq. 10."""
        model = self.make_model(2)
        relay1 = np.array([40.0, 0.0])
        tag = np.array([82.0, 1.8])
        isolated = []
        for relay1_y in (0.0, 2.0):  # move the UPSTREAM drone
            m = model.measure(
                [np.array([40.0, relay1_y]), np.array([80.0, 0.0])], tag
            )
            isolated.append(disentangle(m.h_target, m.h_reference))
        assert isolated[0] == pytest.approx(isolated[1], rel=1e-9)

    def test_localization_through_two_hops(self):
        """Phase-based localization survives a 2-relay chain at 80+ m."""
        model = self.make_model(2)
        rng = np.random.default_rng(0)
        relay1 = np.array([40.0, 0.0])
        tag = np.array([82.0, 1.8])
        measurements = [
            model.measure([relay1, np.array([x, 0.0])], tag, rng, snr_db=25.0)
            for x in np.linspace(79.0, 82.0, 40)
        ]
        localizer = Localizer(frequency_hz=F)
        grid = Grid2D(77.0, 85.0, 0.2, 4.0, 0.1)
        result = localizer.locate(measurements, search_grid=grid)
        assert result.error_to(tag) < 0.10

    def test_snr_noise_applied(self):
        model = self.make_model(1)
        rng = np.random.default_rng(1)
        poses = [np.array([30.0, 0.0])]
        clean = model.measure(poses, (32.0, 1.0), rng=None)
        noisy = [
            model.measure(poses, (32.0, 1.0), rng, snr_db=10.0).h_target
            for _ in range(200)
        ]
        rms_error = np.sqrt(
            np.mean(np.abs(np.array(noisy) - clean.h_target) ** 2)
        ) / abs(clean.h_target)
        # At 10 dB SNR the relative rms error is 10^(-1/2).
        assert rms_error == pytest.approx(np.sqrt(10 ** (-1.0)), rel=0.3)
