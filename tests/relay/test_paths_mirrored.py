"""Tests for the forwarding paths and the mirrored architecture."""

import numpy as np
import pytest

from repro.constants import GEN2_BLF_DEFAULT
from repro.dsp import (
    LowPassFilter,
    Oscillator,
    mean_power_dbm,
    peak_power_dbm,
    phase_of_tone,
    tone,
    tone_power_dbm,
)
from repro.dsp.amplifier import AmplifierChain, VariableGainAmplifier
from repro.dsp.measurements import peak_tone_power_dbm
from repro.dsp.units import amplitude_for_power_dbm
from repro.errors import ConfigurationError, RelayError
from repro.relay import MirroredRelay, NoMirrorRelay
from repro.relay.mirrored import RelayConfig
from repro.relay.paths import ForwardingPath, PathConfig

FS = 4e6
F1 = 915e6


def make_path(gain_db=20.0, feedthrough_db=40.0):
    return ForwardingPath(
        lo_in=Oscillator.ideal(F1),
        baseband_filter=LowPassFilter(100e3, FS, 6),
        amplifiers=AmplifierChain([VariableGainAmplifier(gain_db)]),
        lo_out=Oscillator.ideal(F1 + 1e6),
        config=PathConfig(feedthrough_db=feedthrough_db),
    )


class TestForwardingPath:
    def test_same_inout_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            ForwardingPath(
                lo_in=Oscillator.ideal(F1),
                baseband_filter=LowPassFilter(100e3, FS, 6),
                amplifiers=AmplifierChain([]),
                lo_out=Oscillator.ideal(F1),
            )

    def test_center_moves_to_output_frequency(self):
        path = make_path()
        out = path.forward(tone(10e3, 1e-3, FS, 0.01, F1))
        assert out.center_frequency_hz == pytest.approx(F1 + 1e6)

    def test_in_band_signal_forwarded_with_gain(self):
        path = make_path(gain_db=20.0)
        probe = tone(10e3, 4e-3, FS, amplitude_for_power_dbm(-40.0), F1)
        out = path.forward(probe).sliced(8000)
        assert tone_power_dbm(out, 10e3) == pytest.approx(-20.0, abs=0.3)

    def test_out_of_band_signal_rejected(self):
        path = make_path(gain_db=20.0)
        probe = tone(GEN2_BLF_DEFAULT, 4e-3, FS, amplitude_for_power_dbm(-40.0), F1)
        out = path.forward(probe).sliced(8000)
        # 86 dB of LPF rejection minus the 20 dB gain.
        assert tone_power_dbm(out, GEN2_BLF_DEFAULT) < -100.0

    def test_feedthrough_leaks_at_original_frequency(self):
        path = make_path(feedthrough_db=40.0)
        probe = tone(10e3, 4e-3, FS, amplitude_for_power_dbm(-30.0), F1)
        out = path.forward(probe).sliced(8000)
        # The leak sits at absolute F1+10 kHz = offset -990 kHz.
        leak = tone_power_dbm(out, (F1 + 10e3) - out.center_frequency_hz)
        assert leak == pytest.approx(-70.0, abs=0.5)

    def test_wrong_center_rejected(self):
        path = make_path()
        with pytest.raises(RelayError):
            path.forward(tone(0.0, 1e-4, FS, 1.0, F1 + 50e6))

    def test_invalid_feedthrough(self):
        with pytest.raises(ConfigurationError):
            PathConfig(feedthrough_db=0.0)


class TestRelayConfig:
    def test_defaults_valid(self):
        RelayConfig()

    def test_shift_must_clear_filters(self):
        with pytest.raises(ConfigurationError):
            RelayConfig(frequency_shift_hz=400e3)

    def test_sample_rate_must_cover_shift(self):
        with pytest.raises(ConfigurationError):
            RelayConfig(sample_rate=2e6)


class TestMirroredRelay:
    def test_structure_is_mirrored(self):
        relay = MirroredRelay(F1, rng=np.random.default_rng(0))
        assert relay.round_trip_phase_is_mirrored()

    def test_no_mirror_is_not(self):
        relay = NoMirrorRelay(F1, rng=np.random.default_rng(0))
        assert not relay.round_trip_phase_is_mirrored()

    def test_downlink_uplink_frequencies(self):
        relay = MirroredRelay(F1, rng=np.random.default_rng(0))
        sig = tone(10e3, 1e-3, FS, 0.001, F1)
        down = relay.forward_downlink(sig)
        assert down.center_frequency_hz == pytest.approx(relay.shifted_frequency_hz)
        back = relay.forward_uplink(
            tone(GEN2_BLF_DEFAULT, 1e-3, FS, 0.001, relay.shifted_frequency_hz)
        )
        assert back.center_frequency_hz == pytest.approx(F1)

    def test_round_trip_phase_preserved(self):
        """The Fig. 10 property, at tone level: two relays with different
        random synthesizer errors produce the same round-trip phase."""
        phases = []
        for seed in range(4):
            relay = MirroredRelay(F1, rng=np.random.default_rng(seed))
            # Downlink a CW, uplink a response tone derived from it.
            cw = tone(0.0, 4e-3, FS, amplitude_for_power_dbm(-30.0), F1)
            at_tag = relay.forward_downlink(cw)
            # Tag modulates at +BLF: multiply by a BLF subcarrier.
            t = at_tag.times
            sub = np.exp(2j * np.pi * GEN2_BLF_DEFAULT * t)
            response = at_tag.with_samples(at_tag.samples * sub * 0.1)
            at_reader = relay.forward_uplink(response)
            steady = at_reader.sliced(8000)
            phases.append(phase_of_tone(steady, GEN2_BLF_DEFAULT))
        # Residual spread comes from the baseband filters' phase slope
        # evaluated at each build's CFO — a fraction of a degree per
        # 100 Hz — not from the (cancelled) oscillator offsets.
        spread = np.max(np.abs(np.exp(1j * np.array(phases))
                               - np.exp(1j * phases[0])))
        assert spread < 0.15  # well under a degree-equivalent per 100 Hz CFO

    def test_no_mirror_randomizes_phase(self):
        phases = []
        for seed in range(6):
            relay = NoMirrorRelay(F1, rng=np.random.default_rng(seed))
            cw = tone(0.0, 4e-3, FS, amplitude_for_power_dbm(-30.0), F1)
            at_tag = relay.forward_downlink(cw)
            t = at_tag.times
            sub = np.exp(2j * np.pi * GEN2_BLF_DEFAULT * t)
            response = at_tag.with_samples(at_tag.samples * sub * 0.1)
            at_reader = relay.forward_uplink(response)
            steady = at_reader.sliced(8000)
            phases.append(phase_of_tone(steady, GEN2_BLF_DEFAULT))
        spread = np.std(np.angle(np.exp(1j * (np.array(phases) - phases[0]))))
        assert spread > 0.3  # effectively random

    def test_pa_limits_downlink_output(self):
        relay = MirroredRelay(F1, rng=np.random.default_rng(1))
        hot = tone(10e3, 2e-3, FS, amplitude_for_power_dbm(20.0), F1)
        out = relay.forward_downlink(hot)
        sat = relay.downlink.amplifiers.stages[-1].saturation_power_dbm
        assert peak_power_dbm(out) <= sat + 0.5

    def test_invalid_reader_frequency(self):
        with pytest.raises(ConfigurationError):
            MirroredRelay(-1.0)
