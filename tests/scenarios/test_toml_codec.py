"""Canonical TOML codec: emitter/parser agreement and error reporting."""

import sys

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import registry, toml_codec

SAMPLE = {
    "name": "w",
    "count": 3,
    "scale": 0.5,
    "flag": True,
    "items": [1.0, 2.5],
    "nested": {"a": 1, "b": {"c": "deep"}},
    "rows": [{"x": 1.0, "y": 2.0}, {"x": 3.0, "y": 4.0}],
}


class TestCanonicalForm:
    def test_dump_load_dump_is_identity(self):
        text = toml_codec.dumps(SAMPLE)
        assert toml_codec.dumps(toml_codec.loads(text)) == text

    def test_keys_are_sorted(self):
        text = toml_codec.dumps({"zeta": 1, "alpha": 2})
        assert text.index("alpha") < text.index("zeta")

    def test_floats_round_trip_exactly(self):
        values = [0.1, 1e-9, 902.75e6, 3.5, -0.0]
        loaded = toml_codec.loads(toml_codec.dumps({"v": values}))
        assert loaded["v"] == values

    def test_int_and_float_stay_distinct(self):
        loaded = toml_codec.loads(toml_codec.dumps({"i": 3, "f": 3.0}))
        assert isinstance(loaded["i"], int)
        assert isinstance(loaded["f"], float)

    def test_strings_escape_like_json(self):
        tricky = 'quote " backslash \\ newline \n tab \t'
        loaded = toml_codec.loads(toml_codec.dumps({"s": tricky}))
        assert loaded["s"] == tricky

    def test_null_is_rejected(self):
        with pytest.raises(ConfigurationError):
            toml_codec.dumps({"missing": None})


class TestHandEdits:
    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\na = 1  # trailing\n\n[t]\nb = 2.0\n"
        assert toml_codec.loads(text) == {"a": 1, "t": {"b": 2.0}}

    def test_nested_arrays_parse(self):
        assert toml_codec.loads("m = [[1.0, 2.0], [3.0, 4.0]]\n") == {
            "m": [[1.0, 2.0], [3.0, 4.0]]
        }


class TestErrors:
    @pytest.mark.parametrize(
        "text, lineno",
        [
            ("a = 1\nb\n", 2),
            ('a = 1\na = 2\n', 2),
            ("a = [1, 2\n", 1),
            ('s = "unterminated\n', 1),
            ("a = 1\n[bad header\n", 2),
        ],
    )
    def test_errors_carry_line_numbers(self, text, lineno):
        with pytest.raises(ConfigurationError) as err:
            toml_codec.loads(text)
        assert f"line {lineno}" in str(err.value)


@pytest.mark.skipif(
    sys.version_info < (3, 11), reason="tomllib ships with 3.11+"
)
class TestTomllibAgreement:
    def test_sample_parses_identically(self):
        import tomllib

        text = toml_codec.dumps(SAMPLE)
        assert tomllib.loads(text) == toml_codec.loads(text)

    @pytest.mark.parametrize("name", registry.names())
    def test_every_shipped_scenario_parses_identically(self, name):
        import tomllib

        text = toml_codec.dumps(registry.get(name).to_dict())
        assert tomllib.loads(text) == toml_codec.loads(text)
