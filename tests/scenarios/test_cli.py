"""The ``python -m repro.scenarios`` front end."""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import registry, toml_codec
from repro.scenarios.cli import (
    SMOKE_MIN_RESOLUTION_M,
    SMOKE_MIN_SPACING_M,
    main,
    parse_set_overrides,
    smoke_variant,
    validate_files,
)
from repro.scenarios.spec import Scenario


class TestParseSetOverrides:
    def test_json_values(self):
        parsed = parse_set_overrides(
            ["traffic.load=8.0", "traffic.use_gen2_mac=false"]
        )
        assert parsed == {"traffic.load": 8.0, "traffic.use_gen2_mac": False}

    def test_exponent_form_is_numeric(self):
        assert parse_set_overrides(["radio.center_frequency_hz=920e6"]) == {
            "radio.center_frequency_hz": 920e6
        }

    def test_plain_string_fallback(self):
        assert parse_set_overrides(["name=my_world"]) == {"name": "my_world"}

    @pytest.mark.parametrize("item", ["traffic.load", "=8.0"])
    def test_malformed_item_rejected(self, item):
        with pytest.raises(ConfigurationError):
            parse_set_overrides([item])


class TestSmokeVariant:
    def test_floors_fine_scenarios(self):
        fine = registry.get("conveyor_flow_through")
        assert fine.trajectory.spacing_m < SMOKE_MIN_SPACING_M
        smoke = smoke_variant(fine)
        assert smoke.trajectory.spacing_m == SMOKE_MIN_SPACING_M
        assert smoke.grid.resolution_m >= SMOKE_MIN_RESOLUTION_M

    def test_never_refines_coarse_scenarios(self):
        coarse = Scenario(name="coarse").with_overrides(
            {"trajectory.spacing_m": 0.5, "grid.resolution_m": 0.4}
        )
        smoke = smoke_variant(coarse)
        assert smoke.trajectory.spacing_m == 0.5
        assert smoke.grid.resolution_m == 0.4


class TestListCommand:
    def test_lists_every_shipped_scenario(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out


class TestShowCommand:
    def test_toml_output_is_the_canonical_spec(self, capsys):
        assert main(["show", "rf_bench"]) == 0
        out = capsys.readouterr().out
        assert Scenario.from_dict(toml_codec.loads(out)) == registry.get(
            "rf_bench"
        )

    def test_json_output_parses(self, capsys):
        import json

        assert main(["show", "outdoor_yard", "--format", "json"]) == 0
        loaded = json.loads(capsys.readouterr().out)
        assert Scenario.from_dict(loaded) == registry.get("outdoor_yard")

    def test_unknown_name_exits_via_parser_error(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["show", "nope"])
        assert exit_info.value.code == 2
        assert "nope" in capsys.readouterr().err


class TestValidateCommand:
    def test_shipped_library_is_valid(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        n = len(registry.names())
        assert f"{n}/{n} scenario file(s) valid" in out
        assert "FAIL" not in out

    def test_stem_mismatch_fails(self, tmp_path, capsys):
        bad = tmp_path / "wrong_stem.toml"
        bad.write_text(
            toml_codec.dumps(registry.get("rf_bench").to_dict())
        )
        assert main(["validate", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "stem" in out

    def test_unparseable_file_fails(self, tmp_path):
        bad = tmp_path / "broken.toml"
        bad.write_text("name = \n")
        problems = validate_files([bad])
        assert len(problems) == 1
        assert "broken.toml" in problems[0]

    def test_good_file_passes(self, tmp_path):
        good = tmp_path / "rf_bench.toml"
        good.write_text(
            toml_codec.dumps(registry.get("rf_bench").to_dict())
        )
        assert validate_files([good]) == []


class TestRunCommand:
    def test_smoke_run_prints_one_row_per_replicate(self, capsys):
        code = main(
            [
                "run",
                "conveyor_flow_through",
                "--smoke",
                "--replicates",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 1
        assert out[0].startswith("r0: sessions=")
        assert "p99=" in out[0]

    def test_set_override_changes_the_run(self, capsys):
        base_args = ["run", "conveyor_flow_through", "--smoke",
                     "--replicates", "1"]
        assert main(base_args) == 0
        base = capsys.readouterr().out
        assert main(base_args + ["--set", "trajectory.spacing_m=0.5"]) == 0
        bumped = capsys.readouterr().out
        assert bumped != base

    def test_bad_set_item_exits_via_parser_error(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            main(["run", "rf_bench", "--set", "no_equals_sign"])
        assert exit_info.value.code == 2
        assert "KEY=VALUE" in capsys.readouterr().err

    def test_unknown_override_path_exits_via_parser_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "rf_bench", "--set", "radio.nope_hz=1.0"])
        assert "nope_hz" in capsys.readouterr().err
