"""Compiler lowering: tasks, workloads, and end-to-end scenario runs."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime import RuntimeConfig, run_sweep
from repro.scenarios import compiler, registry
from repro.scenarios.cli import smoke_variant
from repro.scenarios.spec import Scenario
from repro.serve import traffic as serve_traffic

#: The named scenarios the twelve experiments resolve; each must run
#: end to end (ISSUE acceptance: five named scenarios under --smoke).
NAMED_SCENARIOS = (
    "paper_warehouse_two_floor",
    "cold_storage_aisles",
    "conveyor_flow_through",
    "multi_floor_atrium",
    "outdoor_yard",
)


class TestCompileScenario:
    def test_task_seeds_and_labels(self):
        tasks = compiler.compile_scenario("rf_bench", n_replicates=3, seed=7)
        assert [t.seed for t in tasks] == [7000, 7001, 7002]
        assert [t.label for t in tasks] == [
            "scenario/rf_bench/r0",
            "scenario/rf_bench/r1",
            "scenario/rf_bench/r2",
        ]

    def test_spec_rides_as_canonical_json(self):
        (task,) = compiler.compile_scenario("rf_bench", n_replicates=1)
        params = dict(task.params)
        spec = Scenario.from_json(params["scenario_json"])
        assert spec == registry.get("rf_bench")

    def test_zero_replicates_rejected(self):
        with pytest.raises(ConfigurationError):
            compiler.compile_scenario("rf_bench", n_replicates=0)


class TestWorkloadDelegation:
    def test_legacy_entry_point_matches_compiler(self):
        """serve.traffic.generate_workload is a byte-exact delegator
        pinned to conveyor_flow_through."""
        legacy = serve_traffic.generate_workload(n_tags=3, seed=5, load=2.0)
        compiled = compiler.generate_workload(
            "conveyor_flow_through", n_tags=3, seed=5, load=2.0
        )
        assert len(legacy.events) == len(compiled.events)
        for a, b in zip(legacy.events, compiled.events):
            assert a.time_s == b.time_s
            assert a.session_id == b.session_id
            assert a.measurement.h_target == b.measurement.h_target
        assert legacy.duration_s == compiled.duration_s
        for sid in legacy.tag_positions:
            np.testing.assert_array_equal(
                legacy.tag_positions[sid], compiled.tag_positions[sid]
            )

    def test_legacy_entry_point_accepts_other_scenarios(self):
        workload = serve_traffic.generate_workload(
            n_tags=2, seed=1, scenario="outdoor_yard"
        )
        assert len(workload.grids) == 2

    def test_explicit_knobs_override_the_spec(self):
        coarse = compiler.generate_workload(
            "conveyor_flow_through", seed=0, pose_spacing_m=0.5
        )
        fine = compiler.generate_workload("conveyor_flow_through", seed=0)
        assert len(coarse.events) < len(fine.events)


class TestEndToEnd:
    @pytest.mark.parametrize("name", NAMED_SCENARIOS)
    def test_named_scenario_runs_under_smoke(self, name):
        row = compiler.run_scenario(smoke_variant(registry.get(name)), seed=0)
        assert row["scenario"] == name
        assert row["offered"] > 0
        assert row["sessions"] >= 1
        assert np.isfinite(row["p99_latency_s"])

    def test_run_scenario_is_seed_deterministic(self):
        spec = smoke_variant(registry.get("conveyor_flow_through"))
        assert compiler.run_scenario(spec, seed=3) == compiler.run_scenario(
            spec, seed=3
        )

    def test_serial_equals_process_backend(self):
        spec = smoke_variant(registry.get("conveyor_flow_through"))
        tasks = compiler.compile_scenario(spec, n_replicates=2, seed=0)
        serial = run_sweep(
            tasks, RuntimeConfig(backend="serial"), name="scn-serial"
        )
        process = run_sweep(
            tasks,
            RuntimeConfig(backend="process", max_workers=2),
            name="scn-process",
        )
        assert serial.results == process.results

    def test_fault_plan_engages(self):
        spec = smoke_variant(
            registry.get("conveyor_flow_through")
        ).with_overrides(
            {
                "fault_plan": {
                    "specs": [
                        {
                            "site": "serve.ingest",
                            "action": "drop",
                            "rate": 1.0,
                        }
                    ]
                }
            }
        )
        row = compiler.run_scenario(spec, seed=0)
        clean = compiler.run_scenario(
            smoke_variant(registry.get("conveyor_flow_through")), seed=0
        )
        assert row["applied"] < clean["applied"]
