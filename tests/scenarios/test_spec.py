"""Scenario spec validation and lossless serialization."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.scenarios import registry, toml_codec
from repro.scenarios.spec import (
    GridSpec,
    RadioSpec,
    ReaderSpec,
    Scenario,
    TagLayoutSpec,
    TrafficSpec,
    TrajectorySpec,
    WallSpec,
)


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="")

    def test_non_identifier_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Scenario(name="bad name!")

    def test_zero_length_wall_rejected(self):
        with pytest.raises(ConfigurationError):
            WallSpec(1.0, 1.0, 1.0, 1.0)

    def test_unknown_material_rejected(self):
        with pytest.raises(ConfigurationError):
            WallSpec(0.0, 0.0, 1.0, 0.0, material="adamantium")

    def test_nan_coordinate_rejected(self):
        with pytest.raises(ConfigurationError):
            WallSpec(float("nan"), 0.0, 1.0, 0.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            TrajectorySpec(kind="teleport")

    def test_random_segment_needs_lengths(self):
        with pytest.raises(ConfigurationError):
            TrajectorySpec(
                kind="random_segment", length_min_m=0.0, length_max_m=0.0
            )

    def test_fixed_tags_count_must_match(self):
        with pytest.raises(ConfigurationError):
            TagLayoutSpec(kind="fixed", n_tags=2, positions_m=((1.0, 1.0),))

    def test_reader_ring_needs_clip_rectangle(self):
        with pytest.raises(ConfigurationError):
            ReaderSpec(kind="random_ring", distance_min_m=1.0, distance_max_m=2.0)

    def test_band_edges_ordered(self):
        with pytest.raises(ConfigurationError):
            RadioSpec(band_low_hz=930e6, band_high_hz=900e6)

    def test_traffic_load_positive(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(load=0.0)

    def test_grid_needs_nonempty_rectangle(self):
        with pytest.raises(ConfigurationError):
            GridSpec(kind="fixed", x_min_m=2.0, x_max_m=1.0)

    def test_unknown_key_in_from_dict_rejected(self):
        with pytest.raises(ConfigurationError) as err:
            Scenario.from_dict({"name": "x", "florplan": {}})
        assert "florplan" in str(err.value)


class TestRoundTrip:
    @pytest.mark.parametrize("name", registry.names())
    def test_shipped_scenarios_round_trip_json(self, name):
        spec = registry.get(name)
        clone = Scenario.from_json(spec.to_json())
        assert clone == spec
        assert clone.to_json() == spec.to_json()

    @pytest.mark.parametrize("name", registry.names())
    def test_shipped_scenarios_round_trip_toml(self, name):
        spec = registry.get(name)
        text = toml_codec.dumps(spec.to_dict())
        clone = Scenario.from_dict(toml_codec.loads(text))
        assert clone == spec
        assert toml_codec.dumps(clone.to_dict()) == text

    def test_fault_plan_round_trips(self):
        spec = Scenario(
            name="faulty",
            fault_plan=FaultPlan.single(
                "serve.ingest", "drop", rate=0.25
            ),
        )
        clone = Scenario.from_json(spec.to_json())
        assert clone == spec
        assert clone.fault_plan is not None
        assert clone.fault_plan.specs[0].rate == 0.25

    def test_sparse_dict_takes_defaults(self):
        spec = Scenario.from_dict({"name": "sparse"})
        assert spec.radio == RadioSpec()
        assert spec.traffic == TrafficSpec()
        assert spec.fault_plan is None


class TestWithOverrides:
    def test_dotted_override_applies(self):
        base = registry.get("conveyor_flow_through")
        bumped = base.with_overrides({"traffic.load": 8.0})
        assert bumped.traffic.load == 8.0
        assert bumped.grid == base.grid

    def test_override_is_non_destructive(self):
        base = registry.get("conveyor_flow_through")
        before = base.to_json()
        base.with_overrides({"grid.resolution_m": 0.5})
        assert base.to_json() == before

    def test_unknown_path_rejected(self):
        with pytest.raises(ConfigurationError):
            registry.get("rf_bench").with_overrides({"radio.nope_hz": 1.0})

    def test_override_through_value_rejected(self):
        with pytest.raises(ConfigurationError):
            registry.get("rf_bench").with_overrides(
                {"name.sub.key": 1.0}
            )

    def test_invalid_value_rejected_by_validation(self):
        with pytest.raises(ConfigurationError):
            registry.get("rf_bench").with_overrides({"traffic.load": -1.0})
