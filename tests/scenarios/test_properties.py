"""Property suite: generated scenarios serialize losslessly and run
deterministically.

Two families: (1) any valid generated :class:`Scenario` round-trips
through canonical JSON and TOML byte-identically; (2) any generated
smoke-grid scenario compiles to sweep tasks whose end-to-end results
are a pure function of the seed, identical across the serial and
process backends.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import RuntimeConfig, run_sweep
from repro.scenarios import compiler, toml_codec
from repro.scenarios.spec import (
    ClutterSpec,
    FloorplanSpec,
    GridSpec,
    RadioSpec,
    ReaderSpec,
    Scenario,
    TagLayoutSpec,
    TrafficSpec,
    TrajectorySpec,
    WallSpec,
)

finite = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
positive = st.floats(
    min_value=0.05, max_value=10.0, allow_nan=False, allow_infinity=False
)
names = st.from_regex(r"[a-z][a-z0-9_]{0,11}", fullmatch=True)


@st.composite
def walls(draw):
    x0, y0 = draw(finite), draw(finite)
    dx, dy = draw(positive), draw(finite)
    return WallSpec(
        x0_m=x0,
        y0_m=y0,
        x1_m=x0 + dx,
        y1_m=y0 + dy,
        material=draw(
            st.sampled_from(("drywall", "concrete", "steel", "glass"))
        ),
        name=draw(names),
    )


@st.composite
def floorplans(draw, max_walls=3):
    clutter = None
    if draw(st.booleans()):
        lo = draw(st.floats(min_value=0.1, max_value=1.0))
        clutter = ClutterSpec(
            n_obstacles=draw(st.integers(min_value=0, max_value=3)),
            scatter_std_m=draw(st.floats(min_value=0.0, max_value=3.0)),
            half_extent_min_m=lo,
            half_extent_max_m=lo + draw(st.floats(min_value=0.0, max_value=1.0)),
            materials=tuple(
                draw(
                    st.lists(
                        st.sampled_from(("drywall", "steel")),
                        min_size=1,
                        max_size=2,
                        unique=True,
                    )
                )
            ),
        )
    return FloorplanSpec(
        walls=tuple(draw(st.lists(walls(), max_size=max_walls))),
        max_reflections=draw(st.integers(min_value=0, max_value=2)),
        clutter=clutter,
    )


@st.composite
def readers(draw):
    if draw(st.booleans()):
        return ReaderSpec(kind="fixed", x_m=draw(finite), y_m=draw(finite))
    dmin = draw(st.floats(min_value=0.5, max_value=5.0))
    return ReaderSpec(
        kind="random_ring",
        distance_min_m=dmin,
        distance_max_m=dmin + draw(st.floats(min_value=0.0, max_value=5.0)),
        clip_x_min_m=-20.0,
        clip_x_max_m=20.0,
        clip_y_min_m=-20.0,
        clip_y_max_m=20.0,
    )


@st.composite
def trajectories(draw):
    spacing = draw(st.floats(min_value=0.3, max_value=1.0))
    if draw(st.booleans()):
        x0, y0 = draw(finite), draw(finite)
        return TrajectorySpec(
            kind="line",
            x0_m=x0,
            y0_m=y0,
            x1_m=x0 + draw(st.floats(min_value=0.5, max_value=4.0)),
            y1_m=y0,
            spacing_m=spacing,
            jitter_std_m=draw(st.floats(min_value=0.0, max_value=0.05)),
        )
    lmin = draw(st.floats(min_value=0.5, max_value=2.0))
    return TrajectorySpec(
        kind="random_segment",
        x_min_m=-5.0,
        x_max_m=5.0,
        y_min_m=-5.0,
        y_max_m=5.0,
        length_min_m=lmin,
        length_max_m=lmin + draw(st.floats(min_value=0.0, max_value=2.0)),
        spacing_m=spacing,
    )


@st.composite
def tag_layouts(draw):
    kind = draw(st.sampled_from(("fixed", "uniform_box", "side_offset")))
    if kind == "fixed":
        positions = tuple(
            (draw(finite), draw(finite))
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        )
        return TagLayoutSpec(
            kind="fixed", n_tags=len(positions), positions_m=positions
        )
    if kind == "uniform_box":
        x0, y0 = draw(finite), draw(finite)
        return TagLayoutSpec(
            kind="uniform_box",
            n_tags=draw(st.integers(min_value=1, max_value=3)),
            x_min_m=x0,
            x_max_m=x0 + draw(positive),
            y_min_m=y0,
            y_max_m=y0 + draw(positive),
        )
    omin = draw(st.floats(min_value=0.0, max_value=2.0))
    fmin = draw(st.floats(min_value=0.0, max_value=0.5))
    return TagLayoutSpec(
        kind="side_offset",
        n_tags=draw(st.integers(min_value=1, max_value=3)),
        offset_min_m=omin,
        offset_max_m=omin + draw(st.floats(min_value=0.0, max_value=2.0)),
        along_fraction_min=fmin,
        along_fraction_max=fmin + draw(st.floats(min_value=0.0, max_value=0.5)),
    )


@st.composite
def radios(draw):
    low = draw(st.floats(min_value=800e6, max_value=900e6))
    smin = draw(st.floats(min_value=3.0, max_value=15.0))
    return RadioSpec(
        center_frequency_hz=draw(st.floats(min_value=850e6, max_value=950e6)),
        band_low_hz=low,
        band_high_hz=low + draw(st.floats(min_value=0.0, max_value=50e6)),
        relay_gain_db=draw(st.floats(min_value=20.0, max_value=60.0)),
        snr_kind=draw(st.sampled_from(("fixed", "distance_law"))),
        snr_db=draw(st.floats(min_value=5.0, max_value=40.0)),
        snr_min_db=smin,
        snr_max_db=smin + draw(st.floats(min_value=0.0, max_value=20.0)),
        rssi_mismatch_std_db=draw(st.floats(min_value=0.0, max_value=5.0)),
    )


@st.composite
def grids(draw):
    resolution = draw(st.floats(min_value=0.3, max_value=1.0))
    if draw(st.booleans()):
        x0, y0 = draw(finite), draw(finite)
        return GridSpec(
            kind="fixed",
            x_min_m=x0,
            x_max_m=x0 + draw(st.floats(min_value=1.0, max_value=5.0)),
            y_min_m=y0,
            y_max_m=y0 + draw(st.floats(min_value=1.0, max_value=5.0)),
            resolution_m=resolution,
        )
    return GridSpec(
        kind="tag_side",
        margin_m=draw(st.floats(min_value=1.0, max_value=4.0)),
        side_sign=draw(st.sampled_from((-1.0, 1.0))),
        resolution_m=resolution,
    )


@st.composite
def scenarios(draw):
    return Scenario(
        name=draw(names),
        description=draw(st.text(max_size=20)),
        floorplan=draw(floorplans()),
        reader=draw(readers()),
        trajectory=draw(trajectories()),
        tags=draw(tag_layouts()),
        radio=draw(radios()),
        traffic=TrafficSpec(
            load=draw(st.floats(min_value=0.5, max_value=8.0)),
            use_gen2_mac=draw(st.booleans()),
            powering_range_m=draw(st.floats(min_value=1.0, max_value=30.0)),
        ),
        grid=draw(grids()),
    )


class TestRoundTripProperties:
    @given(spec=scenarios())
    def test_json_round_trip_is_byte_lossless(self, spec):
        wire = spec.to_json()
        clone = Scenario.from_json(wire)
        assert clone == spec
        assert clone.to_json() == wire

    @given(spec=scenarios())
    def test_toml_round_trip_is_byte_lossless(self, spec):
        text = toml_codec.dumps(spec.to_dict())
        clone = Scenario.from_dict(toml_codec.loads(text))
        assert clone == spec
        assert toml_codec.dumps(clone.to_dict()) == text

    @given(spec=scenarios())
    def test_json_and_toml_agree(self, spec):
        via_toml = Scenario.from_dict(
            toml_codec.loads(toml_codec.dumps(spec.to_dict()))
        )
        assert via_toml.to_json() == spec.to_json()


class TestCompileRunProperties:
    @given(spec=scenarios(), seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10)
    def test_workload_is_a_pure_function_of_spec_and_seed(self, spec, seed):
        first = compiler.generate_workload(spec, seed=seed)
        second = compiler.generate_workload(spec, seed=seed)
        assert len(first.events) == len(second.events)
        for a, b in zip(first.events, second.events):
            assert a.time_s == b.time_s
            assert a.session_id == b.session_id
            assert a.measurement.h_target == b.measurement.h_target

    @given(spec=scenarios(), seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=3)
    def test_compiled_sweep_serial_equals_process(self, spec, seed):
        tasks = compiler.compile_scenario(spec, n_replicates=2, seed=seed)
        serial = run_sweep(
            tasks, RuntimeConfig(backend="serial"), name="prop-serial"
        )
        process = run_sweep(
            tasks,
            RuntimeConfig(backend="process", max_workers=2),
            name="prop-process",
        )
        # NaN-tolerant equality (unlocalized sessions yield NaN errors).
        assert json.dumps(serial.results) == json.dumps(process.results)
