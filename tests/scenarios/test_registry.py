"""Registry lookup, registration, and resolve() dispatch."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import registry
from repro.scenarios.spec import Scenario

#: The five library scenarios the paper experiments resolve, the three
#: worlds the heatmap/microbench figures use, plus the two fleet worlds.
SHIPPED = (
    "aisle_crossover_handoff",
    "aisle_microbench",
    "cold_storage_aisles",
    "conveyor_flow_through",
    "los_aisle",
    "multi_floor_atrium",
    "outdoor_yard",
    "paper_warehouse_two_floor",
    "rf_bench",
    "warehouse_twin_aisle",
)


@pytest.fixture
def scratch_registry(monkeypatch):
    """Isolate mutations: restore the module dict after the test."""
    snapshot = dict(registry._SCENARIOS)
    yield registry
    registry._SCENARIOS.clear()
    registry._SCENARIOS.update(snapshot)


class TestLibrary:
    def test_shipped_names(self):
        assert registry.names() == SHIPPED

    def test_get_returns_matching_name(self):
        for name in SHIPPED:
            assert registry.get(name).name == name

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigurationError) as err:
            registry.get("nope")
        assert "conveyor_flow_through" in str(err.value)


class TestRegister:
    def test_register_and_get(self, scratch_registry):
        spec = Scenario(name="test_world")
        scratch_registry.register(spec)
        assert scratch_registry.get("test_world") is spec

    def test_duplicate_rejected_without_replace(self, scratch_registry):
        scratch_registry.register(Scenario(name="test_world"))
        with pytest.raises(ConfigurationError):
            scratch_registry.register(Scenario(name="test_world"))

    def test_replace_wins(self, scratch_registry):
        scratch_registry.register(Scenario(name="test_world"))
        replacement = Scenario(name="test_world", description="v2")
        scratch_registry.register(replacement, replace=True)
        assert scratch_registry.get("test_world").description == "v2"


class TestResolve:
    def test_scenario_passthrough(self):
        spec = Scenario(name="inline")
        assert registry.resolve(spec) is spec

    def test_name_resolves(self):
        assert registry.resolve("rf_bench").name == "rf_bench"

    def test_toml_path_resolves(self, tmp_path):
        source = registry.LIBRARY_DIR / "rf_bench.toml"
        copy = tmp_path / "my_bench.toml"
        copy.write_text(source.read_text())
        assert registry.resolve(str(copy)).name == "rf_bench"

    def test_json_path_resolves(self, tmp_path):
        spec = registry.get("outdoor_yard")
        path = tmp_path / "yard.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert registry.resolve(str(path)) == spec

    def test_bad_extension_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("name: x\n")
        with pytest.raises(ConfigurationError):
            registry.resolve(str(path))

    def test_non_string_rejected(self):
        with pytest.raises(ConfigurationError):
            registry.resolve(42)

    def test_stem_mismatch_in_library_would_fail(self, tmp_path, monkeypatch):
        bad = tmp_path / "wrong_stem.toml"
        bad.write_text('name = "other_name"\ndescription = ""\n')
        monkeypatch.setattr(registry, "LIBRARY_DIR", tmp_path)
        monkeypatch.setattr(registry, "_library_loaded", False)
        monkeypatch.setattr(registry, "_SCENARIOS", {})
        with pytest.raises(ConfigurationError) as err:
            registry.names()
        assert "stem" in str(err.value)
