"""Tests for the reader's anti-collision inventory MAC."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.gen2 import Gen2Tag, QAlgorithm, SlotOutcome, run_inventory
from repro.gen2.bitops import bits_from_int


def make_population(n, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Gen2Tag(bits_from_int(int(rng.integers(0, 2**60)), 96),
                np.random.default_rng(seed + 1 + i))
        for i in range(n)
    ]


class TestQAlgorithm:
    def test_collision_raises_q(self):
        alg = QAlgorithm(initial_q=4, c=0.5)
        alg.update(SlotOutcome.COLLISION)
        assert alg.qfp == pytest.approx(4.5)

    def test_idle_lowers_q(self):
        alg = QAlgorithm(initial_q=4, c=0.5)
        alg.update(SlotOutcome.IDLE)
        assert alg.qfp == pytest.approx(3.5)

    def test_success_keeps_q(self):
        alg = QAlgorithm(initial_q=4, c=0.5)
        assert alg.update(SlotOutcome.SUCCESS) == 0
        assert alg.qfp == pytest.approx(4.0)

    def test_updn_reported_on_integer_change(self):
        # With c=0.3, Qfp 4.0 -> 4.3 still rounds to 4: no adjustment yet;
        # the second collision crosses to 4.6 -> 5 and reports +1.
        alg = QAlgorithm(initial_q=4, c=0.3)
        assert alg.update(SlotOutcome.COLLISION) == 0
        assert alg.update(SlotOutcome.COLLISION) == 1

    def test_q_clamped(self):
        alg = QAlgorithm(initial_q=0, c=0.5)
        alg.update(SlotOutcome.IDLE)
        assert alg.qfp == 0.0
        alg = QAlgorithm(initial_q=15, c=0.5)
        alg.update(SlotOutcome.COLLISION)
        assert alg.qfp == 15.0

    def test_invalid_parameters(self):
        with pytest.raises(ProtocolError):
            QAlgorithm(initial_q=16)
        with pytest.raises(ProtocolError):
            QAlgorithm(c=0.05)


class TestRunInventory:
    def test_single_tag_read(self):
        tags = make_population(1)
        result = run_inventory(tags, np.random.default_rng(0))
        assert result.epcs == [tags[0].epc_int]

    def test_all_tags_eventually_read(self):
        tags = make_population(30, seed=42)
        result = run_inventory(tags, np.random.default_rng(0))
        assert set(result.epcs) == {t.epc_int for t in tags}

    def test_no_duplicate_reads_in_one_pass(self):
        tags = make_population(15, seed=7)
        result = run_inventory(tags, np.random.default_rng(0))
        assert len(result.epcs) == len(set(result.epcs))

    def test_collisions_occur_with_dense_population(self):
        tags = make_population(50, seed=3)
        result = run_inventory(tags, np.random.default_rng(1), initial_q=1)
        assert result.collisions > 0
        assert set(result.epcs) == {t.epc_int for t in tags}

    def test_hears_predicate_limits_population(self):
        tags = make_population(10, seed=9)
        audible = set(id(t) for t in tags[:4])
        result = run_inventory(
            tags, np.random.default_rng(0), hears=lambda t: id(t) in audible
        )
        assert set(result.epcs) == {t.epc_int for t in tags[:4]}

    def test_decode_failures_recorded(self):
        tags = make_population(5, seed=11)
        # Reader never decodes: every reply is a decode error; terminates
        # by max_slots.
        result = run_inventory(
            tags,
            np.random.default_rng(0),
            decodes=lambda t: False,
            max_slots=200,
        )
        assert result.epcs == []
        assert any(s.outcome == SlotOutcome.DECODE_ERROR for s in result.slots)

    def test_without_query_adjust(self):
        tags = make_population(20, seed=13)
        result = run_inventory(
            tags, np.random.default_rng(0), use_query_adjust=False
        )
        assert set(result.epcs) == {t.epc_int for t in tags}

    def test_empty_population(self):
        result = run_inventory([], np.random.default_rng(0), max_slots=10)
        assert result.epcs == []

    def test_second_target_pass_reads_inverted_flags(self):
        """After an A-pass, tags carry flag B and answer a B-pass."""
        tags = make_population(8, seed=17)
        first = run_inventory(tags, np.random.default_rng(0), target="A")
        assert len(first.epcs) == 8
        second = run_inventory(tags, np.random.default_rng(1), target="B")
        assert set(second.epcs) == set(first.epcs)

    def test_statistics_add_up(self):
        tags = make_population(25, seed=19)
        result = run_inventory(tags, np.random.default_rng(2))
        assert (
            result.successes + result.collisions + result.idles
            + sum(1 for s in result.slots if s.outcome == SlotOutcome.DECODE_ERROR)
            == len(result.slots)
        )
