"""Tests for Gen2 command framing and parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProtocolError
from repro.gen2 import Ack, Nak, Query, QueryAdjust, QueryRep, Select, parse_command
from repro.gen2.bitops import bits_from_int


class TestQuery:
    def test_length_is_22_bits(self):
        assert len(Query().to_bits()) == 22

    def test_roundtrip(self):
        q = Query(q=7, dr=8.0, miller_m=4, trext=True, sel=3, session="S2", target="B")
        assert Query.from_bits(q.to_bits()) == q

    def test_invalid_q(self):
        with pytest.raises(ProtocolError):
            Query(q=16)

    def test_invalid_session(self):
        with pytest.raises(ProtocolError):
            Query(session="S4")

    def test_invalid_dr(self):
        with pytest.raises(ProtocolError):
            Query(dr=10.0)

    def test_corrupted_crc_rejected(self):
        bits = list(Query().to_bits())
        bits[5] ^= 1
        with pytest.raises(ProtocolError):
            Query.from_bits(tuple(bits))

    @given(
        st.integers(0, 15),
        st.sampled_from([8.0, 64.0 / 3.0]),
        st.sampled_from([1, 2, 4, 8]),
        st.booleans(),
        st.integers(0, 3),
        st.sampled_from(["S0", "S1", "S2", "S3"]),
        st.sampled_from(["A", "B"]),
    )
    def test_roundtrip_property(self, q, dr, m, trext, sel, session, target):
        cmd = Query(
            q=q, dr=dr, miller_m=m, trext=trext, sel=sel, session=session, target=target
        )
        assert Query.from_bits(cmd.to_bits()) == cmd


class TestSimpleCommands:
    def test_query_rep_roundtrip(self):
        for s in ("S0", "S1", "S2", "S3"):
            cmd = QueryRep(session=s)
            assert QueryRep.from_bits(cmd.to_bits()) == cmd
            assert len(cmd.to_bits()) == 4

    def test_query_adjust_roundtrip(self):
        for updn in (-1, 0, 1):
            cmd = QueryAdjust(session="S1", updn=updn)
            assert QueryAdjust.from_bits(cmd.to_bits()) == cmd
            assert len(cmd.to_bits()) == 9

    def test_query_adjust_invalid_updn(self):
        with pytest.raises(ProtocolError):
            QueryAdjust(updn=2)

    def test_query_adjust_invalid_code(self):
        bits = list(QueryAdjust(updn=0).to_bits())
        bits[6:9] = [1, 0, 1]  # not a valid UpDn code
        with pytest.raises(ProtocolError):
            QueryAdjust.from_bits(tuple(bits))

    def test_ack_roundtrip(self):
        cmd = Ack(rn16=0xBEEF)
        assert Ack.from_bits(cmd.to_bits()) == cmd
        assert len(cmd.to_bits()) == 18

    def test_ack_range(self):
        with pytest.raises(ProtocolError):
            Ack(rn16=1 << 16)

    def test_nak_roundtrip(self):
        assert Nak.from_bits(Nak().to_bits()) == Nak()


class TestSelect:
    def test_roundtrip(self):
        mask = bits_from_int(0xDEAD, 16)
        cmd = Select(target="S2", action=4, membank="TID", pointer=0, mask=mask)
        assert Select.from_bits(cmd.to_bits()) == cmd

    def test_empty_mask_allowed(self):
        cmd = Select(mask=())
        assert Select.from_bits(cmd.to_bits()) == cmd

    def test_crc16_protects_frame(self):
        bits = list(Select(mask=(1, 0, 1)).to_bits())
        bits[8] ^= 1
        with pytest.raises(ProtocolError):
            Select.from_bits(tuple(bits))

    def test_invalid_action(self):
        with pytest.raises(ProtocolError):
            Select(action=8)

    @given(st.lists(st.integers(0, 1), min_size=0, max_size=96).map(tuple))
    def test_mask_roundtrip_property(self, mask):
        cmd = Select(mask=mask)
        assert Select.from_bits(cmd.to_bits()).mask == mask


class TestParseCommand:
    @pytest.mark.parametrize(
        "cmd",
        [
            Query(q=3),
            QueryRep(session="S1"),
            QueryAdjust(updn=1),
            Ack(rn16=123),
            Nak(),
            Select(mask=(1, 0)),
        ],
    )
    def test_dispatch(self, cmd):
        assert parse_command(cmd.to_bits()) == cmd

    def test_unknown_rejected(self):
        with pytest.raises(ProtocolError):
            parse_command((1, 1, 1, 1, 1, 1))
