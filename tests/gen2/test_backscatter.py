"""Tests for FM0 and Miller backscatter encodings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp import Signal
from repro.errors import ConfigurationError, EncodingError
from repro.gen2 import (
    FM0Decoder,
    FM0Encoder,
    MillerDecoder,
    MillerEncoder,
    TagParams,
)

FS = 8e6
payloads = st.lists(st.integers(0, 1), min_size=1, max_size=96).map(tuple)


class TestTagParams:
    def test_blf_bounds(self):
        with pytest.raises(ConfigurationError):
            TagParams(blf=10e3)
        with pytest.raises(ConfigurationError):
            TagParams(blf=1e6)

    def test_miller_values(self):
        with pytest.raises(ConfigurationError):
            TagParams(miller_m=3)

    def test_symbol_period(self):
        assert TagParams(blf=500e3, miller_m=4).symbol_period == pytest.approx(8e-6)


class TestFM0:
    def test_roundtrip(self):
        params = TagParams(blf=500e3)
        enc, dec = FM0Encoder(params, FS), FM0Decoder(params, FS)
        bits = (1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 0, 1, 0)
        assert dec.decode(enc.encode(bits), len(bits)) == bits

    def test_roundtrip_with_trext_pilot(self):
        params = TagParams(blf=500e3, trext=True)
        enc, dec = FM0Encoder(params, FS), FM0Decoder(params, FS)
        bits = (1, 0, 0, 1)
        assert dec.decode(enc.encode(bits), len(bits)) == bits

    def test_waveform_is_on_off(self):
        enc = FM0Encoder(TagParams(blf=500e3), FS)
        wave = enc.encode((1, 0, 1))
        levels = set(np.unique(np.real(wave.samples)))
        assert levels == {0.0, 1.0}

    def test_duration_formula(self):
        params = TagParams(blf=500e3)
        enc = FM0Encoder(params, FS)
        bits = (1,) * 16
        expected = enc.duration_of(16)
        assert enc.encode(bits).duration == pytest.approx(expected, rel=0.01)

    def test_boundary_inversions(self):
        """FM0 must invert at every symbol boundary (except the violation)."""
        enc = FM0Encoder(TagParams(blf=500e3), FS)
        halves = enc.encode_halves((1, 1, 1, 1))
        # For all-ones data, halves come in constant pairs that alternate.
        pairs = [tuple(halves[i : i + 2]) for i in range(0, len(halves), 2)]
        for a, b in zip(pairs[-5:], pairs[-4:]):  # data region
            assert a != b

    def test_violation_breaks_data_rule(self):
        """The preamble's v symbol repeats the previous level (no inversion)."""
        enc = FM0Encoder(TagParams(blf=500e3), FS)
        halves = enc.encode_halves(())
        # Preamble bit symbols: 1 0 1 0 v 1 -> halves index 8..9 is v.
        v = halves[8:10]
        prior_end = halves[7]
        assert v[0] == prior_end  # no boundary inversion = violation

    def test_polarity_inversion_tolerated(self):
        """Decoding must survive an inverted channel (negative real h)."""
        params = TagParams(blf=500e3)
        enc, dec = FM0Encoder(params, FS), FM0Decoder(params, FS)
        bits = (1, 0, 0, 1, 1, 0)
        wave = enc.encode(bits)
        inverted = wave.with_samples(1.0 - wave.samples)
        assert dec.decode(inverted, len(bits)) == bits

    def test_noise_tolerance(self):
        params = TagParams(blf=500e3)
        enc, dec = FM0Encoder(params, FS), FM0Decoder(params, FS)
        rng = np.random.default_rng(2)
        bits = tuple(rng.integers(0, 2, 64))
        wave = enc.encode(bits)
        noisy = wave.with_samples(
            wave.samples + 0.1 * rng.standard_normal(len(wave))
        )
        assert dec.decode(noisy, len(bits)) == bits

    def test_garbage_rejected(self):
        params = TagParams(blf=500e3)
        dec = FM0Decoder(params, FS)
        rng = np.random.default_rng(3)
        garbage = Signal(rng.standard_normal(4000), FS)
        with pytest.raises(EncodingError):
            dec.decode(garbage, 16)

    def test_flat_signal_rejected(self):
        params = TagParams(blf=500e3)
        dec = FM0Decoder(params, FS)
        with pytest.raises(EncodingError):
            dec.decode(Signal.silence(1e-3, FS), 16)

    def test_too_short_rejected(self):
        params = TagParams(blf=500e3)
        enc, dec = FM0Encoder(params, FS), FM0Decoder(params, FS)
        wave = enc.encode((1, 0))
        with pytest.raises(EncodingError):
            dec.decode(wave, 64)

    def test_low_sample_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            FM0Encoder(TagParams(blf=500e3), 1e6)

    def test_encoder_requires_fm0_params(self):
        with pytest.raises(ConfigurationError):
            FM0Encoder(TagParams(blf=500e3, miller_m=4), FS)

    @settings(max_examples=30, deadline=None)
    @given(payloads)
    def test_roundtrip_property(self, bits):
        params = TagParams(blf=500e3)
        enc, dec = FM0Encoder(params, FS), FM0Decoder(params, FS)
        assert dec.decode(enc.encode(bits), len(bits)) == bits


class TestMiller:
    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_roundtrip_all_m(self, m):
        params = TagParams(blf=250e3, miller_m=m)
        enc, dec = MillerEncoder(params, FS), MillerDecoder(params, FS)
        bits = (1, 0, 1, 1, 0, 0, 1, 0)
        assert dec.decode(enc.encode(bits), len(bits)) == bits

    def test_encoder_rejects_fm0(self):
        with pytest.raises(ConfigurationError):
            MillerEncoder(TagParams(blf=500e3, miller_m=1), FS)

    def test_subcarrier_present(self):
        """Miller energy concentrates near the BLF, not at DC."""
        params = TagParams(blf=250e3, miller_m=4)
        enc = MillerEncoder(params, FS)
        wave = enc.encode((1, 0) * 8)
        spectrum = np.abs(np.fft.rfft(np.real(wave.samples) - 0.5))
        freqs = np.fft.rfftfreq(len(wave), 1 / FS)
        peak = freqs[np.argmax(spectrum)]
        assert abs(peak - params.blf) < 50e3

    def test_duration_formula(self):
        params = TagParams(blf=250e3, miller_m=2)
        enc = MillerEncoder(params, FS)
        assert enc.encode((1,) * 8).duration == pytest.approx(
            enc.duration_of(8), rel=0.01
        )

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=32).map(tuple))
    def test_roundtrip_property(self, bits):
        params = TagParams(blf=250e3, miller_m=2)
        enc, dec = MillerEncoder(params, FS), MillerDecoder(params, FS)
        assert dec.decode(enc.encode(bits), len(bits)) == bits
