"""Tests for Gen2 link timing and inventory throughput."""

import pytest

from repro.errors import ConfigurationError
from repro.gen2.backscatter import TagParams
from repro.gen2.commands import Query
from repro.gen2.pie import PIEEncoder, ReaderParams
from repro.gen2.timing import LinkTiming


@pytest.fixture
def timing():
    return LinkTiming(ReaderParams(), TagParams(blf=500e3))


class TestCommandDurations:
    def test_matches_encoded_waveform(self, timing):
        """The analytic airtime must match the actual waveform length."""
        fs = 8e6
        encoder = PIEEncoder(timing.reader, fs)
        bits = Query().to_bits()
        waveform = encoder.encode(bits, preamble=True)
        # Encoder appends a Tari of CW tail after the command.
        expected = timing.command_seconds(bits, preamble=True) + timing.reader.tari
        assert waveform.duration == pytest.approx(expected, rel=0.01)

    def test_query_longer_than_queryrep(self, timing):
        assert timing.query_seconds > timing.query_rep_seconds

    def test_ones_cost_more_than_zeros(self, timing):
        ones = timing.command_seconds((1,) * 16, preamble=False)
        zeros = timing.command_seconds((0,) * 16, preamble=False)
        assert ones > zeros


class TestReplyDurations:
    def test_fm0_matches_encoder(self, timing):
        from repro.gen2.backscatter import FM0Encoder

        encoder = FM0Encoder(timing.tag, 8e6)
        assert timing.reply_seconds(16) == pytest.approx(
            encoder.duration_of(16)
        )

    def test_miller_matches_encoder(self):
        from repro.gen2.backscatter import MillerEncoder

        params = TagParams(blf=500e3, miller_m=4)
        timing = LinkTiming(ReaderParams(), params)
        encoder = MillerEncoder(params, 8e6)
        assert timing.reply_seconds(32) == pytest.approx(
            encoder.duration_of(32)
        )

    def test_epc_reply_longer_than_rn16(self, timing):
        assert timing.epc_reply_seconds > timing.rn16_seconds


class TestThroughput:
    def test_realistic_read_rate(self, timing):
        """Commercial fixed readers singulate a few hundred tags/s."""
        rate = timing.reads_per_second()
        assert 100.0 < rate < 1500.0

    def test_throughput_scales_with_blf(self):
        slow = LinkTiming(ReaderParams(blf=250e3), TagParams(blf=250e3))
        fast = LinkTiming(ReaderParams(blf=500e3), TagParams(blf=500e3))
        assert fast.reads_per_second() > slow.reads_per_second()

    def test_scan_time_for_warehouse(self, timing):
        """The paper's motivation: a full warehouse in hours, not weeks."""
        seconds = timing.scan_seconds(n_tags=100_000)
        assert seconds < 24 * 3600  # under a day of airtime

    def test_validation(self, timing):
        with pytest.raises(ConfigurationError):
            timing.reads_per_second(slot_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            timing.scan_seconds(-1)
        with pytest.raises(ConfigurationError):
            timing.scan_seconds(10, passes=0.5)

    def test_t1_at_least_rtcal(self, timing):
        assert timing.t1_seconds >= timing.reader.rtcal
