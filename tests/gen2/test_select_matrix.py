"""Exhaustive tests of the Select action matrix (Gen2 Table 6.29)."""

import numpy as np
import pytest

from repro.gen2 import Gen2Tag, Select
from repro.gen2.bitops import bits_from_int

MATCHING_EPC = 0xAB << 88  # EPC beginning with 0xAB
MATCHING_MASK = bits_from_int(0xAB, 8)
OTHER_MASK = bits_from_int(0xCD, 8)


def make_tag(selected=False):
    tag = Gen2Tag(bits_from_int(MATCHING_EPC, 96), np.random.default_rng(0))
    tag.selected = selected
    return tag


def apply(tag, action, mask):
    tag.handle(
        Select(target="SL", action=action, membank="EPC", pointer=0x20, mask=mask)
    )
    return tag.selected


class TestSlActionMatrix:
    """Each action's (matching, non-matching) behaviour per the spec:

    action 0: assert / deassert        action 4: deassert / assert
    action 1: assert / nothing         action 5: deassert / nothing
    action 2: nothing / deassert       action 6: nothing / assert
    action 3: toggle / nothing         action 7: nothing / toggle
    """

    @pytest.mark.parametrize(
        "action,start,match_expected",
        [
            (0, False, True), (0, True, True),
            (1, False, True), (1, True, True),
            (2, False, False), (2, True, True),
            (3, False, True), (3, True, False),
            (4, False, False), (4, True, False),
            (5, False, False), (5, True, False),
            (6, False, False), (6, True, True),
            (7, False, False), (7, True, True),
        ],
    )
    def test_matching_tag(self, action, start, match_expected):
        tag = make_tag(selected=start)
        assert apply(tag, action, MATCHING_MASK) == match_expected

    @pytest.mark.parametrize(
        "action,start,nonmatch_expected",
        [
            (0, True, False), (0, False, False),
            (1, True, True), (1, False, False),
            (2, True, False), (2, False, False),
            (3, True, True), (3, False, False),
            (4, True, True), (4, False, True),
            (5, True, True), (5, False, False),
            (6, True, True), (6, False, True),
            (7, True, False), (7, False, True),
        ],
    )
    def test_nonmatching_tag(self, action, start, nonmatch_expected):
        tag = make_tag(selected=start)
        assert apply(tag, action, OTHER_MASK) == nonmatch_expected


class TestSessionTargets:
    @pytest.mark.parametrize("session", ["S0", "S1", "S2", "S3"])
    def test_select_sets_session_flag(self, session):
        tag = make_tag()
        tag.handle(
            Select(
                target=session, action=4, membank="EPC",
                pointer=0x20, mask=MATCHING_MASK,
            )
        )
        # Action 4 deasserts (-> B) on match.
        assert tag.inventoried[session] == "B"
        # Other sessions untouched.
        for other in ("S0", "S1", "S2", "S3"):
            if other != session:
                assert tag.inventoried[other] == "A"

    def test_toggle_action_on_session(self):
        tag = make_tag()
        select = Select(
            target="S1", action=3, membank="EPC", pointer=0x20,
            mask=MATCHING_MASK,
        )
        tag.handle(select)
        assert tag.inventoried["S1"] == "B"
        tag.handle(select)
        assert tag.inventoried["S1"] == "A"
