"""Tests for the reader's PIE modulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import GEN2_BLF_DEFAULT
from repro.errors import ConfigurationError, EncodingError
from repro.gen2 import PIEDecoder, PIEEncoder, ReaderParams
from repro.gen2.pie import DELIMITER_SECONDS

FS = 4e6


@pytest.fixture
def codec():
    params = ReaderParams()
    return PIEEncoder(params, FS), PIEDecoder(FS)


class TestReaderParams:
    def test_defaults_are_consistent(self):
        p = ReaderParams()
        assert p.rtcal == pytest.approx(3 * p.tari)
        assert p.trcal == pytest.approx((64.0 / 3.0) / GEN2_BLF_DEFAULT)
        assert 1.1 * p.rtcal <= p.trcal <= 3.0 * p.rtcal

    def test_tari_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            ReaderParams(tari=1e-6)
        with pytest.raises(ConfigurationError):
            ReaderParams(tari=50e-6)

    def test_data1_factor_bounds(self):
        with pytest.raises(ConfigurationError):
            ReaderParams(data1_factor=1.2)

    def test_trcal_consistency_enforced(self):
        # Tari 25 us makes RTcal 75 us; TRcal for 640 kHz BLF is 33 us,
        # below 1.1 * RTcal -> invalid combination.
        with pytest.raises(ConfigurationError):
            ReaderParams(tari=25e-6, blf=640e3)

    def test_modulation_depth_bounds(self):
        with pytest.raises(ConfigurationError):
            ReaderParams(modulation_depth=0.0)
        with pytest.raises(ConfigurationError):
            ReaderParams(modulation_depth=1.5)


class TestEncode:
    def test_waveform_levels(self, codec):
        enc, _ = codec
        sig = enc.encode((1, 0, 1), preamble=False)
        env = np.abs(sig.samples)
        assert np.max(env) == pytest.approx(1.0)
        assert np.min(env) == pytest.approx(1.0 - enc.params.modulation_depth)

    def test_starts_with_delimiter(self, codec):
        enc, _ = codec
        sig = enc.encode((1,), preamble=False)
        n_delim = int(round(DELIMITER_SECONDS * FS))
        low = 1.0 - enc.params.modulation_depth
        np.testing.assert_allclose(np.abs(sig.samples[:n_delim]), low)

    def test_preamble_longer_than_framesync(self, codec):
        enc, _ = codec
        with_preamble = enc.encode((1, 0), preamble=True)
        frame_sync = enc.encode((1, 0), preamble=False)
        trcal_samples = int(round(enc.params.trcal * FS))
        assert len(with_preamble) - len(frame_sync) == pytest.approx(
            trcal_samples, abs=2
        )

    def test_empty_command_rejected(self, codec):
        enc, _ = codec
        with pytest.raises(EncodingError):
            enc.encode((), preamble=False)

    def test_low_sample_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            PIEEncoder(ReaderParams(), 100e3)


class TestDecode:
    def test_roundtrip_with_preamble(self, codec):
        enc, dec = codec
        bits = (1, 0, 0, 0, 1, 1, 0, 1)
        decoded, preamble, trcal = dec.decode(enc.encode(bits, preamble=True))
        assert decoded == bits
        assert preamble
        assert trcal == pytest.approx(enc.params.trcal, rel=0.02)

    def test_roundtrip_frame_sync(self, codec):
        enc, dec = codec
        bits = (0, 1, 1, 0)
        decoded, preamble, trcal = dec.decode(enc.encode(bits, preamble=False))
        assert decoded == bits
        assert not preamble
        assert trcal == 0.0

    def test_blf_recovered_from_trcal(self, codec):
        enc, dec = codec
        _, _, trcal = dec.decode(enc.encode((1, 0), preamble=True))
        blf = dec.blf_from_trcal(trcal)
        assert blf == pytest.approx(GEN2_BLF_DEFAULT, rel=0.02)

    def test_decode_with_scaling_and_phase(self, codec):
        """The tag decodes from the envelope: complex gain is irrelevant."""
        enc, dec = codec
        bits = (1, 1, 0, 1, 0, 0)
        sig = enc.encode(bits, preamble=True).scaled(0.02 * np.exp(1j * 1.234))
        decoded, _, _ = dec.decode(sig)
        assert decoded == bits

    def test_decode_alternative_tari(self):
        params = ReaderParams(tari=6.25e-6, blf=640e3)
        enc = PIEEncoder(params, FS)
        dec = PIEDecoder(FS)
        bits = (1, 0, 1, 1, 0)
        decoded, preamble, trcal = dec.decode(enc.encode(bits, preamble=True))
        assert decoded == bits
        assert dec.blf_from_trcal(trcal) == pytest.approx(640e3, rel=0.05)

    def test_unmodulated_signal_rejected(self, codec):
        _, dec = codec
        from repro.dsp import tone

        with pytest.raises(EncodingError):
            dec.decode(tone(0.0, 1e-3, FS))

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
    def test_roundtrip_property(self, bits):
        enc = PIEEncoder(ReaderParams(), FS)
        dec = PIEDecoder(FS)
        decoded, _, _ = dec.decode(enc.encode(tuple(bits), preamble=True))
        assert decoded == tuple(bits)
