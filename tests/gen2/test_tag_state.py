"""Tests for the tag inventory state machine."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.gen2 import Ack, Gen2Tag, Nak, Query, QueryAdjust, QueryRep, Select, TagState
from repro.gen2.bitops import bits_from_int
from repro.gen2.crc import check_crc16
from repro.gen2.tag_state import EpcReply, Rn16Reply


def make_tag(epc_value=0xABCDEF, seed=0):
    return Gen2Tag(bits_from_int(epc_value, 96), np.random.default_rng(seed))


class TestBasics:
    def test_epc_must_be_word_aligned(self):
        with pytest.raises(ProtocolError):
            Gen2Tag((1, 0, 1), np.random.default_rng(0))

    def test_pc_encodes_epc_length(self):
        tag = make_tag()
        assert tag.pc >> 11 == 6  # 96 bits = 6 words

    def test_unknown_command_rejected(self):
        with pytest.raises(ProtocolError):
            make_tag().handle("bogus")


class TestQueryAndSlots:
    def test_q0_replies_immediately(self):
        tag = make_tag()
        reply = tag.handle(Query(q=0))
        assert isinstance(reply, Rn16Reply)
        assert tag.state == TagState.REPLY

    def test_nonzero_slot_arbitrates(self):
        # Find a seed where the first draw is nonzero.
        tag = make_tag(seed=1)
        reply = tag.handle(Query(q=8))
        if reply is None:
            assert tag.state == TagState.ARBITRATE
            assert tag.slot > 0
        else:
            assert tag.state == TagState.REPLY

    def test_queryrep_counts_down_to_reply(self):
        tag = make_tag(seed=3)
        reply = tag.handle(Query(q=4))
        hops = 0
        while reply is None and hops < 100:
            reply = tag.handle(QueryRep())
            hops += 1
        assert isinstance(reply, Rn16Reply)
        assert hops == pytest.approx(tag.slot + hops)  # slot reached zero

    def test_wrong_session_queryrep_ignored(self):
        tag = make_tag(seed=3)
        tag.handle(Query(q=4, session="S1"))
        slot_before = tag.slot
        tag.handle(QueryRep(session="S2"))
        assert tag.slot == slot_before

    def test_nonmatching_target_stays_ready(self):
        tag = make_tag()
        tag.inventoried["S0"] = "B"
        assert tag.handle(Query(q=0, target="A")) is None
        assert tag.state == TagState.READY


class TestAckHandshake:
    def test_full_handshake_returns_epc(self):
        tag = make_tag(epc_value=0x123456789)
        rn16 = tag.handle(Query(q=0))
        epc_reply = tag.handle(Ack(rn16=rn16.rn16))
        assert isinstance(epc_reply, EpcReply)
        payload = check_crc16(epc_reply.bits)
        assert payload[16:] == tag.epc
        assert tag.state == TagState.ACKNOWLEDGED

    def test_wrong_rn16_returns_to_arbitrate(self):
        tag = make_tag()
        rn16 = tag.handle(Query(q=0))
        assert tag.handle(Ack(rn16=rn16.rn16 ^ 0x1)) is None
        assert tag.state == TagState.ARBITRATE

    def test_ack_in_ready_ignored(self):
        tag = make_tag()
        assert tag.handle(Ack(rn16=0)) is None
        assert tag.state == TagState.READY

    def test_acknowledged_tag_toggles_flag_on_next_round(self):
        tag = make_tag()
        rn16 = tag.handle(Query(q=0))
        tag.handle(Ack(rn16=rn16.rn16))
        assert tag.inventoried["S0"] == "A"
        tag.handle(QueryRep())  # end of participation
        assert tag.inventoried["S0"] == "B"
        # It no longer matches target A queries.
        assert tag.handle(Query(q=0, target="A")) is None

    def test_acknowledged_tag_toggles_on_new_query(self):
        tag = make_tag()
        rn16 = tag.handle(Query(q=0))
        tag.handle(Ack(rn16=rn16.rn16))
        tag.handle(Query(q=0))  # new round: toggle then evaluate
        assert tag.inventoried["S0"] == "B"


class TestNakAndAdjust:
    def test_nak_returns_to_arbitrate(self):
        tag = make_tag()
        tag.handle(Query(q=0))
        tag.handle(Nak())
        assert tag.state == TagState.ARBITRATE

    def test_nak_in_ready_is_noop(self):
        tag = make_tag()
        tag.handle(Nak())
        assert tag.state == TagState.READY

    def test_query_adjust_redraws(self):
        tag = make_tag(seed=5)
        tag.handle(Query(q=4))
        before_q = tag._q
        tag.handle(QueryAdjust(updn=1))
        assert tag._q == before_q + 1
        assert tag.state in (TagState.ARBITRATE, TagState.REPLY)

    def test_query_adjust_clamps_q(self):
        tag = make_tag()
        tag.handle(Query(q=15))
        tag.handle(QueryAdjust(updn=1))
        assert tag._q == 15

    def test_query_adjust_ignored_in_ready(self):
        tag = make_tag()
        assert tag.handle(QueryAdjust(updn=1)) is None
        assert tag.state == TagState.READY


class TestSelect:
    def test_select_asserts_sl_on_match(self):
        tag = make_tag(epc_value=0xFF << 88)  # EPC starts with 0xFF
        mask = bits_from_int(0xFF, 8)
        tag.handle(Select(target="SL", action=0, membank="EPC", pointer=0x20, mask=mask))
        assert tag.selected

    def test_select_deasserts_on_mismatch(self):
        tag = make_tag(epc_value=0)
        tag.selected = True
        mask = bits_from_int(0xFF, 8)
        tag.handle(Select(target="SL", action=0, membank="EPC", pointer=0x20, mask=mask))
        assert not tag.selected

    def test_select_session_flag(self):
        tag = make_tag(epc_value=0xAB << 88)
        mask = bits_from_int(0xAB, 8)
        tag.handle(Select(target="S2", action=4, membank="EPC", pointer=0x20, mask=mask))
        # Action 4: non-matching assert; matching deassert -> B.
        assert tag.inventoried["S2"] == "B"

    def test_selected_tag_excluded_by_sel2(self):
        tag = make_tag()
        tag.selected = True
        assert tag.handle(Query(q=0, sel=2)) is None

    def test_unselected_tag_excluded_by_sel3(self):
        tag = make_tag()
        assert tag.handle(Query(q=0, sel=3)) is None

    def test_select_outside_epc_never_matches(self):
        tag = make_tag()
        mask = bits_from_int(0, 8)
        tag.handle(
            Select(target="SL", action=0, membank="EPC", pointer=0xF0, mask=mask)
        )
        assert not tag.selected


class TestPowerReset:
    def test_reset_clears_round_state(self):
        tag = make_tag()
        rn16 = tag.handle(Query(q=0))
        tag.handle(Ack(rn16=rn16.rn16))
        tag.handle(QueryRep())  # toggles S0 to B
        tag.power_reset()
        assert tag.state == TagState.READY
        assert tag.inventoried["S0"] == "A"
