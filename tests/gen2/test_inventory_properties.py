"""Property-based tests of the inventory MAC."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gen2 import Gen2Tag, run_inventory
from repro.gen2.bitops import bits_from_int


def population(n, seed):
    rng = np.random.default_rng(seed)
    epcs = rng.choice(2**32, size=n, replace=False)
    return [
        Gen2Tag(bits_from_int(int(e), 96), np.random.default_rng(seed + 1 + i))
        for i, e in enumerate(epcs)
    ]


@settings(max_examples=12, deadline=None)
@given(st.integers(1, 40), st.integers(0, 2**20), st.integers(0, 4))
def test_inventory_is_complete_and_duplicate_free(n, seed, q0):
    """Any population is fully read, each tag exactly once per pass."""
    tags = population(n, seed)
    result = run_inventory(
        tags, np.random.default_rng(seed ^ 0xABC), initial_q=q0
    )
    assert sorted(result.epcs) == sorted(t.epc_int for t in tags)
    assert len(result.epcs) == len(set(result.epcs))


@settings(max_examples=8, deadline=None)
@given(st.integers(2, 25), st.integers(0, 2**20))
def test_all_flags_toggled_after_pass(n, seed):
    """After a target-A pass every read tag carries flag B."""
    tags = population(n, seed)
    run_inventory(tags, np.random.default_rng(seed + 7), target="A")
    assert all(t.inventoried["S0"] == "B" for t in tags)


@settings(max_examples=8, deadline=None)
@given(
    st.integers(2, 20),
    st.integers(0, 2**20),
    st.sampled_from(["S1", "S2", "S3"]),
)
def test_sessions_are_independent(n, seed, session):
    """Inventorying one session leaves the others' flags untouched."""
    tags = population(n, seed)
    result = run_inventory(
        tags, np.random.default_rng(seed + 13), session=session
    )
    assert len(result.epcs) == n
    for tag in tags:
        assert tag.inventoried[session] == "B"
        for other in ("S0", "S1", "S2", "S3"):
            if other != session:
                assert tag.inventoried[other] == "A"


@settings(max_examples=6, deadline=None)
@given(st.integers(5, 30), st.integers(0, 2**20))
def test_commands_scale_reasonably(n, seed):
    """The MAC converges: commands stay within a small multiple of the
    population size (Q-adaptation prevents collision collapse)."""
    tags = population(n, seed)
    result = run_inventory(tags, np.random.default_rng(seed + 3), initial_q=4)
    assert result.commands_sent < 40 * n + 200
