"""Tests for CRC-5/CRC-16 and bit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CRCError, EncodingError
from repro.gen2.bitops import (
    bits_from_int,
    bits_to_int,
    bits_to_str,
    hamming_distance,
    validate_bits,
)
from repro.gen2.crc import (
    append_crc16,
    check_crc5,
    check_crc16,
    crc5,
    crc16,
)

bit_vectors = st.lists(st.integers(0, 1), min_size=1, max_size=128).map(tuple)


class TestBitops:
    def test_roundtrip_known(self):
        assert bits_from_int(0b1011, 4) == (1, 0, 1, 1)
        assert bits_to_int((1, 0, 1, 1)) == 0b1011

    def test_width_zero(self):
        assert bits_from_int(0, 0) == ()

    def test_overflow_rejected(self):
        with pytest.raises(EncodingError):
            bits_from_int(16, 4)
        with pytest.raises(EncodingError):
            bits_from_int(-1, 4)

    def test_non_binary_rejected(self):
        with pytest.raises(EncodingError):
            validate_bits((0, 1, 2))

    def test_bits_to_str(self):
        assert bits_to_str((1, 0, 1)) == "101"

    def test_hamming(self):
        assert hamming_distance((1, 0, 1), (1, 1, 1)) == 1
        with pytest.raises(EncodingError):
            hamming_distance((1, 0), (1,))

    @given(st.integers(0, 2**32 - 1))
    def test_int_roundtrip(self, value):
        assert bits_to_int(bits_from_int(value, 32)) == value


class TestCrc5:
    def test_length(self):
        assert len(crc5((1, 0, 1))) == 5

    def test_check_accepts_valid(self):
        payload = (1, 0, 0, 0, 1, 0, 1, 0, 1, 1, 0, 1, 0, 1, 0, 1, 1)
        assert check_crc5(payload + crc5(payload)) == payload

    def test_check_rejects_flipped_bit(self):
        payload = (1, 0, 0, 0, 1, 0, 1, 0)
        frame = list(payload + crc5(payload))
        frame[3] ^= 1
        with pytest.raises(CRCError):
            check_crc5(tuple(frame))

    def test_short_frame_rejected(self):
        with pytest.raises(CRCError):
            check_crc5((1, 0, 1))

    @given(bit_vectors)
    def test_roundtrip_property(self, payload):
        assert check_crc5(payload + crc5(payload)) == payload

    @given(bit_vectors, st.integers(0, 200))
    def test_single_bit_errors_detected(self, payload, position):
        frame = list(payload + crc5(payload))
        frame[position % len(frame)] ^= 1
        with pytest.raises(CRCError):
            check_crc5(tuple(frame))


class TestCrc16:
    def test_known_vector(self):
        """CRC-16/CCITT-FALSE of ASCII '123456789' is 0x29B1.

        Gen2 appends the complement, so the appended bits are ~0x29B1.
        """
        data = b"123456789"
        bits = tuple(
            (byte >> (7 - i)) & 1 for byte in data for i in range(8)
        )
        out = bits_to_int(crc16(bits))
        assert out == (0x29B1 ^ 0xFFFF)

    def test_append_and_check(self):
        payload = tuple([1, 0] * 48)
        assert check_crc16(append_crc16(payload)) == payload

    def test_corruption_detected(self):
        frame = list(append_crc16(tuple([1, 0] * 48)))
        frame[10] ^= 1
        with pytest.raises(CRCError):
            check_crc16(tuple(frame))

    def test_short_frame_rejected(self):
        with pytest.raises(CRCError):
            check_crc16((1,) * 15)

    @given(bit_vectors)
    def test_roundtrip_property(self, payload):
        assert check_crc16(append_crc16(payload)) == payload

    @given(bit_vectors, st.integers(0, 500))
    def test_single_bit_errors_detected(self, payload, position):
        frame = list(append_crc16(payload))
        frame[position % len(frame)] ^= 1
        with pytest.raises(CRCError):
            check_crc16(tuple(frame))

    @given(bit_vectors, st.data())
    def test_burst_errors_detected(self, payload, data):
        """CRC-16 detects all burst errors up to 16 bits long."""
        frame = list(append_crc16(payload))
        start = data.draw(st.integers(0, len(frame) - 1))
        length = data.draw(st.integers(1, min(16, len(frame) - start)))
        pattern = data.draw(
            st.lists(st.integers(0, 1), min_size=length, max_size=length)
        )
        if not any(pattern):
            pattern[0] = 1
        for i, p in enumerate(pattern):
            frame[start + i] ^= p
        with pytest.raises(CRCError):
            check_crc16(tuple(frame))
