"""Shared pytest configuration for the unit/integration test suite."""

from hypothesis import HealthCheck, settings

# One deterministic, CI-friendly profile: generous deadline headroom for
# the waveform-synthesizing property tests, no flaky time-based failures.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


def pytest_addoption(parser):
    """Register the golden-file regeneration flag.

    ``pytest tests/experiments/test_golden.py --update-golden`` rewrites
    every golden table from the current code instead of comparing.
    """
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/experiments/golden/*.txt from current outputs",
    )
