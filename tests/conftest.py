"""Shared pytest configuration for the unit/integration test suite."""

from hypothesis import HealthCheck, settings

# One deterministic, CI-friendly profile: generous deadline headroom for
# the waveform-synthesizing property tests, no flaky time-based failures.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")
