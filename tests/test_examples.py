"""The examples must run end-to-end (they carry their own assertions)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "relay_bringup.py",
        "multireader_warehouse.py",
        "swarm_and_selfloc.py",
    ],
)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 50  # each example narrates its results


@pytest.mark.slow
def test_warehouse_inventory_runs(capsys):
    runpy.run_path(str(EXAMPLES / "warehouse_inventory.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "cataloged items" in out
