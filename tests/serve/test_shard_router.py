"""Consistent-hash ring properties: purity, stability, bounded churn.

The ring's contract is deterministic, not statistical: a key's route
is a pure function of ``(shard_ids, replicas, key)``; removing a shard
leaves every other shard's keys exactly where they were (only the
removed shard's keys remigrate); and routing survives process
boundaries — notably differing ``PYTHONHASHSEED`` values, the failure
mode builtin ``hash()`` routing would hit (reprolint O503).
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.serve import ShardConfig, ShardRing

session_ids = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=24,
)


@given(sid=session_ids, n_shards=st.integers(1, 12))
@settings(max_examples=50, deadline=None)
def test_routing_is_pure(sid, n_shards):
    """Same inputs, same route — across independent ring instances."""
    first = ShardRing(n_shards).route(sid)
    second = ShardRing(n_shards).route(sid)
    assert first == second
    assert first in ShardRing(n_shards).shard_ids


@given(
    sids=st.lists(session_ids, min_size=1, max_size=60, unique=True),
    n_shards=st.integers(2, 8),
    victim=st.integers(0, 7),
)
@settings(max_examples=30, deadline=None)
def test_removal_only_remigrates_the_removed_shard(sids, n_shards, victim):
    """The consistent-hashing property, exactly (not statistically)."""
    ring = ShardRing(n_shards)
    removed = ring.shard_ids[victim % n_shards]
    shrunk = ring.without(removed)
    for sid in sids:
        before = ring.route(sid)
        after = shrunk.route(sid)
        if before == removed:
            assert after != removed
        else:
            assert after == before


@given(
    sids=st.lists(session_ids, min_size=1, max_size=60, unique=True),
    n_shards=st.integers(1, 8),
)
@settings(max_examples=30, deadline=None)
def test_adding_a_shard_only_steals_keys(sids, n_shards):
    """Scale-out moves keys only *onto* the new shard, never sideways."""
    ring = ShardRing(n_shards)
    grown = ring.with_shard("shard-new")
    for sid in sids:
        before = ring.route(sid)
        after = grown.route(sid)
        assert after in (before, "shard-new")


def test_remigration_fraction_is_about_one_over_m():
    """Dropping 1 of M shards strands ~1/M of a large keyspace."""
    keys = [f"tag-{index:05d}" for index in range(4000)]
    for n_shards in (2, 4, 8):
        ring = ShardRing(n_shards)
        shrunk = ring.without(ring.shard_ids[0])
        moved = sum(
            1 for key in keys if ring.route(key) != shrunk.route(key)
        )
        fraction = moved / len(keys)
        # The moved set is exactly the removed shard's keys; vnode
        # placement noise keeps it near 1/M but not at it.
        assert fraction <= 2.5 / n_shards
        assert fraction >= 0.25 / n_shards


def test_ring_is_reasonably_balanced():
    """64 vnodes/shard keep every shard within ~3x of its fair share."""
    keys = [f"tag-{index:05d}" for index in range(4000)]
    ring = ShardRing(8)
    table = ring.table(keys)
    for shard_id in ring.shard_ids:
        owned = sum(1 for assigned in table.values() if assigned == shard_id)
        assert 0 < owned <= 3 * len(keys) / 8


def test_routing_survives_hash_seed_changes():
    """Routes computed under a different PYTHONHASHSEED are identical.

    This is exactly what builtin ``hash()``-based placement breaks:
    str hashing is salted per process, so a pool worker would route
    the same session to a different shard than its parent.
    """
    keys = [f"tag-{index:03d}" for index in range(40)]
    local = [ShardRing(4).route(key) for key in keys]
    script = (
        "from repro.serve import ShardRing\n"
        "ring = ShardRing(4)\n"
        f"print(','.join(ring.route(f'tag-{{i:03d}}') for i in range({len(keys)})))\n"
    )
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "271828"
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, "-c", script],
        check=True,
        capture_output=True,
        text=True,
        env=env,
    ).stdout.strip()
    assert output.split(",") == local


def test_ring_validation():
    with pytest.raises(ConfigurationError):
        ShardRing(0)
    with pytest.raises(ConfigurationError):
        ShardRing([])
    with pytest.raises(ConfigurationError):
        ShardRing(["a", "a"])
    with pytest.raises(ConfigurationError):
        ShardRing(2, replicas=0)
    with pytest.raises(ConfigurationError):
        ShardRing(2).without("nope")
    with pytest.raises(ConfigurationError):
        ShardRing(2).with_shard("shard-00")


def test_shard_config_validation():
    assert ShardConfig().shard_ids() == ("shard-00",)
    assert ShardConfig(n_shards=3).ring().shard_ids == (
        "shard-00",
        "shard-01",
        "shard-02",
    )
    with pytest.raises(ConfigurationError):
        ShardConfig(n_shards=0)
    with pytest.raises(ConfigurationError):
        ShardConfig(replicas=0)
    with pytest.raises(ConfigurationError):
        ShardConfig(backend="threads")
    with pytest.raises(ConfigurationError):
        ShardConfig(max_workers=0)
