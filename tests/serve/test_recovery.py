"""Recovery policies under injected faults: retry, reacquire, restore.

Every rung of the service's recovery ladder, driven end to end through
:mod:`repro.faults` plans: bounded deterministic-backoff retries against
ingest faults, the reference-reacquisition window that escalates to a
typed :class:`ReferenceLostError`, and checkpoint-restore of killed
sessions — with the accounting (``recoveries``, ``updates_rejected``,
``updates_lost``, ``session_data_loss``) checked at each step.
"""

from __future__ import annotations

import tempfile

import numpy as np
import pytest

from repro import faults
from repro.constants import UHF_CENTER_FREQUENCY
from repro.errors import ReferenceLostError, SessionNotFoundError
from repro.faults import FaultPlan, FaultSpec, Trigger
from repro.localization import Grid2D
from repro.localization.measurement import (
    MeasurementModel,
    ThroughRelayMeasurement,
)
from repro.mobility.trajectory import LineTrajectory
from repro.runtime.cache import ResultCache
from repro.serve import Admission, LocalizationService, ServeConfig

F = UHF_CENTER_FREQUENCY
TAG = np.array([1.4, 1.2])


def make_measurements(n=24, seed=0):
    rng = np.random.default_rng(seed)
    model = MeasurementModel(
        reader_position=(-8.0, 0.0), reader_frequency_hz=F
    )
    samples = LineTrajectory((0.0, 0.0), (2.5, 0.0)).sample_every(
        2.5 / (n - 1)
    )
    return [
        model.measure(
            sample.position, TAG, rng=rng, snr_db=30.0, time=sample.time
        )
        for sample in samples
    ]


def dead_reference(m):
    return ThroughRelayMeasurement(
        position=m.position,
        h_target=m.h_target,
        h_reference=0.0 + 0.0j,
        snr_db=m.snr_db,
    )


def dead_tag(m):
    return ThroughRelayMeasurement(
        position=m.position,
        h_target=0.0 + 0.0j,
        h_reference=m.h_reference,
        snr_db=m.snr_db,
    )


def make_service(cache=None, **overrides):
    params = {"frequency_hz": F, **overrides}
    return LocalizationService(ServeConfig(**params), cache=cache)


def make_grid():
    return Grid2D(-0.5, 3.0, 0.2, 2.5, 0.15)


class TestIngestRetry:
    def test_transient_drops_recovered_within_budget(self):
        service = make_service(ingest_retries=2)
        service.open_session("a", make_grid())
        m = make_measurements(2)[0]
        plan = FaultPlan.single("serve.ingest", "drop", max_injections=2)
        with faults.engaged(plan):
            admission = service.submit("a", m, now_s=0.0)
        assert admission is Admission.ACCEPTED
        report = service.report()
        assert report.recoveries == 1
        assert report.updates_rejected == 0
        # Deterministic exponential backoff: 5 ms, then 10 ms.
        assert report.mean_recovery_latency_s == pytest.approx(0.015)

    def test_exhausted_retries_reject_loudly(self):
        service = make_service(ingest_retries=2)
        service.open_session("a", make_grid())
        m = make_measurements(2)[0]
        plan = FaultPlan.single("serve.ingest", "drop")  # every attempt
        with faults.engaged(plan):
            admission = service.submit("a", m, now_s=0.0)
        assert admission is Admission.REJECTED
        report = service.report()
        assert report.updates_rejected == 1
        assert report.recoveries == 0
        assert service.session_data_loss("a") == 1

    def test_injected_stall_charges_the_virtual_server(self):
        service = make_service()
        service.open_session("a", make_grid())
        m = make_measurements(2)[0]
        plan = FaultPlan.single(
            "serve.ingest", "stall", magnitude=0.5, max_injections=1
        )
        with faults.engaged(plan):
            assert service.submit("a", m, now_s=0.0) is Admission.ACCEPTED
        assert service.backlog_s >= 0.5


class TestReferenceOutage:
    def test_undecodable_reference_rejected_within_window(self):
        service = make_service(reference_timeout_s=0.1)
        service.open_session("a", make_grid())
        m = make_measurements(2)[0]
        assert service.submit("a", dead_reference(m), now_s=0.0) is (
            Admission.REJECTED
        )
        report = service.report()
        assert report.updates_rejected == 1
        assert service.session_data_loss("a") == 1

    def test_sustained_outage_escalates_to_typed_error(self):
        service = make_service(reference_timeout_s=0.05)
        service.open_session("a", make_grid())
        m = make_measurements(2)[0]
        service.submit("a", dead_reference(m), now_s=0.0)
        with pytest.raises(ReferenceLostError):
            service.submit("a", dead_reference(m), now_s=0.2)

    def test_reacquisition_closes_the_outage_and_counts_recovery(self):
        service = make_service(reference_timeout_s=1.0)
        service.open_session("a", make_grid())
        first, second = make_measurements(3)[:2]
        service.submit("a", dead_reference(first), now_s=0.0)
        assert service.submit("a", second, now_s=0.03) is Admission.ACCEPTED
        report = service.report()
        assert report.recoveries == 1
        assert report.mean_recovery_latency_s == pytest.approx(0.03)

    def test_dead_tag_halflink_rejected_not_folded_in(self):
        # Reference decodes, tag does not: a zero channel would silently
        # bias the SAR sum, so ingest refuses it.
        service = make_service()
        service.open_session("a", make_grid())
        m = make_measurements(2)[0]
        assert service.submit("a", dead_tag(m), now_s=0.0) is (
            Admission.REJECTED
        )
        assert service.session_data_loss("a") == 1


class TestServiceKill:
    def kill_plan(self):
        return FaultPlan.single(
            "serve.session", "reboot", trigger=Trigger(kind="nth_call", n=0)
        )

    def test_kill_without_cache_loses_the_session(self):
        service = make_service()
        service.open_session("a", make_grid())
        measurements = make_measurements(6)
        for m in measurements[:3]:
            service.submit("a", m, now_s=m.time)
        with faults.engaged(self.kill_plan()):
            service.step()
        with pytest.raises(SessionNotFoundError):
            service.submit("a", measurements[3], now_s=measurements[3].time)

    def test_kill_with_cache_restores_and_counts_recovery(self):
        with tempfile.TemporaryDirectory() as tmp:
            service = make_service(cache=ResultCache(tmp))
            service.open_session("a", make_grid())
            measurements = make_measurements(24)
            for m in measurements[:12]:
                service.submit("a", m, now_s=m.time)
            service.drain()
            # Three updates sit pending when the kill lands: they are
            # lost (counted), the accumulators survive via checkpoint.
            for m in measurements[12:15]:
                service.submit("a", m, now_s=m.time)
            with faults.engaged(self.kill_plan()):
                service.step()
            assert service.report().updates_lost == 3
            assert service.session_data_loss("a") == 3
            for m in measurements[15:]:
                assert (
                    service.submit("a", m, now_s=m.time)
                    is Admission.ACCEPTED
                )
            service.drain()
            report = service.report()
            assert report.recoveries == 1
            assert report.mean_recovery_latency_s >= 0.0
            result = service.finalize("a")
            assert float(np.linalg.norm(result.position - TAG)) < 0.5


class TestAdmissionContract:
    def test_rejected_is_a_distinct_admission_outcome(self):
        assert Admission.REJECTED is not Admission.ACCEPTED
        assert Admission.REJECTED is not Admission.SHED
        assert Admission.REJECTED.value == "rejected"

    def test_shed_updates_flag_the_session_degraded(self):
        service = make_service(queue_capacity=1)
        service.open_session("a", make_grid())
        measurements = make_measurements(4)
        outcomes = [
            service.submit("a", m, now_s=0.0) for m in measurements[:3]
        ]
        assert Admission.SHED in outcomes
        assert service.session_data_loss("a") == outcomes.count(
            Admission.SHED
        )
