"""ServeConfig validation, the cost model, and the virtual clock."""

import pytest

from repro.constants import UHF_CENTER_FREQUENCY
from repro.errors import ConfigurationError
from repro.serve import ServeConfig, VirtualClock

F = UHF_CENTER_FREQUENCY


class TestServeConfig:
    def test_defaults_are_valid(self):
        config = ServeConfig(frequency_hz=F)
        assert config.latency_slo_s == 0.25
        assert config.queue_capacity == 128

    def test_degrade_threshold_defaults_to_half_the_slo(self):
        config = ServeConfig(frequency_hz=F, latency_slo_s=0.4)
        assert config.degrade_after_s == pytest.approx(0.2)
        assert config.degrade_threshold_s == pytest.approx(0.2)

    def test_explicit_degrade_threshold_wins(self):
        config = ServeConfig(frequency_hz=F, degrade_after_s=0.05)
        assert config.degrade_threshold_s == pytest.approx(0.05)

    def test_batch_cost_is_overhead_plus_rate(self):
        config = ServeConfig(
            frequency_hz=F,
            service_rate_nodes_per_s=1e6,
            batch_overhead_s=0.002,
        )
        assert config.batch_cost_s(0) == pytest.approx(0.002)
        assert config.batch_cost_s(500_000) == pytest.approx(0.502)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"frequency_hz": 0.0},
            {"latency_slo_s": 0.0},
            {"degrade_after_s": -1.0},
            {"queue_capacity": 0},
            {"max_batch_poses": 0},
            {"catchup_poses": -1},
            {"service_rate_nodes_per_s": 0.0},
            {"batch_overhead_s": -0.1},
            {"degraded_resolution_factor": 0.5},
            {"session_ttl_s": 0.0},
            {"max_sessions": 0},
        ],
    )
    def test_invalid_parameters_are_rejected(self, overrides):
        params = {"frequency_hz": F, **overrides}
        with pytest.raises(ConfigurationError):
            ServeConfig(**params)


class TestVirtualClock:
    def test_starts_where_told(self):
        assert VirtualClock(5.0).now_s == 5.0

    def test_advances_forward(self):
        clock = VirtualClock()
        assert clock.advance_to(2.5) == 2.5
        assert clock.now_s == 2.5

    def test_never_rewinds(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        assert clock.advance_to(1.0) == 3.0
        assert clock.now_s == 3.0
