"""Traffic generation and workload replay: determinism and the CLI."""

import json

import numpy as np
import pytest

from repro.constants import UHF_CENTER_FREQUENCY
from repro.errors import ConfigurationError
from repro.serve import ServeConfig, generate_workload, run_workload
from repro.serve.__main__ import main

F = UHF_CENTER_FREQUENCY


def small_workload(seed=0, load=1.0):
    return generate_workload(
        n_tags=2, seed=seed, load=load, grid_resolution=0.2
    )


class TestGenerateWorkload:
    def test_parameters_are_validated(self):
        with pytest.raises(ConfigurationError):
            generate_workload(n_tags=0)
        with pytest.raises(ConfigurationError):
            generate_workload(load=0.0)

    def test_same_seed_same_stream(self):
        a = small_workload(seed=7)
        b = small_workload(seed=7)
        assert len(a.events) == len(b.events)
        for ea, eb in zip(a.events, b.events):
            assert ea.time_s == eb.time_s
            assert ea.session_id == eb.session_id
            np.testing.assert_array_equal(
                ea.measurement.h_target, eb.measurement.h_target
            )

    def test_different_seeds_differ(self):
        a = small_workload(seed=0)
        b = small_workload(seed=1)
        assert not np.allclose(
            a.tag_positions["tag-0001"], b.tag_positions["tag-0001"]
        )

    def test_load_compresses_the_timeline(self):
        slow = small_workload(load=1.0)
        fast = small_workload(load=4.0)
        assert fast.duration_s == pytest.approx(slow.duration_s / 4.0)
        assert fast.events[-1].time_s == pytest.approx(
            slow.events[-1].time_s / 4.0
        )

    def test_events_are_time_ordered(self):
        workload = small_workload()
        times = [e.time_s for e in workload.events]
        assert times == sorted(times)

    def test_gen2_mac_never_reads_more_than_the_powered_set(self):
        with_mac = generate_workload(
            n_tags=3, seed=0, grid_resolution=0.2, use_gen2_mac=True
        )
        without = generate_workload(
            n_tags=3, seed=0, grid_resolution=0.2, use_gen2_mac=False
        )
        # The MAC singulates from the powered set, so it can only thin
        # the stream (with few tags and many slots it reads them all).
        assert len(with_mac.events) <= len(without.events)

    def test_powering_range_gates_reads(self):
        near = generate_workload(
            n_tags=3, seed=0, grid_resolution=0.2, powering_range_m=10.0
        )
        far = generate_workload(
            n_tags=3, seed=0, grid_resolution=0.2, powering_range_m=0.5
        )
        assert len(far.events) < len(near.events)


class TestRunWorkload:
    def test_replay_is_deterministic(self):
        config = ServeConfig(frequency_hz=F)
        a = run_workload(small_workload(), config)
        b = run_workload(small_workload(), config)
        assert a.service == b.service
        assert a.throughput_per_s == b.throughput_per_s
        for sid in a.estimates:
            np.testing.assert_array_equal(a.estimates[sid], b.estimates[sid])

    def test_light_load_localizes_every_tag(self):
        report = run_workload(
            small_workload(), ServeConfig(frequency_hz=F)
        )
        assert report.shed_fraction == 0.0
        assert len(report.estimates) == 2
        assert all(err < 0.5 for err in report.errors_m.values())


class TestCli:
    def test_smoke_run_writes_obs_artifacts(self, tmp_path, capsys):
        obs_dir = tmp_path / "obs"
        exit_code = main(["--smoke", "--obs-dir", str(obs_dir)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "online localization service" in out
        assert "p99 latency" in out
        trace = obs_dir / "serve.trace.jsonl"
        metrics = obs_dir / "serve.metrics.json"
        assert trace.exists() and metrics.exists()
        payload = json.loads(metrics.read_text())
        names = json.dumps(payload)
        assert "serve.updates.accepted" in names
        first_span = json.loads(trace.read_text().splitlines()[0])
        assert "name" in first_span
