"""Session handoff: per-relay segments, exactness, faults, checkpoints.

Phase disentanglement leaves a per-relay constant phase in every
channel, so a session served by several relays must never sum their
poses coherently. These tests pin the whole mechanism: relay changes
split staged batches and swap segment triples; a returning relay
resumes its archived segment; the finalize fix combines segments
noncoherently and *exactly* (staging order cannot change the bits);
the ``relay.handoff`` fault site stalls or loudly drops the first
updates after a swap; and checkpoints round-trip the archive.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.constants import SPEED_OF_LIGHT, UHF_CENTER_FREQUENCY
from repro.faults import FaultPlan
from repro.localization import Grid2D
from repro.localization.measurement import MeasurementModel
from repro.mobility.trajectory import LineTrajectory
from repro.serve import (
    Admission,
    LocalizationService,
    PendingUpdate,
    ServeConfig,
    TagSession,
)

F = UHF_CENTER_FREQUENCY
TAG = np.array([1.2, 1.1])


def make_config(**overrides):
    params = {"frequency_hz": F, "session_ttl_s": 1e9, **overrides}
    return ServeConfig(**params)


def make_grid():
    return Grid2D(-0.5, 3.0, 0.2, 2.5, 0.15)


def updates_from(relay, n, start=0, arrival_s=0.0, phase=0.0):
    """n line-poses tagged with ``relay``, offset ``phase`` radians.

    The constant per-relay phase models what disentanglement leaves
    behind: each relay's reference RFID sits at a different electrical
    distance, so its whole segment is rotated by one unknown angle.
    """
    xs = np.linspace(0.0, 2.5, 12)[start : start + n]
    positions = np.column_stack([xs, np.zeros(n)])
    d = np.linalg.norm(positions - TAG, axis=1)
    channels = np.exp(
        -2j * np.pi * F * 2.0 * d / SPEED_OF_LIGHT + 1j * phase
    )
    return [
        PendingUpdate(
            position=positions[i],
            channel=complex(channels[i]),
            arrival_s=arrival_s + 0.01 * i,
            seq=start + i,
            relay=relay,
        )
        for i in range(n)
    ]


class TestSegmentSwitching:
    def test_mixed_batch_splits_into_runs(self):
        session = TagSession("s", make_config(), make_grid())
        batch = (
            updates_from("a", 4)
            + updates_from("b", 4, start=4, phase=1.0)
            + updates_from("a", 4, start=8)
        )
        session.apply_batch(batch, degraded=False)
        # a -> b -> a: two handoffs, and relay a's segment was resumed
        # (not restarted), so it holds all 8 of a's poses.
        assert session.handoffs == 2
        assert session.active_relay == "a"
        assert session.full.n_poses == 8
        assert session.total_lag_poses == 0

    def test_constant_relay_traffic_never_hands_off(self):
        session = TagSession("s", make_config(), make_grid())
        for start in (0, 4, 8):
            session.apply_batch(
                updates_from("", 4, start=start), degraded=False
            )
        assert session.handoffs == 0
        assert session.active_relay == ""
        assert session.full.n_poses == 12

    def test_archived_lag_counts_toward_total(self):
        session = TagSession("s", make_config(), make_grid())
        session.apply_batch(updates_from("a", 4), degraded=True)
        session.apply_batch(
            updates_from("b", 4, start=4, phase=1.0), degraded=True
        )
        assert session.lag_poses == 4  # active (b) segment only
        assert session.total_lag_poses == 8

    def test_estimate_stays_available_across_handoff(self):
        # Quick estimates must keep answering mid-stream after a
        # handoff (the archive path), and stay inside the search grid.
        session = TagSession("s", make_config(), make_grid())
        session.apply_batch(updates_from("a", 6), degraded=False)
        session.apply_batch(
            updates_from("b", 6, start=6, phase=1.0), degraded=True
        )
        fix = session.estimate()
        grid = make_grid()
        assert grid.x_min <= fix[0] <= grid.x_max
        assert grid.y_min <= fix[1] <= grid.y_max


class TestHandoffExactness:
    def test_finalize_is_invariant_to_degraded_staging(self):
        """Deferral across a handoff costs nothing: FULL-mode and
        DEGRADED-then-catch-up runs finalize to identical bits."""
        batches = [
            ("a", 0, 0.0),
            ("b", 4, 1.3),
            ("a", 8, 0.0),
        ]
        eager = TagSession("s", make_config(), make_grid())
        lazy = TagSession("s", make_config(), make_grid())
        for relay, start, phase in batches:
            eager.apply_batch(
                updates_from(relay, 4, start=start, phase=phase),
                degraded=False,
            )
            lazy.apply_batch(
                updates_from(relay, 4, start=start, phase=phase),
                degraded=True,
            )
        eager_fix = eager.finalize()
        lazy_fix = lazy.finalize()
        np.testing.assert_array_equal(
            eager_fix.position, lazy_fix.position
        )
        assert lazy.total_lag_poses == 0

    def test_relay_phase_offsets_do_not_corrupt_the_fix(self):
        """The reason segments exist: an adversarial inter-relay phase
        must not move the combined fix (noncoherent combination)."""
        aligned = TagSession("s", make_config(), make_grid())
        rotated = TagSession("s", make_config(), make_grid())
        for session, phase_b in ((aligned, 0.0), (rotated, np.pi)):
            session.apply_batch(updates_from("a", 6), degraded=False)
            session.apply_batch(
                updates_from("b", 6, start=6, phase=phase_b),
                degraded=False,
            )
        fix_aligned = aligned.finalize().position
        fix_rotated = rotated.finalize().position
        np.testing.assert_allclose(
            fix_aligned, fix_rotated, atol=1e-9
        )
        assert np.linalg.norm(fix_rotated - TAG) < 0.3


class TestCheckpointRoundTrip:
    def test_archive_survives_checkpoint(self):
        session = TagSession("s", make_config(), make_grid())
        session.apply_batch(updates_from("a", 4), degraded=True)
        session.apply_batch(
            updates_from("b", 4, start=4, phase=1.0), degraded=False
        )
        session.last_ingest_relay = "b"
        clone = TagSession.from_payload(
            session.checkpoint_payload(), make_config()
        )
        assert clone.handoffs == 1
        assert clone.active_relay == "b"
        assert clone.last_ingest_relay == "b"
        assert clone.total_lag_poses == session.total_lag_poses
        np.testing.assert_array_equal(
            clone.finalize().position, session.finalize().position
        )

    def test_pre_fleet_checkpoint_restores(self):
        session = TagSession("s", make_config(), make_grid())
        session.apply_batch(updates_from("", 6), degraded=False)
        payload = session.checkpoint_payload()
        # A checkpoint written before fleets existed carries none of
        # the handoff keys; restore must default them.
        for key in ("active_relay", "last_ingest_relay", "handoffs",
                    "archive"):
            payload.pop(key)
        clone = TagSession.from_payload(payload, make_config())
        assert clone.handoffs == 0
        assert clone.active_relay is None
        np.testing.assert_array_equal(
            clone.estimate(), session.estimate()
        )


def measurements_with_relay(relay, n, start, seed=0):
    rng = np.random.default_rng(seed)
    model = MeasurementModel(
        reader_position=(-8.0, 0.0), reader_frequency_hz=F
    )
    samples = LineTrajectory((0.0, 0.0), (2.5, 0.0)).sample_every(
        2.5 / 11
    )[start : start + n]
    out = []
    for sample in samples:
        m = model.measure(
            sample.position, TAG, rng=rng, snr_db=30.0, time=sample.time
        )
        out.append(
            type(m)(
                position=m.position,
                h_target=m.h_target,
                h_reference=m.h_reference,
                snr_db=m.snr_db,
                time=m.time,
                relay=relay,
            )
        )
    return out


class TestServiceHandoffAccounting:
    def _run(self, fault_plan=None):
        service = LocalizationService(make_config())
        service.open_session("s", make_grid())
        admitted = rejected = 0
        now = 0.0

        def feed(batch):
            nonlocal admitted, rejected, now
            for m in batch:
                now += 0.01
                if service.submit("s", m, now_s=now) is Admission.ACCEPTED:
                    admitted += 1
                else:
                    rejected += 1
            service.drain()

        if fault_plan is not None:
            with faults.engaged(fault_plan):
                feed(measurements_with_relay("a", 6, 0))
                feed(measurements_with_relay("b", 6, 6))
        else:
            feed(measurements_with_relay("a", 6, 0))
            feed(measurements_with_relay("b", 6, 6))
        return service, admitted, rejected

    def test_handoff_counted_with_latency(self):
        service, admitted, rejected = self._run()
        report = service.report()
        assert report.handoffs == 1
        assert report.mean_handoff_latency_s > 0.0
        assert rejected == 0
        assert admitted == 12

    def test_handoff_drop_is_loud(self):
        plan = FaultPlan.single("relay.handoff", "drop", rate=1.0)
        service, admitted, rejected = self._run(fault_plan=plan)
        # Every post-handoff arrival from relay b is dropped (the
        # session never re-anchors to b), and each drop is flagged.
        assert rejected == 6
        assert service.report().updates_rejected == 6
        assert service.session_data_loss("s") > 0
        assert service.report().handoffs == 0

    def test_handoff_stall_charges_the_server(self):
        baseline, _, _ = self._run()
        plan = FaultPlan.single(
            "relay.handoff", "stall", rate=1.0, magnitude=0.05
        )
        stalled, admitted, rejected = self._run(fault_plan=plan)
        assert rejected == 0
        assert stalled.report().handoffs == 1
        assert stalled.report().busy_s > baseline.report().busy_s
