"""The service facade: ladder transitions, equivalence, determinism."""

import numpy as np
import pytest

from repro.constants import UHF_CENTER_FREQUENCY
from repro.errors import SessionNotFoundError
from repro.localization import Grid2D, Localizer
from repro.localization.measurement import MeasurementModel
from repro.mobility.trajectory import LineTrajectory
from repro.runtime.cache import ResultCache
from repro.serve import Admission, LocalizationService, ServeConfig

F = UHF_CENTER_FREQUENCY
TAG = np.array([1.4, 1.2])


def make_measurements(n=24, seed=0, snr_db=30.0):
    rng = np.random.default_rng(seed)
    model = MeasurementModel(
        reader_position=(-8.0, 0.0), reader_frequency_hz=F
    )
    samples = LineTrajectory((0.0, 0.0), (2.5, 0.0)).sample_every(
        2.5 / (n - 1)
    )
    return [
        model.measure(
            sample.position, TAG, rng=rng, snr_db=snr_db, time=sample.time
        )
        for sample in samples
    ]


def make_service(**overrides):
    params = {"frequency_hz": F, **overrides}
    return LocalizationService(ServeConfig(**params))


def make_grid():
    return Grid2D(-0.5, 3.0, 0.2, 2.5, 0.15)


class TestLifecycle:
    def test_submit_to_unknown_session_raises(self):
        service = make_service()
        with pytest.raises(SessionNotFoundError):
            service.submit("ghost", make_measurements(2)[0])

    def test_submit_step_estimate(self):
        service = make_service()
        service.open_session("a", make_grid())
        for m in make_measurements(24):
            assert service.submit("a", m, now_s=m.time) is Admission.ACCEPTED
        service.drain()
        estimate = service.estimate("a")
        assert np.linalg.norm(estimate - TAG) < 0.5

    def test_estimates_cover_only_sessions_with_data(self):
        service = make_service()
        service.open_session("a", make_grid())
        service.open_session("b", make_grid())
        for m in make_measurements(6):
            service.submit("a", m, now_s=m.time)
        service.drain()
        assert set(service.estimates()) == {"a"}

    def test_finalize_closes_the_session(self):
        service = make_service()
        service.open_session("a", make_grid())
        for m in make_measurements(8):
            service.submit("a", m, now_s=m.time)
        service.finalize("a")
        with pytest.raises(SessionNotFoundError):
            service.estimate("a")


class TestBatchEquivalence:
    def test_streamed_finalize_matches_batch_localizer(self):
        measurements = make_measurements(30)
        grid = make_grid()
        service = make_service()
        service.open_session("a", grid)
        for m in measurements:
            service.submit("a", m, now_s=m.time)
        streamed = service.finalize("a")
        batch = Localizer(frequency_hz=F).locate(
            measurements, search_grid=grid
        )
        np.testing.assert_allclose(
            streamed.position, batch.position, atol=1e-9
        )

    def test_overloaded_finalize_still_matches_batch(self):
        # Drive every batch down the degraded rung, then finalize: the
        # deferred full-resolution work must catch up exactly.
        measurements = make_measurements(30)
        grid = make_grid()
        service = make_service(
            latency_slo_s=0.001, service_rate_nodes_per_s=1e4
        )
        service.open_session("a", grid)
        for m in measurements:
            service.submit("a", m, now_s=0.0)
            service.step()
        streamed = service.finalize("a")
        assert service.report().updates_degraded > 0
        batch = Localizer(frequency_hz=F).locate(
            measurements, search_grid=grid
        )
        np.testing.assert_allclose(
            streamed.position, batch.position, atol=1e-9
        )


class TestDegradationLadder:
    def test_light_load_stays_full_resolution(self):
        service = make_service()
        service.open_session("a", make_grid())
        for m in make_measurements(12):
            service.submit("a", m, now_s=m.time)
            service.step()
        report = service.report()
        assert report.degraded_batches == 0
        assert report.updates_shed == 0

    def test_backlog_triggers_degraded_batches(self):
        service = make_service(
            latency_slo_s=0.01, service_rate_nodes_per_s=2e4
        )
        service.open_session("a", make_grid())
        for m in make_measurements(24):
            service.submit("a", m, now_s=0.0)
            service.step()
        service.drain()
        report = service.report()
        assert report.degraded_batches > 0
        assert report.updates_shed == 0

    def test_full_queue_sheds_at_ingest(self):
        service = make_service(queue_capacity=4)
        service.open_session("a", make_grid())
        admissions = [
            service.submit("a", m, now_s=0.0)
            for m in make_measurements(10)
        ]
        assert admissions.count(Admission.ACCEPTED) == 4
        assert admissions.count(Admission.SHED) == 6
        assert service.report().updates_shed == 6

    def test_shed_updates_never_reach_the_accumulators(self):
        service = make_service(queue_capacity=4)
        service.open_session("a", make_grid())
        for m in make_measurements(10):
            service.submit("a", m, now_s=0.0)
        service.drain()
        session = service.store.get("a")
        assert session.degraded.n_poses == 4

    def test_ladder_recovers_after_the_burst(self):
        service = make_service(
            latency_slo_s=0.05,
            service_rate_nodes_per_s=2e5,
            session_ttl_s=1e6,  # the quiet period must not evict
        )
        service.open_session("a", make_grid())
        # Burst: everything at t=0 -> backlog -> degraded batches.
        for m in make_measurements(24)[:12]:
            service.submit("a", m, now_s=0.0)
            service.step()
        burst_report = service.report()
        assert burst_report.degraded_batches > 0
        # Quiet period: arrivals spaced far apart -> ladder back to FULL.
        for i, m in enumerate(make_measurements(24)[12:]):
            service.submit("a", m, now_s=100.0 + 10.0 * i)
            report = service.step()
            assert report.degraded_batches == 0
        session = service.store.get("a")
        assert session.lag_poses == 0  # catch-up rode the full batches


class TestVirtualTimeDeterminism:
    def run_once(self):
        service = make_service()
        service.open_session("a", make_grid())
        for m in make_measurements(20):
            service.submit("a", m, now_s=m.time)
            service.step()
        service.drain()
        return service.report()

    def test_same_inputs_same_report(self):
        assert self.run_once() == self.run_once()

    def test_latencies_are_positive_and_ordered(self):
        report = self.run_once()
        assert 0.0 < report.p50_latency_s <= report.p99_latency_s
        assert report.p99_latency_s <= report.max_latency_s


class TestCheckpointedService:
    def test_expired_session_restores_on_submit(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = ServeConfig(frequency_hz=F, session_ttl_s=5.0)
        service = LocalizationService(config, cache=cache)
        service.open_session("a", make_grid())
        measurements = make_measurements(16)
        for m in measurements[:8]:
            service.submit("a", m, now_s=m.time)
        service.drain()
        # Long silence expires the session past its TTL...
        late_start = measurements[7].time + 6.0
        for i, m in enumerate(measurements[8:]):
            service.submit("a", m, now_s=late_start + 0.1 * i)
        service.drain()
        session = service.store.get("a")
        assert session.degraded.n_poses == 16
        assert service.report().updates_applied == 16
