"""Shard failover: kill a worker mid-run, restore from checkpoints.

The failover contract has three clauses, each pinned here:

* **Continuity** — with replica checkpoints attached, a ``serve.shard``
  reboot (injected or explicit) restores every killed session on its
  next touch, the recovery is counted, and sessions whose streams had
  no in-flight loss finalize to exactly the fault-free fix.
* **Loud loss** — pending updates dropped by the crash are accounted
  per session (``session_data_loss``), so a fix computed from a holed
  stream is *flagged*, never silently wrong.
* **No silent resurrection** — without a checkpoint cache the next
  touch of a killed session raises, it does not fabricate state.
"""

import numpy as np
import pytest

from repro import faults
from repro.constants import UHF_CENTER_FREQUENCY
from repro.errors import SessionNotFoundError
from repro.faults import FaultPlan, Trigger
from repro.runtime.cache import ResultCache
from repro.serve import (
    ServeConfig,
    ShardConfig,
    ShardedLocalizationService,
    generate_workload,
    run_sharded_workload,
)

F = UHF_CENTER_FREQUENCY
N_SHARDS = 4


@pytest.fixture(scope="module")
def workload():
    return generate_workload(
        n_tags=5, seed=4, load=12.0, grid_resolution=0.15
    )


def config():
    return ServeConfig(
        frequency_hz=F,
        capacity_mode="partitioned",
        session_ttl_s=1e9,
    )


def shard_kill_plan(shard_index: int, kills: int = 1) -> FaultPlan:
    """Reboot shard ``shard_index`` on its first ``kills`` events.

    The ``serve.shard`` hook passes the shard index as the fault
    engine's ``index``, so a ``pose_index`` window of ``[k, k+1)``
    targets exactly one worker of the fleet.
    """
    return FaultPlan.single(
        "serve.shard",
        "reboot",
        trigger=Trigger(
            kind="pose_index", start=shard_index, stop=shard_index + 1
        ),
        max_injections=kills,
    )


class TestInjectedShardReboot:
    def test_checkpointed_failover_reproduces_fault_free_fixes(
        self, workload, tmp_path
    ):
        baseline = run_sharded_workload(
            workload,
            config(),
            ShardConfig(n_shards=N_SHARDS),
            cache=ResultCache(tmp_path / "baseline"),
        )
        victim = baseline.assignment[sorted(baseline.assignment)[0]]
        victim_index = int(victim.split("-")[1])
        faulted = run_sharded_workload(
            workload,
            config(),
            ShardConfig(n_shards=N_SHARDS),
            cache=ResultCache(tmp_path / "faulted"),
            fault_plan=shard_kill_plan(victim_index, kills=2),
        )
        # The workload replay steps after every submit, so queues are
        # empty when the reboot lands: checkpoints capture everything,
        # nothing is lost, and every fix must be bit-identical.
        assert faulted.service.recoveries > baseline.service.recoveries
        assert faulted.service.updates_lost == 0
        assert faulted.session_loss == {}
        assert faulted.estimates.keys() == baseline.estimates.keys()
        for session_id, fix in baseline.estimates.items():
            assert np.array_equal(faulted.estimates[session_id], fix)
        assert faulted.ladders == baseline.ladders

    def test_reboot_without_cache_fails_loudly(self, workload):
        victim = ShardConfig(n_shards=N_SHARDS).ring().route(
            sorted(workload.grids)[0]
        )
        with pytest.raises(SessionNotFoundError):
            run_sharded_workload(
                workload,
                config(),
                ShardConfig(n_shards=N_SHARDS),
                fault_plan=shard_kill_plan(int(victim.split("-")[1])),
            )


class TestExplicitShardKill:
    """Crash a worker while updates sit queued: loss must be flagged."""

    def _replay(self, workload, cache, kill_after=None):
        service = ShardedLocalizationService(
            config(), ShardConfig(n_shards=N_SHARDS), cache=cache
        )
        for session_id, grid in workload.grids.items():
            service.open_session(session_id, grid, now_s=0.0)
        victim_sid = sorted(workload.grids)[0]
        victim = service.route(victim_sid)
        killed = False
        lost = 0
        for index, event in enumerate(workload.events):
            service.submit(
                event.session_id, event.measurement, now_s=event.time_s
            )
            if kill_after is not None and index == kill_after and not killed:
                # Deliberately *before* the round runs: the victim
                # worker's queues still hold this round's updates.
                lost = service.kill_shard(victim, now_s=event.time_s)
                killed = True
            service.step(now_s=event.time_s)
        service.drain()
        fixes = {}
        for session_id in sorted(workload.grids):
            worker = service.worker_of(session_id)
            live = worker.store.sessions().get(session_id)
            if live is None or live.degraded.n_poses < 2:
                continue
            fixes[session_id] = service.finalize(
                session_id, now_s=workload.duration_s
            ).position
        return service, victim, lost, fixes

    def test_lost_updates_flag_exactly_the_victim_sessions(
        self, workload, tmp_path
    ):
        kill_after = len(workload.events) // 2
        clean_service, victim, _, clean_fixes = self._replay(
            workload, ResultCache(tmp_path / "clean")
        )
        service, victim2, lost, fixes = self._replay(
            workload, ResultCache(tmp_path / "killed"), kill_after=kill_after
        )
        assert victim2 == victim
        assert lost > 0
        flagged = {
            session_id: service.session_data_loss(session_id)
            for session_id in workload.grids
            if service.session_data_loss(session_id)
        }
        # Loss is accounted exactly, and only on the crashed worker.
        assert sum(flagged.values()) == lost
        assert flagged
        for session_id in flagged:
            assert service.route(session_id) == victim
        # Zero unflagged wrong fixes: every session the crash did not
        # touch reproduces the fault-free fix bit for bit.
        for session_id, fix in fixes.items():
            if session_id not in flagged:
                assert np.array_equal(fix, clean_fixes[session_id])
        report = service.report()
        assert report.updates_lost == lost
        assert report.recoveries > clean_service.report().recoveries
