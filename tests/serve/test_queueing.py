"""Bounded buffers: the admission-control contract."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve import Admission, BoundedBuffer, PendingUpdate


def update(seq, arrival_s=0.0):
    return PendingUpdate(
        position=np.array([float(seq), 0.0]),
        channel=1.0 + 0.0j,
        arrival_s=arrival_s,
        seq=seq,
    )


class TestBoundedBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            BoundedBuffer(0)

    def test_accepts_until_capacity_then_sheds(self):
        buffer = BoundedBuffer(2)
        assert buffer.offer(update(0)) is Admission.ACCEPTED
        assert buffer.offer(update(1)) is Admission.ACCEPTED
        assert buffer.offer(update(2)) is Admission.SHED
        assert len(buffer) == 2

    def test_shed_drops_the_new_arrival_not_the_head(self):
        # The paper-side contract: an accepted update is never silently
        # replaced later (a maxlen deque would evict the oldest).
        buffer = BoundedBuffer(1)
        buffer.offer(update(0, arrival_s=1.0))
        buffer.offer(update(1, arrival_s=2.0))
        assert [u.seq for u in buffer.take(10)] == [0]

    def test_take_preserves_fifo_order(self):
        buffer = BoundedBuffer(8)
        for seq in range(5):
            buffer.offer(update(seq, arrival_s=float(seq)))
        assert [u.seq for u in buffer.take(3)] == [0, 1, 2]
        assert [u.seq for u in buffer.take(3)] == [3, 4]
        assert buffer.take(3) == []

    def test_take_nonpositive_limit_is_empty(self):
        buffer = BoundedBuffer(2)
        buffer.offer(update(0))
        assert buffer.take(0) == []
        assert len(buffer) == 1

    def test_oldest_arrival_tracks_the_head(self):
        buffer = BoundedBuffer(4)
        assert buffer.oldest_arrival_s is None
        buffer.offer(update(0, arrival_s=1.5))
        buffer.offer(update(1, arrival_s=2.5))
        assert buffer.oldest_arrival_s == 1.5
        buffer.take(1)
        assert buffer.oldest_arrival_s == 2.5

    def test_shedding_frees_no_slot(self):
        buffer = BoundedBuffer(1)
        buffer.offer(update(0))
        for seq in range(1, 4):
            assert buffer.offer(update(seq)) is Admission.SHED
        buffer.take(1)
        assert buffer.offer(update(9)) is Admission.ACCEPTED
