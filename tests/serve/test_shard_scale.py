"""Large rings and heterogeneous-report merging.

``test_shard_router`` pins the ring's contract at small M; fleets push
the shard count past 8, so these tests pin the same properties at
M=12..16 — every shard still owns keys, churn on removal stays ~1/M,
and scale-out past ``shard-09`` keeps the two-digit id scheme distinct.
The merge half pins :func:`repro.serve.shard.merge_service_reports`
on *heterogeneous* per-shard handoff counters: shards see different
handoff counts (many see none), and the merged report must not depend
on the order the shards are listed in.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serve.service import ServiceReport
from repro.serve.shard import (
    ShardRing,
    default_shard_ids,
    merge_service_reports,
)


class TestLargeRings:
    def test_every_shard_owns_keys_at_m16(self):
        ring = ShardRing(16)
        keys = [f"tag-{index:05d}" for index in range(4000)]
        owners = {ring.route(key) for key in keys}
        assert owners == set(default_shard_ids(16))

    def test_two_digit_ids_stay_distinct_past_ten(self):
        ids = default_shard_ids(12)
        assert len(set(ids)) == 12
        assert ids[9] == "shard-09"
        assert ids[10] == "shard-10"
        # shard-1 would prefix-collide with shard-10..11 under sloppy
        # formatting; the zero-padded scheme keeps vnode materials
        # (and therefore routes) unambiguous.
        assert "shard-1" not in ids

    def test_removal_churn_stays_bounded_at_m12(self):
        keys = [f"tag-{index:05d}" for index in range(4000)]
        ring = ShardRing(12)
        shrunk = ring.without("shard-07")
        moved = 0
        for key in keys:
            before = ring.route(key)
            after = shrunk.route(key)
            if before == "shard-07":
                assert after != "shard-07"
                moved += 1
            else:
                assert after == before
        # Only the victim's keys remigrate: ~1/12 of the keyspace,
        # tolerating vnode placement variance.
        assert 0 < moved < len(keys) * 2.5 / 12

    def test_scale_out_from_m12_only_steals(self):
        keys = [f"tag-{index:05d}" for index in range(2000)]
        ring = ShardRing(12)
        grown = ring.with_shard("shard-12")
        stolen = 0
        for key in keys:
            before = ring.route(key)
            after = grown.route(key)
            assert after in (before, "shard-12")
            stolen += after == "shard-12"
        assert 0 < stolen < len(keys) * 2.5 / 13

    def test_churn_round_trip_restores_routing(self):
        ring = ShardRing(14)
        rebuilt = ring.without("shard-03").with_shard("shard-03")
        keys = [f"tag-{index:04d}" for index in range(500)]
        assert ring.table(keys) == rebuilt.table(keys)

    def test_duplicate_shard_rejected_on_big_ring(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ShardRing(12).with_shard("shard-05")


def _report(**overrides) -> ServiceReport:
    base = dict(
        updates_accepted=10,
        updates_applied=8,
        updates_degraded=1,
        updates_shed=1,
        full_batches=3,
        degraded_batches=1,
        catchup_poses=2,
        p50_latency_s=0.01,
        p99_latency_s=0.02,
        max_latency_s=0.03,
        busy_s=1.0,
    )
    base.update(overrides)
    return ServiceReport(**base)


class TestHeterogeneousHandoffMerge:
    """Shards see wildly different handoff traffic; the merge must not
    care which order they are listed in."""

    def _shards(self):
        # Three shards with handoffs (different counts and latencies),
        # one with none — the common fleet shape, where only boundary
        # tags' shards ever hand off.
        reports = [
            _report(handoffs=3, mean_handoff_latency_s=0.2, busy_s=2.0),
            _report(handoffs=1, mean_handoff_latency_s=0.5),
            _report(handoffs=0),
            _report(handoffs=2, mean_handoff_latency_s=0.1, busy_s=1.5),
        ]
        latencies = [[0.01, 0.02], [0.03], [0.004], [0.02, 0.05]]
        recoveries = [[], [0.5], [], []]
        handoffs = [[0.2, 0.25, 0.15], [0.5], [], [0.1, 0.1]]
        return reports, latencies, recoveries, handoffs

    def test_counters_add_and_samples_pool(self):
        reports, latencies, recoveries, handoffs = self._shards()
        merged = merge_service_reports(
            reports, latencies, recoveries, handoffs
        )
        assert merged.handoffs == 6
        pooled = [s for samples in handoffs for s in samples]
        assert merged.mean_handoff_latency_s == pytest.approx(
            float(np.mean(pooled))
        )
        assert merged.busy_s == 2.0  # makespan, not a sum

    def test_merge_is_order_insensitive(self):
        reports, latencies, recoveries, handoffs = self._shards()
        baseline = merge_service_reports(
            reports, latencies, recoveries, handoffs
        )
        for order in itertools.permutations(range(len(reports))):
            permuted = merge_service_reports(
                [reports[i] for i in order],
                [latencies[i] for i in order],
                [recoveries[i] for i in order],
                [handoffs[i] for i in order],
            )
            # Bitwise identical, not approximately: the merge sorts
            # pooled samples before reducing, so float association
            # cannot leak shard order into the report.
            assert permuted == baseline

    def test_no_handoffs_anywhere_reports_zero(self):
        reports = [_report(), _report()]
        merged = merge_service_reports(
            reports, [[0.01], [0.02]], [[], []]
        )
        assert merged.handoffs == 0
        assert merged.mean_handoff_latency_s == 0.0

    def test_per_shard_means_do_not_feed_the_merge(self):
        # A shard lying about its mean must not matter: the merge
        # recomputes from raw samples only.
        reports = [
            _report(handoffs=1, mean_handoff_latency_s=999.0),
            _report(handoffs=1, mean_handoff_latency_s=-999.0),
        ]
        merged = merge_service_reports(
            reports, [[0.01], [0.01]], [[], []], [[0.2], [0.4]]
        )
        assert merged.mean_handoff_latency_s == pytest.approx(0.3)
