"""Tag sessions: dual accumulators, lag catch-up, TTL store, checkpoints."""

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT, UHF_CENTER_FREQUENCY
from repro.errors import ServeError, SessionNotFoundError
from repro.localization import Grid2D
from repro.runtime.cache import ResultCache
from repro.serve import (
    Admission,
    PendingUpdate,
    ServeConfig,
    SessionStore,
    TagSession,
)

F = UHF_CENTER_FREQUENCY
TAG = np.array([1.2, 1.1])


def make_config(**overrides):
    params = {
        "frequency_hz": F,
        "queue_capacity": 4,
        "session_ttl_s": 10.0,
        **overrides,
    }
    return ServeConfig(**params)


def make_grid():
    return Grid2D(-0.5, 3.0, 0.2, 2.5, 0.15)


def updates_along_line(n, arrival_s=0.0):
    xs = np.linspace(0.0, 2.5, n)
    positions = np.column_stack([xs, np.zeros(n)])
    d = np.linalg.norm(positions - TAG, axis=1)
    channels = np.exp(-2j * np.pi * F * 2.0 * d / SPEED_OF_LIGHT)
    return [
        PendingUpdate(
            position=positions[i],
            channel=complex(channels[i]),
            arrival_s=arrival_s + 0.01 * i,
            seq=i,
        )
        for i in range(n)
    ]


class TestTagSession:
    def test_degraded_grid_is_coarser_but_same_extent(self):
        session = TagSession("s", make_config(), make_grid())
        assert session.degraded_nodes < session.full_nodes
        assert session.degraded.grid.x_min == session.full.grid.x_min
        assert session.degraded.grid.x_max == session.full.grid.x_max

    def test_offer_respects_queue_capacity(self):
        session = TagSession("s", make_config(queue_capacity=2), make_grid())
        batch = updates_along_line(3)
        assert session.offer(batch[0], 0.0) is Admission.ACCEPTED
        assert session.offer(batch[1], 0.0) is Admission.ACCEPTED
        assert session.offer(batch[2], 0.0) is Admission.SHED
        assert session.stats.accepted == 2
        assert session.stats.shed == 1

    def test_full_batch_feeds_both_accumulators(self):
        session = TagSession("s", make_config(), make_grid())
        session.apply_batch(updates_along_line(6), degraded=False)
        assert session.full.n_poses == 6
        assert session.degraded.n_poses == 6
        assert session.lag_poses == 0

    def test_degraded_batch_defers_full_resolution_work(self):
        session = TagSession("s", make_config(), make_grid())
        session.apply_batch(updates_along_line(6), degraded=True)
        assert session.full.n_poses == 0
        assert session.degraded.n_poses == 6
        assert session.lag_poses == 6

    def test_catch_up_honors_the_pose_budget(self):
        session = TagSession("s", make_config(), make_grid())
        session.apply_batch(updates_along_line(10), degraded=True)
        session.catch_up(3)
        assert session.full.n_poses == 3
        assert session.lag_poses == 7
        session.catch_up(None)
        assert session.full.n_poses == 10
        assert session.lag_poses == 0

    def test_estimate_falls_back_while_lagging(self):
        session = TagSession("s", make_config(), make_grid())
        session.apply_batch(updates_along_line(8), degraded=True)
        degraded_estimate = session.estimate()
        session.catch_up(None)
        full_estimate = session.estimate()
        # Both estimates localize the same tag; the full one on the
        # finer grid, so it can only be at least as close.
        assert np.linalg.norm(full_estimate - TAG) <= (
            np.linalg.norm(degraded_estimate - TAG) + 1e-12
        )

    def test_finalize_equals_full_mode_finalize(self):
        batch = updates_along_line(12)
        lagging = TagSession("a", make_config(), make_grid())
        lagging.apply_batch(batch, degraded=True)
        direct = TagSession("b", make_config(), make_grid())
        direct.apply_batch(batch, degraded=False)
        np.testing.assert_allclose(
            lagging.finalize().position,
            direct.finalize().position,
            atol=1e-9,
        )

    def test_checkpoint_round_trip_preserves_lag_and_stats(self):
        config = make_config()
        session = TagSession("s", config, make_grid(), opened_s=1.0)
        session.apply_batch(updates_along_line(4), degraded=True)
        session.apply_batch(updates_along_line(4, arrival_s=1.0), degraded=False)
        clone = TagSession.from_payload(session.checkpoint_payload(), config)
        assert clone.session_id == "s"
        assert clone.lag_poses == session.lag_poses
        assert clone.stats.applied_degraded == 4
        assert clone.stats.applied_full == 4
        np.testing.assert_allclose(
            clone.finalize().position,
            session.finalize().position,
            atol=1e-9,
        )


class TestSessionStore:
    def test_open_get_close(self):
        store = SessionStore(make_config())
        store.open("a", make_grid(), now_s=0.0)
        assert store.get("a").session_id == "a"
        store.close("a")
        with pytest.raises(SessionNotFoundError):
            store.get("a")

    def test_duplicate_open_is_rejected(self):
        store = SessionStore(make_config())
        store.open("a", make_grid())
        with pytest.raises(ServeError):
            store.open("a", make_grid())

    def test_session_limit_is_enforced(self):
        store = SessionStore(make_config(max_sessions=1))
        store.open("a", make_grid())
        with pytest.raises(ServeError):
            store.open("b", make_grid())

    def test_quiesced_sessions_expire_after_ttl(self):
        store = SessionStore(make_config(session_ttl_s=5.0))
        store.open("a", make_grid(), now_s=0.0)
        assert store.evict_expired(4.0) == []
        assert store.evict_expired(6.0) == ["a"]
        assert len(store) == 0

    def test_sessions_with_queued_work_are_never_evicted(self):
        store = SessionStore(make_config(session_ttl_s=5.0))
        session = store.open("a", make_grid(), now_s=0.0)
        session.offer(updates_along_line(1)[0], 0.0)
        assert store.evict_expired(100.0) == []

    def test_eviction_without_cache_loses_the_session(self):
        store = SessionStore(make_config(session_ttl_s=5.0))
        store.open("a", make_grid(), now_s=0.0)
        store.evict_expired(6.0)
        with pytest.raises(SessionNotFoundError):
            store.get_or_restore("a", 7.0)

    def test_eviction_with_cache_restores_transparently(self, tmp_path):
        cache = ResultCache(tmp_path)
        store = SessionStore(make_config(session_ttl_s=5.0), cache)
        session = store.open("a", make_grid(), now_s=0.0)
        session.apply_batch(updates_along_line(6), degraded=False)
        store.evict_expired(6.0)
        assert len(store) == 0
        restored = store.get_or_restore("a", 7.0)
        assert restored.full.n_poses == 6
        assert restored.last_seen_s >= 7.0

    def test_restored_session_finalizes_like_the_original(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = make_config(session_ttl_s=5.0)
        batch = updates_along_line(10)

        store = SessionStore(config, cache)
        store.open("a", make_grid(), now_s=0.0)
        store.get("a").apply_batch(batch, degraded=False)
        store.evict_expired(6.0)
        restored = store.get_or_restore("a", 7.0).finalize()

        reference = TagSession("ref", config, make_grid())
        reference.apply_batch(batch, degraded=False)
        np.testing.assert_allclose(
            restored.position, reference.finalize().position, atol=1e-9
        )

    def test_close_forgets_the_checkpoint(self, tmp_path):
        cache = ResultCache(tmp_path)
        store = SessionStore(make_config(session_ttl_s=5.0), cache)
        store.open("a", make_grid(), now_s=0.0)
        store.evict_expired(6.0)
        assert store.restore("a", 7.0) is not None
        store.close("a")
        assert store.restore("a", 8.0) is None

    def test_restore_respects_the_session_limit(self, tmp_path):
        cache = ResultCache(tmp_path)
        store = SessionStore(
            make_config(session_ttl_s=5.0, max_sessions=1), cache
        )
        store.open("a", make_grid(), now_s=0.0)
        store.evict_expired(6.0)
        store.open("b", make_grid(), now_s=7.0)
        with pytest.raises(ServeError):
            store.restore("a", 8.0)
