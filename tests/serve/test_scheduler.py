"""Micro-batch planning: ordering, batching, and the degrade decision."""

import numpy as np

from repro.constants import SPEED_OF_LIGHT, UHF_CENTER_FREQUENCY
from repro.localization import Grid2D
from repro.serve import (
    MicroBatchScheduler,
    PendingUpdate,
    ServeConfig,
    TagSession,
)

F = UHF_CENTER_FREQUENCY


def make_config(**overrides):
    params = {
        "frequency_hz": F,
        "latency_slo_s": 0.25,
        "queue_capacity": 64,
        "max_batch_poses": 8,
        **overrides,
    }
    return ServeConfig(**params)


def make_session(session_id, config, queued=0, arrival_s=0.0):
    session = TagSession(
        session_id, config, Grid2D(-0.5, 3.0, 0.2, 2.5, 0.15)
    )
    for seq in range(queued):
        position = np.array([0.1 * seq, 0.0])
        d = float(np.linalg.norm(position - np.array([1.0, 1.0])))
        channel = complex(
            np.exp(-2j * np.pi * F * 2.0 * d / SPEED_OF_LIGHT)
        )
        session.offer(
            PendingUpdate(
                position=position,
                channel=channel,
                arrival_s=arrival_s + 0.001 * seq,
                seq=seq,
            ),
            arrival_s,
        )
    return session


class TestPlanRound:
    def test_empty_sessions_plan_nothing(self):
        config = make_config()
        scheduler = MicroBatchScheduler(config)
        sessions = {"a": make_session("a", config, queued=0)}
        assert scheduler.plan_round(sessions, 0.0, 0.0) == []

    def test_oldest_queued_session_goes_first(self):
        config = make_config()
        scheduler = MicroBatchScheduler(config)
        sessions = {
            "young": make_session("young", config, queued=2, arrival_s=5.0),
            "old": make_session("old", config, queued=2, arrival_s=1.0),
        }
        plans = scheduler.plan_round(sessions, 5.0, 0.0)
        assert [p.session_id for p in plans] == ["old", "young"]

    def test_session_id_breaks_arrival_ties(self):
        config = make_config()
        scheduler = MicroBatchScheduler(config)
        sessions = {
            "b": make_session("b", config, queued=1, arrival_s=1.0),
            "a": make_session("a", config, queued=1, arrival_s=1.0),
        }
        plans = scheduler.plan_round(sessions, 1.0, 0.0)
        assert [p.session_id for p in plans] == ["a", "b"]

    def test_batches_are_capped_at_max_batch_poses(self):
        config = make_config(max_batch_poses=3)
        scheduler = MicroBatchScheduler(config)
        sessions = {"a": make_session("a", config, queued=10)}
        plans = scheduler.plan_round(sessions, 0.0, 0.0)
        assert len(plans) == 1
        assert len(plans[0].updates) == 3
        assert len(sessions["a"].pending) == 7

    def test_fresh_work_plans_full_resolution(self):
        config = make_config()
        scheduler = MicroBatchScheduler(config)
        sessions = {"a": make_session("a", config, queued=4, arrival_s=0.0)}
        plans = scheduler.plan_round(sessions, 0.0, 0.0)
        assert plans[0].degraded is False

    def test_stale_backlog_degrades_the_batch(self):
        config = make_config(latency_slo_s=0.1)  # threshold 0.05 s
        scheduler = MicroBatchScheduler(config)
        sessions = {"a": make_session("a", config, queued=4, arrival_s=0.0)}
        plans = scheduler.plan_round(sessions, 1.0, 0.0)
        assert plans[0].degraded is True

    def test_projected_backlog_degrades_later_batches(self):
        # A huge earlier batch pushes the projected wait of the next
        # session past the threshold even though both just arrived.
        config = make_config(
            latency_slo_s=0.1,
            service_rate_nodes_per_s=1e4,
            max_batch_poses=8,
        )
        scheduler = MicroBatchScheduler(config)
        sessions = {
            "a": make_session("a", config, queued=8, arrival_s=0.0),
            "b": make_session("b", config, queued=2, arrival_s=0.001),
        }
        plans = scheduler.plan_round(sessions, 0.002, 0.0)
        assert plans[0].session_id == "a"
        assert plans[0].degraded is False
        assert plans[1].session_id == "b"
        assert plans[1].degraded is True

    def test_existing_backlog_feeds_the_decision(self):
        config = make_config(latency_slo_s=0.1)
        scheduler = MicroBatchScheduler(config)
        sessions = {"a": make_session("a", config, queued=2, arrival_s=0.0)}
        plans = scheduler.plan_round(sessions, 0.0, backlog_s=10.0)
        assert plans[0].degraded is True

    def test_catchup_rides_only_on_full_batches(self):
        config = make_config(catchup_poses=4)
        scheduler = MicroBatchScheduler(config)
        session = make_session("a", config, queued=2, arrival_s=0.0)
        session.apply_batch(
            session.pending.take(1), degraded=True
        )  # creates lag
        assert session.lag_poses == 1

        fresh_plans = scheduler.plan_round({"a": session}, 0.0, 0.0)
        assert fresh_plans[0].degraded is False
        assert fresh_plans[0].catchup_poses == 1

    def test_degraded_batches_defer_catchup(self):
        config = make_config(latency_slo_s=0.1, catchup_poses=4)
        scheduler = MicroBatchScheduler(config)
        session = make_session("a", config, queued=2, arrival_s=0.0)
        session.apply_batch(session.pending.take(1), degraded=True)
        plans = scheduler.plan_round({"a": session}, 5.0, 0.0)
        assert plans[0].degraded is True
        assert plans[0].catchup_poses == 0

    def test_cost_includes_both_grids_for_full_batches(self):
        config = make_config()
        scheduler = MicroBatchScheduler(config)
        session = make_session("a", config, queued=2, arrival_s=0.0)
        plans = scheduler.plan_round({"a": session}, 0.0, 0.0)
        expected_nodes = 2 * (session.full_nodes + session.degraded_nodes)
        assert plans[0].projected_nodes == expected_nodes
        assert plans[0].cost_s == config.batch_cost_s(expected_nodes)
