"""The sharding acceptance bar: sharded == unsharded, bit for bit.

Two layers of equivalence are pinned here:

1. **Kernel layer** (hypothesis): the stacked cross-session fold
   (:func:`repro.localization.batched.fold_blocks`) matches per-block
   scalar ``update`` to 1e-12 under arbitrary block splits, and — the
   stronger, *exact* property — an accumulator's bits never depend on
   which other blocks were co-batched into the same kernel call.
2. **Service layer**: replaying one workload through ``M`` consistent-
   hash shards (serial or process backend, ``M`` in 1/2/4/8) under
   partitioned capacity isolation reproduces the unsharded service's
   fixes, errors, degradation-ladder logs, and sample-pooled latency
   report exactly, and the merged metrics agree order-insensitively.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import UHF_CENTER_FREQUENCY
from repro.errors import ConfigurationError
from repro.localization import Grid2D, IncrementalSar
from repro.localization.batched import PoseBlock, fold_blocks
from repro.obs import MetricsRegistry
from repro.obs import metrics as metrics_mod
from repro.serve import (
    ServeConfig,
    ShardConfig,
    generate_workload,
    run_sharded_workload,
)

F = UHF_CENTER_FREQUENCY

#: Service knobs shared by every service-layer case: partitioned
#: isolation (required for sharding), an effectively infinite TTL so
#: eviction timing never enters, and a service rate low enough that
#: the compressed workload walks sessions down the degradation ladder.
PARTITIONED = dict(
    frequency_hz=F,
    capacity_mode="partitioned",
    session_ttl_s=1e9,
    service_rate_nodes_per_s=2.0e5,
    latency_slo_s=0.05,
)


def small_grid():
    return Grid2D(-1.0, 1.0, -1.0, 1.0, 0.4)


# -- kernel layer ----------------------------------------------------------------


poses = st.integers(min_value=1, max_value=24).flatmap(
    lambda n: st.tuples(
        st.lists(
            st.tuples(
                st.floats(-3.0, 3.0, allow_nan=False),
                st.floats(-3.0, 3.0, allow_nan=False),
            ),
            min_size=n,
            max_size=n,
        ),
        st.lists(
            st.complex_numbers(
                min_magnitude=1e-3, max_magnitude=10.0, allow_nan=False
            ),
            min_size=n,
            max_size=n,
        ),
    )
)


def _split(positions, channels, cuts):
    """Cut one pose stream into contiguous blocks at ``cuts``."""
    edges = [0] + sorted(set(c % len(positions) for c in cuts)) + [len(positions)]
    edges = sorted(set(edges))
    return [
        (positions[a:b], channels[a:b])
        for a, b in zip(edges[:-1], edges[1:])
        if b > a
    ]


@given(data=poses, cuts=st.lists(st.integers(0, 23), max_size=4))
@settings(max_examples=25, deadline=None)
def test_batched_fold_matches_scalar_updates(data, cuts):
    """fold_blocks over arbitrary splits ~ per-block update (1e-12)."""
    positions, channels = np.asarray(data[0]), np.asarray(data[1])
    blocks = _split(positions, channels, cuts)
    scalar = IncrementalSar(F, small_grid())
    for block_positions, block_channels in blocks:
        scalar.update(block_positions, block_channels)
    batched = IncrementalSar(F, small_grid())
    fold_blocks(
        [PoseBlock(batched, p, c) for p, c in blocks]
    )
    assert batched.n_poses == scalar.n_poses
    np.testing.assert_allclose(
        batched._accumulator,
        scalar._accumulator,
        rtol=0.0,
        atol=1e-12 * max(1, len(positions)),
    )


@given(
    data=poses,
    other=poses,
    n_neighbours=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_co_batched_blocks_never_change_each_others_bits(
    data, other, n_neighbours
):
    """Stacking-invariance, the exact property sharding rests on.

    Folding a block alone and folding it co-batched with arbitrary
    other sessions' blocks must leave *identical bits* in its target
    accumulator — np.array_equal, not allclose.
    """
    positions, channels = np.asarray(data[0]), np.asarray(data[1])
    alone = IncrementalSar(F, small_grid())
    fold_blocks([PoseBlock(alone, positions, channels)])
    crowded = IncrementalSar(F, small_grid())
    neighbours = [
        PoseBlock(
            IncrementalSar(F, small_grid()),
            np.asarray(other[0]),
            np.asarray(other[1]),
        )
        for _ in range(n_neighbours)
    ]
    fold_blocks(
        neighbours[: n_neighbours // 2]
        + [PoseBlock(crowded, positions, channels)]
        + neighbours[n_neighbours // 2 :]
    )
    assert np.array_equal(alone._accumulator, crowded._accumulator)
    assert alone.n_poses == crowded.n_poses


def test_fold_blocks_groups_mixed_grids():
    """Blocks with different grids fold correctly in one call."""
    rng = np.random.default_rng(7)
    coarse = IncrementalSar(F, small_grid())
    fine = IncrementalSar(F, Grid2D(-1.0, 1.0, -1.0, 1.0, 0.2))
    p1, c1 = rng.uniform(-1, 1, (5, 2)), rng.normal(size=5) + 1j
    p2, c2 = rng.uniform(-1, 1, (3, 2)), rng.normal(size=3) + 1j
    projected = fold_blocks(
        [PoseBlock(coarse, p1, c1), PoseBlock(fine, p2, c2)]
    )
    assert projected == 5 * coarse.n_nodes + 3 * fine.n_nodes
    reference = IncrementalSar(F, small_grid())
    reference.update(p1, c1)
    np.testing.assert_allclose(
        coarse._accumulator, reference._accumulator, atol=1e-12
    )


def test_fold_blocks_empty_and_degenerate():
    assert fold_blocks([]) == 0
    acc = IncrementalSar(F, small_grid())
    assert (
        fold_blocks(
            [PoseBlock(acc, np.empty((0, 2)), np.empty(0, complex))]
        )
        == 0
    )
    assert acc.n_poses == 0


# -- service layer ---------------------------------------------------------------


@pytest.fixture(scope="module")
def workload():
    """One compressed Gen2-MAC workload, heavy enough to degrade."""
    return generate_workload(
        n_tags=6, seed=11, load=24.0, grid_resolution=0.15
    )


@pytest.fixture(scope="module")
def unsharded(workload):
    """The M=1 (unsharded serial service) reference replay."""
    config = ServeConfig(**PARTITIONED)
    registry = MetricsRegistry()
    with metrics_mod.activated(registry):
        report = run_sharded_workload(
            workload, config, ShardConfig(n_shards=1)
        )
    return report, registry


def _assert_equivalent(reference, candidate):
    """Byte-level agreement on everything user-visible."""
    assert candidate.estimates.keys() == reference.estimates.keys()
    for session_id, fix in reference.estimates.items():
        assert np.array_equal(candidate.estimates[session_id], fix)
    assert candidate.errors_m == reference.errors_m
    assert candidate.ladders == reference.ladders
    assert candidate.service == reference.service
    assert candidate.session_loss == reference.session_loss


def _assert_metrics_merge(reference: MetricsRegistry, merged: MetricsRegistry):
    """Order-insensitive metrics agreement across the shard merge.

    Counters are integer-valued float adds (exact); histogram counts,
    bucket shapes, and extrema are order-free; only the sequential
    float ``total`` picks up association error. Gauges are last-write
    and legitimately per-shard, so they are not compared.
    """
    drop = {"serve.queue_depth", "serve.backlog_s", "serve.sessions.active"}
    ref_counters = dict(reference.counters)
    got_counters = dict(merged.counters)
    # The batched fold runs once per *round*, so shards (fewer rounds
    # each, same total) legitimately count a different number of fold
    # calls; everything the user reads about must still agree.
    ref_counters.pop("localization.sar.batched_folds", None)
    got_counters.pop("localization.sar.batched_folds", None)
    assert got_counters == ref_counters
    assert merged.histograms.keys() == reference.histograms.keys()
    for name, state in reference.histograms.items():
        if name in drop:
            continue
        other = merged.histograms[name]
        assert other.count == state.count
        assert other.min_value == state.min_value
        assert other.max_value == state.max_value
        assert other.buckets == state.buckets
        assert other.total == pytest.approx(state.total, rel=1e-9)


@pytest.mark.parametrize("n_shards", [2, 4, 8])
def test_sharded_serial_matches_unsharded(workload, unsharded, n_shards):
    reference, ref_registry = unsharded
    registry = MetricsRegistry()
    config = ServeConfig(**PARTITIONED)
    with metrics_mod.activated(registry):
        candidate = run_sharded_workload(
            workload, config, ShardConfig(n_shards=n_shards)
        )
    assert candidate.n_shards == n_shards
    _assert_equivalent(reference, candidate)
    _assert_metrics_merge(ref_registry, registry)


@pytest.mark.slow
def test_sharded_process_matches_unsharded(workload, unsharded):
    reference, _ = unsharded
    config = ServeConfig(**PARTITIONED)
    candidate = run_sharded_workload(
        workload,
        config,
        ShardConfig(n_shards=4, backend="process", max_workers=2),
    )
    _assert_equivalent(reference, candidate)


def test_workload_actually_degrades(unsharded):
    """The equivalence above must cover the ladder, not just FULL mode."""
    reference, _ = unsharded
    assert reference.service.degraded_batches > 0
    assert any(
        any(mode == "degraded" for _, mode in ladder)
        for ladder in reference.ladders.values()
    )


def test_batched_ingest_off_changes_nothing_user_visible(workload, unsharded):
    """The scalar fallback path serves the same numbers (1e-9 fixes)."""
    reference, _ = unsharded
    config = ServeConfig(**{**PARTITIONED, "batched_ingest": False})
    candidate = run_sharded_workload(
        workload, config, ShardConfig(n_shards=1)
    )
    assert candidate.estimates.keys() == reference.estimates.keys()
    for session_id, fix in reference.estimates.items():
        np.testing.assert_allclose(
            candidate.estimates[session_id], fix, atol=1e-9
        )
    assert candidate.ladders == reference.ladders
    assert candidate.service == reference.service


def test_sharding_requires_partitioned_isolation(workload):
    config = ServeConfig(frequency_hz=F)
    with pytest.raises(ConfigurationError, match="partitioned"):
        run_sharded_workload(workload, config, ShardConfig(n_shards=2))


# -- fleet workloads -------------------------------------------------------------


@pytest.fixture(scope="module")
def fleet_workload():
    """A two-relay fleet stream whose boundary tags hand off."""
    from repro.fleet.plan import scale_fleet
    from repro.scenarios import registry as scenario_registry
    from repro.scenarios.compiler import generate_workload as compile_workload

    spec = scale_fleet(scenario_registry.get("conveyor_flow_through"), 2)
    return compile_workload(
        spec, n_tags=4, seed=3, load=16.0, grid_resolution=0.15
    )


@pytest.fixture(scope="module")
def fleet_unsharded(fleet_workload):
    config = ServeConfig(**PARTITIONED)
    report = run_sharded_workload(
        fleet_workload, config, ShardConfig(n_shards=1)
    )
    assert report.service.handoffs > 0  # the case exists to cover these
    return report


@pytest.mark.parametrize("n_shards", [2, 4])
def test_fleet_sharded_serial_matches_unsharded(
    fleet_workload, fleet_unsharded, n_shards
):
    """Handoff bookkeeping (segment archives, handoff counters and
    latency samples) must survive sharding bit for bit."""
    config = ServeConfig(**PARTITIONED)
    candidate = run_sharded_workload(
        fleet_workload, config, ShardConfig(n_shards=n_shards)
    )
    _assert_equivalent(fleet_unsharded, candidate)
    assert candidate.service.handoffs == fleet_unsharded.service.handoffs


@pytest.mark.slow
def test_fleet_sharded_process_matches_unsharded(
    fleet_workload, fleet_unsharded
):
    config = ServeConfig(**PARTITIONED)
    candidate = run_sharded_workload(
        fleet_workload,
        config,
        ShardConfig(n_shards=4, backend="process", max_workers=2),
    )
    _assert_equivalent(fleet_unsharded, candidate)
    assert candidate.service.handoffs == fleet_unsharded.service.handoffs
