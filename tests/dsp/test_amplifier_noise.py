"""Tests for amplifiers and noise generation."""

import numpy as np
import pytest

from repro.dsp import (
    AmplifierChain,
    PowerAmplifier,
    Signal,
    VariableGainAmplifier,
    awgn,
    mean_power_dbm,
    thermal_noise,
    thermal_noise_power_dbm,
    tone,
)
from repro.dsp.units import amplitude_for_power_dbm
from repro.errors import ConfigurationError

FS = 4e6


class TestVGA:
    def test_gain_applied_in_power(self):
        sig = tone(0.0, 1e-4, FS, amplitude=amplitude_for_power_dbm(-30.0))
        out = VariableGainAmplifier(20.0).apply(sig)
        assert mean_power_dbm(out) == pytest.approx(-10.0, abs=1e-6)

    def test_gain_limits_enforced(self):
        vga = VariableGainAmplifier(0.0, min_gain_db=-5.0, max_gain_db=30.0)
        with pytest.raises(ConfigurationError):
            vga.gain_db = 31.0
        with pytest.raises(ConfigurationError):
            vga.gain_db = -6.0
        vga.gain_db = 30.0
        assert vga.gain_db == 30.0

    def test_invalid_limits_rejected(self):
        with pytest.raises(ConfigurationError):
            VariableGainAmplifier(0.0, min_gain_db=10.0, max_gain_db=0.0)


class TestPA:
    def test_small_signal_is_linear(self):
        pa = PowerAmplifier(20.0, p1db_dbm=29.0)
        sig = tone(0.0, 1e-4, FS, amplitude=amplitude_for_power_dbm(-30.0))
        assert mean_power_dbm(pa.apply(sig)) == pytest.approx(-10.0, abs=0.01)

    def test_one_db_compression_point(self):
        """At P1dB the output sits 1 dB below the linear extrapolation."""
        pa = PowerAmplifier(20.0, p1db_dbm=29.0)
        sig = tone(0.0, 1e-4, FS, amplitude=amplitude_for_power_dbm(10.0))
        assert mean_power_dbm(pa.apply(sig)) == pytest.approx(29.0, abs=0.05)

    def test_output_never_exceeds_saturation(self):
        pa = PowerAmplifier(20.0, p1db_dbm=29.0)
        sig = tone(0.0, 1e-4, FS, amplitude=amplitude_for_power_dbm(40.0))
        assert mean_power_dbm(pa.apply(sig)) <= pa.saturation_power_dbm + 1e-9

    def test_smoothness_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PowerAmplifier(20.0, 29.0, smoothness=0.0)


class TestChain:
    def test_total_gain_sums(self):
        chain = AmplifierChain(
            [VariableGainAmplifier(10.0), VariableGainAmplifier(15.0)]
        )
        assert chain.total_gain_db == pytest.approx(25.0)

    def test_chain_applies_in_order(self):
        chain = AmplifierChain(
            [VariableGainAmplifier(30.0), PowerAmplifier(10.0, p1db_dbm=29.0)]
        )
        sig = tone(0.0, 1e-4, FS, amplitude=amplitude_for_power_dbm(-20.0))
        # -20 + 30 = 10 dBm into PA, +10 dB gain => compressed near 19+ dBm
        out_dbm = mean_power_dbm(chain.apply(sig))
        assert 18.0 < out_dbm < 20.0


class TestNoise:
    def test_thermal_noise_power_formula(self):
        # kTB over 1 MHz with 6 dB NF: -173.8 + 60 + 6 = -107.8 dBm.
        assert thermal_noise_power_dbm(1e6, 6.0) == pytest.approx(-107.8)

    def test_thermal_noise_power_measured(self):
        rng = np.random.default_rng(5)
        silent = Signal.silence(20e-3, FS)
        noisy = thermal_noise(silent, 6.0, rng)
        expected = thermal_noise_power_dbm(FS, 6.0)
        assert mean_power_dbm(noisy) == pytest.approx(expected, abs=0.2)

    def test_awgn_hits_target_snr(self):
        rng = np.random.default_rng(9)
        sig = tone(10e3, 20e-3, FS)
        noisy = awgn(sig, snr_db=10.0, rng=rng)
        noise = noisy.samples - sig.samples
        snr = 10 * np.log10(
            sig.mean_power_watts / np.mean(np.abs(noise) ** 2)
        )
        assert snr == pytest.approx(10.0, abs=0.2)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            thermal_noise_power_dbm(0.0)
