"""Hypothesis round-trip properties for the dB/power converters."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsp.units import (
    amplitude_for_power_dbm,
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    watts_to_dbm,
)

#: Power levels far outside this range overflow/underflow float64 in
#: the linear domain; the package never represents signals beyond it.
reasonable_db = st.floats(min_value=-200.0, max_value=200.0)
positive_ratio = st.floats(min_value=1e-20, max_value=1e20)


@given(reasonable_db)
def test_db_linear_roundtrip(value_db):
    assert float(linear_to_db(db_to_linear(value_db))) == pytest.approx(
        value_db, abs=1e-9
    )


@given(positive_ratio)
def test_linear_db_roundtrip(ratio):
    assert float(db_to_linear(linear_to_db(ratio))) == pytest.approx(
        ratio, rel=1e-9
    )


@given(reasonable_db)
def test_dbm_watts_roundtrip(power_dbm):
    assert float(watts_to_dbm(dbm_to_watts(power_dbm))) == pytest.approx(
        power_dbm, abs=1e-9
    )


@given(reasonable_db)
def test_dbm_to_watts_is_positive_and_monotonic(power_dbm):
    watts = float(dbm_to_watts(power_dbm))
    assert watts > 0
    assert float(dbm_to_watts(power_dbm + 1.0)) > watts


def test_zero_power_maps_to_neg_inf_not_error():
    assert float(watts_to_dbm(0.0)) == -math.inf
    assert float(linear_to_db(0.0)) == -math.inf


def test_neg_inf_dbm_maps_to_zero_watts():
    assert float(dbm_to_watts(-math.inf)) == 0.0


def test_zero_dbm_is_one_milliwatt():
    assert float(dbm_to_watts(0.0)) == pytest.approx(1.0e-3)
    assert float(watts_to_dbm(1.0e-3)) == pytest.approx(0.0)


def test_array_shapes_preserved():
    values_db = np.array([[0.0, 10.0], [20.0, -10.0]])
    linear = db_to_linear(values_db)
    assert linear.shape == values_db.shape
    np.testing.assert_allclose(linear_to_db(linear), values_db)


def test_amplitude_for_power_dbm_squares_back():
    amp = amplitude_for_power_dbm(10.0)
    assert float(watts_to_dbm(amp**2)) == pytest.approx(10.0)
