"""Tests for the relay's baseband filters.

The filters carry the paper's inter-link isolation (§4.2/§6.1): the
downlink LPF must pass the 100 kHz-wide query and crush the 500 kHz tag
response; the uplink BPF must do the opposite.
"""

import numpy as np
import pytest

from repro.constants import (
    GEN2_BLF_DEFAULT,
    RELAY_BPF_CENTER_HZ,
    RELAY_BPF_HALF_BANDWIDTH_HZ,
    RELAY_LPF_CUTOFF_HZ,
)
from repro.dsp import BandPassFilter, LowPassFilter, tone, tone_power_dbm
from repro.errors import ConfigurationError, SampleRateError

FS = 4e6


@pytest.fixture
def lpf():
    return LowPassFilter(RELAY_LPF_CUTOFF_HZ, FS, order=6)


@pytest.fixture
def bpf():
    return BandPassFilter(
        RELAY_BPF_CENTER_HZ, RELAY_BPF_HALF_BANDWIDTH_HZ, FS, order=4
    )


class TestLowPass:
    def test_passband_nearly_transparent(self, lpf):
        assert lpf.attenuation_db(10e3) < 0.5

    def test_blf_rejection_enables_interlink_isolation(self, lpf):
        """Rejection at the tag's 500 kHz BLF must be very deep (Fig. 9a)."""
        assert lpf.attenuation_db(GEN2_BLF_DEFAULT) > 80.0

    def test_monotone_rolloff(self, lpf):
        freqs = [150e3, 250e3, 400e3, 700e3, 1e6]
        attens = [lpf.attenuation_db(f) for f in freqs]
        assert all(a < b for a, b in zip(attens, attens[1:]))

    def test_applied_attenuation_matches_response(self, lpf):
        probe = tone(GEN2_BLF_DEFAULT, 2e-3, FS)
        out = lpf.apply(probe)
        # skip the transient: measure over the steady-state tail
        steady = out.sliced(len(out) // 2)
        measured = tone_power_dbm(probe, GEN2_BLF_DEFAULT) - tone_power_dbm(
            steady, GEN2_BLF_DEFAULT
        )
        assert measured == pytest.approx(lpf.attenuation_db(GEN2_BLF_DEFAULT), abs=1.0)

    def test_rejects_wrong_sample_rate(self, lpf):
        probe = tone(0.0, 1e-4, FS * 2)
        with pytest.raises(SampleRateError):
            lpf.apply(probe)

    def test_invalid_cutoff_rejected(self):
        with pytest.raises(ConfigurationError):
            LowPassFilter(FS, FS)
        with pytest.raises(ConfigurationError):
            LowPassFilter(-1.0, FS)
        with pytest.raises(ConfigurationError):
            LowPassFilter(100e3, FS, order=0)

    def test_group_delay_is_positive(self, lpf):
        assert lpf.group_delay_seconds(0.0) > 0.0


class TestBandPass:
    def test_passband_nearly_transparent(self, bpf):
        assert bpf.attenuation_db(RELAY_BPF_CENTER_HZ) < 0.5

    def test_query_rejection_enables_interlink_isolation(self, bpf):
        """Rejection at the query's 50 kHz offset must be very deep (Fig. 9b)."""
        assert bpf.attenuation_db(50e3) > 80.0

    def test_band_edges(self, bpf):
        lo = RELAY_BPF_CENTER_HZ - RELAY_BPF_HALF_BANDWIDTH_HZ
        hi = RELAY_BPF_CENTER_HZ + RELAY_BPF_HALF_BANDWIDTH_HZ
        assert bpf.attenuation_db(lo) == pytest.approx(3.0, abs=0.2)
        assert bpf.attenuation_db(hi) == pytest.approx(3.0, abs=0.2)

    def test_invalid_band_rejected(self):
        with pytest.raises(ConfigurationError):
            BandPassFilter(500e3, -1.0, FS)
        with pytest.raises(ConfigurationError):
            BandPassFilter(50e3, 100e3, FS)  # lower edge below zero
        with pytest.raises(ConfigurationError):
            BandPassFilter(FS / 2, 100e3, FS)  # upper edge above Nyquist

    def test_applied_rejection_on_mixed_signal(self, lpf, bpf):
        """Two-tone separation: the guard-band property of paper Fig. 4."""
        query = tone(50e3, 4e-3, FS)  # amplitude 1 -> +30 dBm
        response = tone(GEN2_BLF_DEFAULT, 4e-3, FS, amplitude=0.1)  # +10 dBm
        both = query + response
        after_lpf = lpf.apply(both).sliced(8000)
        after_bpf = bpf.apply(both).sliced(8000)
        # LPF keeps the query (~30 dBm), removes the response (>80 dB down).
        assert tone_power_dbm(after_lpf, 50e3) > 29.0
        assert tone_power_dbm(after_lpf, GEN2_BLF_DEFAULT) < 10.0 - 80.0
        # BPF keeps the response (~10 dBm), removes the query (>80 dB down).
        assert tone_power_dbm(after_bpf, GEN2_BLF_DEFAULT) > 9.0
        assert tone_power_dbm(after_bpf, 50e3) < 30.0 - 80.0
