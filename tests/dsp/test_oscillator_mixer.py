"""Tests for oscillators and mixers, including mirrored-LO cancellation."""

import numpy as np
import pytest

from repro.dsp import Oscillator, downconvert, tone, upconvert
from repro.dsp.mixer import retune
from repro.errors import ConfigurationError, SignalError

FS = 4e6


class TestOscillator:
    def test_ideal_has_no_rotation(self):
        osc = Oscillator.ideal(915e6)
        t = np.linspace(0, 1e-3, 100)
        np.testing.assert_allclose(osc.envelope_rotation(t), 1.0)

    def test_actual_frequency_includes_cfo(self):
        osc = Oscillator(915e6, cfo_hz=500.0)
        assert osc.actual_frequency_hz == pytest.approx(915e6 + 500.0)

    def test_phase_advances_at_cfo_rate(self):
        osc = Oscillator(915e6, cfo_hz=1000.0)
        # After 1 ms at 1 kHz CFO the error phase is 2 pi * 1 = one cycle.
        assert osc.phase_at(np.array([1e-3]))[0] == pytest.approx(2.0 * np.pi)

    def test_jitter_requires_rng(self):
        with pytest.raises(ConfigurationError):
            Oscillator(915e6, phase_jitter_std_rad=0.01)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            Oscillator(-1.0)

    def test_random_oscillator_within_ppm(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            osc = Oscillator.random(915e6, rng, max_cfo_ppm=2.0)
            assert abs(osc.cfo_hz) <= 915e6 * 2e-6

    def test_jitter_statistics(self):
        rng = np.random.default_rng(3)
        osc = Oscillator(915e6, phase_jitter_std_rad=0.05, rng=rng)
        phases = osc.phase_at(np.zeros(20000))
        assert np.std(phases) == pytest.approx(0.05, rel=0.05)


class TestMixer:
    def test_downconvert_moves_center(self):
        sig = tone(0.0, 1e-4, FS, center_frequency_hz=915e6)
        down = downconvert(sig, Oscillator.ideal(915e6))
        assert down.center_frequency_hz == pytest.approx(0.0)

    def test_upconvert_moves_center(self):
        sig = tone(0.0, 1e-4, FS, center_frequency_hz=0.0)
        up = upconvert(sig, Oscillator.ideal(916e6))
        assert up.center_frequency_hz == pytest.approx(916e6)

    def test_cfo_appears_as_envelope_rotation(self):
        sig = tone(0.0, 1e-3, FS, center_frequency_hz=915e6)
        down = downconvert(sig, Oscillator(915e6, cfo_hz=10e3))
        # The envelope should now rotate at -10 kHz.
        inst_freq = np.angle(down.samples[1:] * np.conj(down.samples[:-1]))
        measured = np.mean(inst_freq) * FS / (2.0 * np.pi)
        assert measured == pytest.approx(-10e3, rel=1e-6)

    def test_mirrored_updown_cancels_cfo_and_phase(self):
        """The mechanism behind the relay's mirrored architecture (§4.3)."""
        osc = Oscillator(915e6, cfo_hz=1234.5, phase_offset_rad=2.1)
        sig = tone(5e3, 1e-3, FS, center_frequency_hz=915e6)
        restored = upconvert(downconvert(sig, osc), osc)
        np.testing.assert_allclose(restored.samples, sig.samples, atol=1e-12)

    def test_independent_oscillators_do_not_cancel(self):
        """Without mirroring, a residual rotation remains (Eq. 6)."""
        rng = np.random.default_rng(11)
        osc_down = Oscillator.random(915e6, rng)
        osc_up = Oscillator.random(915e6, rng)
        sig = tone(5e3, 1e-3, FS, center_frequency_hz=915e6)
        out = upconvert(downconvert(sig, osc_down), osc_up)
        residual = np.max(np.abs(out.samples - sig.samples))
        assert residual > 1e-3

    def test_retune_preserves_absolute_content(self):
        sig = tone(50e3, 1e-3, FS, center_frequency_hz=915e6)
        moved = retune(sig, 915e6 - 100e3)
        # Content at absolute 915.05 MHz is now at +150 kHz baseband.
        from repro.dsp import tone_power_dbm

        assert tone_power_dbm(moved, 150e3) == pytest.approx(
            tone_power_dbm(sig, 50e3), abs=1e-6
        )

    def test_retune_rejects_aliasing_shift(self):
        sig = tone(0.0, 1e-4, FS, center_frequency_hz=915e6)
        with pytest.raises(SignalError):
            retune(sig, 915e6 + 2 * FS)
