"""Tests for the complex-envelope Signal container."""

import numpy as np
import pytest

from repro.dsp import Signal
from repro.errors import SampleRateError, SignalError

FS = 4e6


def make_signal(n=100, fc=915e6, t0=0.0):
    rng = np.random.default_rng(1)
    samples = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    return Signal(samples, FS, fc, t0)


class TestConstruction:
    def test_samples_coerced_to_complex(self):
        sig = Signal(np.ones(4), FS)
        assert sig.samples.dtype == np.complex128

    def test_rejects_2d_samples(self):
        with pytest.raises(SignalError):
            Signal(np.ones((2, 2)), FS)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(SignalError):
            Signal(np.ones(4), 0.0)

    def test_silence_has_zero_power(self):
        sig = Signal.silence(1e-3, FS)
        assert len(sig) == 4000
        assert sig.mean_power_watts == 0.0


class TestProperties:
    def test_duration(self):
        assert make_signal(n=400).duration == pytest.approx(1e-4)

    def test_times_start_at_start_time(self):
        sig = make_signal(t0=0.5)
        assert sig.times[0] == pytest.approx(0.5)
        assert sig.times[1] - sig.times[0] == pytest.approx(1.0 / FS)

    def test_mean_power_of_unit_tone(self):
        sig = Signal(np.exp(1j * np.linspace(0, 10, 1000)), FS)
        assert sig.mean_power_watts == pytest.approx(1.0)

    def test_empty_signal_power_is_zero(self):
        assert Signal(np.array([]), FS).mean_power_watts == 0.0


class TestDerivation:
    def test_scaled_multiplies_amplitude(self):
        sig = make_signal()
        assert sig.scaled(2.0).mean_power_watts == pytest.approx(
            4.0 * sig.mean_power_watts
        )

    def test_delay_shifts_time_base(self):
        sig = make_signal()
        delayed = sig.delayed(1e-6)
        assert delayed.start_time == pytest.approx(1e-6)

    def test_delay_imparts_carrier_phase(self):
        sig = make_signal(fc=915e6)
        tau = 3.0 / 915e6  # three carrier cycles: phase multiple of 2 pi
        delayed = sig.delayed(tau)
        np.testing.assert_allclose(delayed.samples, sig.samples, rtol=1e-9)

    def test_half_cycle_delay_negates(self):
        sig = make_signal(fc=915e6)
        tau = 0.5 / 915e6
        delayed = sig.delayed(tau)
        np.testing.assert_allclose(delayed.samples, -sig.samples, rtol=1e-9)

    def test_slice_adjusts_start_time(self):
        sig = make_signal(n=100)
        part = sig.sliced(10, 20)
        assert len(part) == 10
        assert part.start_time == pytest.approx(10 / FS)

    def test_slice_out_of_range_raises(self):
        with pytest.raises(SignalError):
            make_signal(n=10).sliced(5, 20)


class TestCombination:
    def test_add_superposes(self):
        a = make_signal()
        b = a.scaled(-1.0)
        total = a + b
        assert total.mean_power_watts == pytest.approx(0.0, abs=1e-20)

    def test_add_pads_shorter_operand(self):
        a = make_signal(n=100)
        b = make_signal(n=50)
        total = a + b
        assert len(total) == 100
        np.testing.assert_allclose(total.samples[50:], a.samples[50:])

    def test_add_rejects_rate_mismatch(self):
        a = make_signal()
        b = Signal(a.samples, FS * 2, a.center_frequency_hz)
        with pytest.raises(SampleRateError):
            a + b

    def test_add_rejects_center_mismatch(self):
        a = make_signal(fc=915e6)
        b = Signal(a.samples, FS, 916e6)
        with pytest.raises(SignalError):
            a + b

    def test_add_rejects_time_mismatch(self):
        a = make_signal()
        b = make_signal(t0=1e-3)
        with pytest.raises(SignalError):
            a + b

    def test_concatenated_lengths(self):
        a = make_signal(n=30)
        b = make_signal(n=20)
        assert len(a.concatenated(b)) == 50
