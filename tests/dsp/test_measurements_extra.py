"""Tests for the less-traveled measurement utilities."""

import numpy as np
import pytest

from repro.dsp import Signal, awgn, tone, tone_power_dbm
from repro.dsp.measurements import (
    estimate_snr_db,
    peak_tone_power_dbm,
    phase_of_tone,
)
from repro.dsp.units import amplitude_for_power_dbm
from repro.errors import SignalError

FS = 4e6


class TestPeakToneSearch:
    def test_finds_offset_tone(self):
        """A tone 1.2 kHz off its nominal position (CFO) is still found."""
        sig = tone(50e3 + 1200.0, 4e-3, FS, amplitude_for_power_dbm(-20.0))
        nominal = tone_power_dbm(sig, 50e3)
        peaked = peak_tone_power_dbm(sig, 50e3, span_hz=5e3, step_hz=100.0)
        assert peaked == pytest.approx(-20.0, abs=0.1)
        assert nominal < peaked - 3.0  # the fixed marker underestimates

    def test_exact_tone_matches_plain_measurement(self):
        sig = tone(100e3, 4e-3, FS, amplitude_for_power_dbm(-30.0))
        assert peak_tone_power_dbm(sig, 100e3) == pytest.approx(
            tone_power_dbm(sig, 100e3), abs=0.05
        )

    def test_invalid_span(self):
        sig = tone(0.0, 1e-3, FS)
        with pytest.raises(SignalError):
            peak_tone_power_dbm(sig, 0.0, span_hz=-1.0)


class TestPhaseOfTone:
    @pytest.mark.parametrize("phase", [-3.0, -1.0, 0.0, 0.5, 2.5])
    def test_recovers_phase(self, phase):
        sig = tone(25e3, 2e-3, FS, phase_rad=phase)
        assert phase_of_tone(sig, 25e3) == pytest.approx(phase, abs=1e-6)

    def test_empty_signal_rejected(self):
        with pytest.raises(SignalError):
            phase_of_tone(Signal(np.array([]), FS), 0.0)


class TestEstimateSnr:
    def test_clean_tone_reports_high_snr(self):
        rng = np.random.default_rng(0)
        sig = awgn(tone(50e3, 10e-3, FS), 30.0, rng)
        measured = estimate_snr_db(sig, (40e3, 60e3))
        # In-band SNR over a narrow band is higher than the full-band
        # figure; it must at least confirm a strong signal.
        assert measured > 25.0

    def test_noise_only_band_reports_low_snr(self):
        rng = np.random.default_rng(1)
        sig = awgn(tone(200e3, 10e-3, FS), 10.0, rng)
        measured = estimate_snr_db(sig, (-60e3, -40e3))  # an empty band
        assert measured < 10.0

    def test_invalid_band(self):
        sig = tone(0.0, 1e-3, FS)
        with pytest.raises(SignalError):
            estimate_snr_db(sig, (10.0, 10.0))
        with pytest.raises(SignalError):
            estimate_snr_db(sig, (-FS, FS))  # covers everything

    def test_empty_signal(self):
        with pytest.raises(SignalError):
            estimate_snr_db(Signal(np.array([]), FS), (0.0, 1.0))


class TestGroupDelay:
    def test_lpf_delay_near_analytic(self):
        from repro.dsp import LowPassFilter

        lpf = LowPassFilter(100e3, FS, order=6)
        gd = lpf.group_delay_seconds(0.0)
        # A 6th-order 100 kHz Butterworth delays by roughly n/(2 pi fc)
        # ~ 10 us; accept a loose band.
        assert 3e-6 < gd < 20e-6

    def test_bpf_delay_positive_in_band(self):
        from repro.dsp import BandPassFilter

        bpf = BandPassFilter(500e3, 150e3, FS, order=3)
        assert bpf.group_delay_seconds(500e3) > 0.0
