"""Tests for dB/power conversions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dsp.units import (
    amplitude_for_power_dbm,
    db_to_linear,
    dbm_to_watts,
    linear_to_db,
    watts_to_dbm,
)


def test_known_values():
    assert db_to_linear(0.0) == pytest.approx(1.0)
    assert db_to_linear(10.0) == pytest.approx(10.0)
    assert db_to_linear(-30.0) == pytest.approx(1e-3)
    assert linear_to_db(100.0) == pytest.approx(20.0)
    assert dbm_to_watts(30.0) == pytest.approx(1.0)
    assert dbm_to_watts(0.0) == pytest.approx(1e-3)
    assert watts_to_dbm(1e-3) == pytest.approx(0.0)


def test_zero_power_maps_to_minus_inf():
    assert watts_to_dbm(0.0) == -np.inf
    assert linear_to_db(0.0) == -np.inf


def test_array_inputs():
    out = db_to_linear(np.array([0.0, 10.0, 20.0]))
    np.testing.assert_allclose(out, [1.0, 10.0, 100.0])


def test_amplitude_for_power():
    # 0 dBm = 1 mW, so amplitude is sqrt(0.001).
    assert amplitude_for_power_dbm(0.0) == pytest.approx(np.sqrt(1e-3))


@given(st.floats(min_value=-150.0, max_value=150.0))
def test_db_roundtrip(value_db):
    assert linear_to_db(db_to_linear(value_db)) == pytest.approx(value_db, abs=1e-9)


@given(st.floats(min_value=-150.0, max_value=60.0))
def test_dbm_roundtrip(power_dbm):
    assert watts_to_dbm(dbm_to_watts(power_dbm)) == pytest.approx(power_dbm, abs=1e-9)


@given(st.floats(min_value=-120.0, max_value=60.0))
def test_amplitude_squares_to_power(power_dbm):
    amp = amplitude_for_power_dbm(power_dbm)
    assert watts_to_dbm(amp**2) == pytest.approx(power_dbm, abs=1e-9)
