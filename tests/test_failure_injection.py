"""Failure-injection tests: the system must degrade loudly, not wrongly.

Each test breaks one assumption of the pipeline — a lost reference tag,
a dead relay, corrupted bits, out-of-view drones — and checks that the
failure surfaces as a typed exception or an explicit empty result, not
as a silently wrong answer.
"""

import numpy as np
import pytest

from repro.channel import Environment
from repro.errors import (
    CRCError,
    EncodingError,
    LocalizationError,
    MobilityError,
    ProtocolError,
    RelayInstabilityError,
    TagNotPoweredError,
)
from repro.gen2.bitops import bits_from_int
from repro.gen2.crc import append_crc16, check_crc16
from repro.hardware import PassiveTag, ReaderFrontend, Synthesizer
from repro.localization import (
    Grid2D,
    Localizer,
    MeasurementModel,
    ThroughRelayMeasurement,
)
from repro.mobility import LineTrajectory, OptiTrack
from repro.reader import Reader
from repro.relay import AnalogRelay, plan_gains
from repro.relay.analog_baseline import AnalogCoupling
from repro.relay.isolation import IsolationReport


class TestLostReferenceTag:
    """The drone leaves the reader's radio range: the reference RFID
    stops decoding and disentanglement must fail explicitly (§5.1 — the
    reference doubles as an in-range indicator)."""

    def make_measurements(self, dead_from=20):
        model = MeasurementModel(reader_position=(-8.0, 0.0))
        samples = LineTrajectory((0, 0), (3, 0)).sample_every(0.1)
        measurements = model.measure_along(samples, (1.5, 1.5))
        out = []
        for i, m in enumerate(measurements):
            h_ref = 0.0 + 0.0j if i >= dead_from else m.h_reference
            out.append(
                ThroughRelayMeasurement(
                    position=m.position,
                    h_target=m.h_target,
                    h_reference=h_ref,
                    snr_db=m.snr_db,
                )
            )
        return out

    def test_dead_reference_raises(self):
        measurements = self.make_measurements()
        localizer = Localizer(frequency_hz=915e6)
        with pytest.raises(LocalizationError):
            localizer.locate(
                measurements, search_grid=Grid2D(-1, 4, 0.2, 4, 0.1)
            )

    def test_filtered_measurements_still_work(self):
        """Dropping the dead poses (what a real pipeline does) recovers."""
        measurements = [
            m for m in self.make_measurements() if abs(m.h_reference) > 0
        ]
        localizer = Localizer(frequency_hz=915e6)
        result = localizer.locate(
            measurements, search_grid=Grid2D(-1, 4, 0.2, 4, 0.1)
        )
        assert result.error_to((1.5, 1.5)) < 0.3


class TestRelayFailures:
    def test_unstable_analog_gain_refused_at_construction(self):
        with pytest.raises(RelayInstabilityError):
            AnalogRelay(gain_db=20.0, coupling=AnalogCoupling(intra_db=10.0))

    def test_gain_planning_fails_loudly_on_bad_isolation(self):
        bad = IsolationReport(5.0, 5.0, 5.0, 5.0)
        with pytest.raises(RelayInstabilityError):
            plan_gains(bad)


class TestProtocolFailures:
    def test_corrupted_epc_frame_rejected(self):
        frame = list(append_crc16(bits_from_int(0xDEAD, 16)))
        frame[7] ^= 1
        with pytest.raises(CRCError):
            check_crc16(tuple(frame))

    def test_unpowered_tag_read_raises(self):
        rng = np.random.default_rng(0)
        frontend = ReaderFrontend(
            Synthesizer.random(915e6, rng), tx_power_dbm=10.0, rng=rng
        )
        reader = Reader(frontend)
        tag = PassiveTag(epc=1, position=(50.0, 0.0), rng=rng)
        attenuate = lambda s: s.scaled(1e-5)
        with pytest.raises(TagNotPoweredError):
            reader.read_single_tag(tag, downlink=attenuate, uplink=attenuate)

    def test_swapped_rn16_breaks_handshake(self):
        """An ACK with the wrong handle never yields an EPC."""
        from repro.gen2 import Ack, Gen2Tag, Query

        tag = Gen2Tag(bits_from_int(0xF00D, 96), np.random.default_rng(1))
        rn16 = tag.handle(Query(q=0))
        assert tag.handle(Ack(rn16=rn16.rn16 ^ 0xFFFF)) is None


class TestLocalizationEdgeCases:
    def test_collapsed_aperture_rejected(self):
        """Identical poses form a ring ambiguity, not an array."""
        model = MeasurementModel(reader_position=(-8.0, 0.0))
        measurements = [
            model.measure((1.0, 0.0), (2.0, 1.0)) for _ in range(5)
        ]
        localizer = Localizer(frequency_hz=915e6)
        with pytest.raises(LocalizationError):
            localizer.locate(
                measurements, search_grid=Grid2D(-1, 4, 0.2, 4, 0.1)
            )

    def test_nan_channel_never_silently_wins(self):
        model = MeasurementModel(reader_position=(-8.0, 0.0))
        samples = LineTrajectory((0, 0), (3, 0)).sample_every(0.1)
        measurements = model.measure_along(samples, (1.5, 1.5))
        poisoned = [
            ThroughRelayMeasurement(
                position=m.position,
                h_target=complex(np.nan, np.nan) if i == 3 else m.h_target,
                h_reference=m.h_reference,
                snr_db=m.snr_db,
            )
            for i, m in enumerate(measurements)
        ]
        localizer = Localizer(frequency_hz=915e6)
        # One NaN pose poisons the whole coherent sum; the solver must
        # raise rather than return an arbitrary location.
        with pytest.raises(LocalizationError):
            localizer.locate(
                poisoned, search_grid=Grid2D(-1, 4, 0.2, 4, 0.1)
            )


class TestMobilityFailures:
    def test_out_of_view_drone_rejected_by_optitrack(self):
        tracker = OptiTrack(coverage_min=(0, 0), coverage_max=(5, 5))
        flight = LineTrajectory((4, 4), (8, 4)).sample_every(0.5)
        with pytest.raises(MobilityError):
            tracker.observe_trajectory(flight)
