"""Tests for the passive-tag and synthesizer hardware models."""

import numpy as np
import pytest

from repro.constants import TAG_SENSITIVITY_DBM
from repro.dsp import Signal, tone
from repro.errors import ConfigurationError, TagNotPoweredError
from repro.hardware import PassiveTag, Synthesizer, TagPowerState
from repro.hardware.reader_frontend import ReaderFrontend


def make_tag(**kwargs):
    return PassiveTag(
        epc=0xABC, position=(1.0, 2.0), rng=np.random.default_rng(0), **kwargs
    )


class TestPassiveTagPower:
    def test_powered_above_sensitivity(self):
        tag = make_tag()
        assert tag.is_powered(TAG_SENSITIVITY_DBM + 1.0)
        assert tag.power_state(TAG_SENSITIVITY_DBM + 1.0) == TagPowerState.POWERED

    def test_unpowered_below_sensitivity(self):
        tag = make_tag()
        assert not tag.is_powered(TAG_SENSITIVITY_DBM - 1.0)
        assert (
            tag.power_state(TAG_SENSITIVITY_DBM - 1.0)
            == TagPowerState.INSUFFICIENT_POWER
        )

    def test_modulation_depth_gate(self):
        tag = make_tag()
        assert (
            tag.power_state(0.0, modulation_depth=0.01)
            == TagPowerState.INSUFFICIENT_MODULATION
        )

    def test_epc_from_int(self):
        tag = make_tag()
        assert tag.epc_int == 0xABC
        assert len(tag.epc) == 96

    def test_epc_from_bits(self):
        bits = tuple([1, 0] * 48)
        tag = PassiveTag(epc=bits, position=(0, 0), rng=np.random.default_rng(0))
        assert tag.epc == bits

    def test_invalid_depth_threshold(self):
        with pytest.raises(ConfigurationError):
            make_tag(min_modulation_depth=0.0)


class TestBackscatter:
    def test_backscattered_power_loss(self):
        tag = make_tag()
        assert tag.backscattered_power_dbm(-10.0) == pytest.approx(-16.0)

    def test_backscatter_requires_power(self):
        tag = make_tag()
        with pytest.raises(TagNotPoweredError):
            tag.backscattered_power_dbm(-30.0)

    def test_modulate_multiplies_waveforms(self):
        tag = make_tag()
        carrier = tone(0.0, 1e-4, 4e6, amplitude=1.0)
        reflection = Signal(
            np.tile([1.0, 0.0], len(carrier) // 2).astype(complex), 4e6
        )
        out = tag.modulate(carrier, reflection)
        # Zeros where non-reflective; attenuated carrier where reflective.
        assert np.all(out.samples[1::2] == 0)
        expected = np.sqrt(10 ** (-tag.modulation_loss_db / 10))
        np.testing.assert_allclose(np.abs(out.samples[::2]), expected, rtol=1e-9)


class TestSynthesizer:
    def test_cfo_scales_with_frequency(self):
        synth = Synthesizer(915e6, ppm_error=1.0)
        assert synth.oscillator.cfo_hz == pytest.approx(915.0)
        synth.tune(1.83e9)
        assert synth.oscillator.cfo_hz == pytest.approx(1830.0)

    def test_oscillator_stable_until_retuned(self):
        synth = Synthesizer(915e6)
        assert synth.oscillator is synth.oscillator

    def test_invalid_frequency(self):
        with pytest.raises(ConfigurationError):
            Synthesizer(0.0)
        with pytest.raises(ConfigurationError):
            Synthesizer(915e6).tune(-1.0)

    def test_implausible_ppm_rejected(self):
        with pytest.raises(ConfigurationError):
            Synthesizer(915e6, ppm_error=500.0)

    def test_random_within_bounds(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            synth = Synthesizer.random(915e6, rng, max_ppm=2.0)
            assert abs(synth.ppm_error) <= 2.0


class TestReaderFrontend:
    def test_transmit_power(self):
        from repro.dsp import mean_power_dbm

        synth = Synthesizer(915e6)
        fe = ReaderFrontend(synth, tx_power_dbm=20.0)
        cw = fe.continuous_wave(1e-4, 4e6)
        assert mean_power_dbm(cw) == pytest.approx(20.0, abs=1e-6)
        assert cw.center_frequency_hz == pytest.approx(915e6)

    def test_eirp_limit(self):
        with pytest.raises(ConfigurationError):
            ReaderFrontend(Synthesizer(915e6), tx_power_dbm=40.0)

    def test_coherent_receive_cancels_own_cfo(self):
        synth = Synthesizer(915e6, ppm_error=1.5)
        fe = ReaderFrontend(synth, tx_power_dbm=20.0)
        cw = fe.continuous_wave(1e-3, 4e6)
        baseband = fe.receive(cw, add_noise=False)
        # Pure DC at baseband: the TX and RX share the LO.
        assert np.std(np.angle(baseband.samples)) < 1e-9

    def test_receive_noise_requires_rng(self):
        fe = ReaderFrontend(Synthesizer(915e6), tx_power_dbm=20.0)
        cw = fe.continuous_wave(1e-4, 4e6)
        with pytest.raises(ConfigurationError):
            fe.receive(cw, add_noise=True)
