"""Tests for the end-to-end world simulation and per-pose inventory."""

import numpy as np
import pytest

from repro.channel import Environment
from repro.errors import ConfigurationError
from repro.hardware import PassiveTag
from repro.mobility import LineTrajectory
from repro.sim import TagObservation, World, WorldConfig
from repro.sim.events import inventory_at_pose


def make_world(n_tags=3, reader=(-10.0, 0.0), use_mac=True, seed=0, spacing=0.25):
    rng = np.random.default_rng(seed)
    tags = [
        PassiveTag(
            epc=0x1000 + i,
            position=(0.5 + i * 0.8, 1.2),
            rng=np.random.default_rng(seed + 1 + i),
        )
        for i in range(n_tags)
    ]
    config = WorldConfig(use_gen2_mac=use_mac, sample_spacing_m=spacing)
    return World(Environment.free_space(), reader, tags, rng, config)


class TestEvents:
    def test_inventory_reads_powered_tags(self):
        rng = np.random.default_rng(0)
        tags = [
            PassiveTag(epc=i + 1, position=(i, 0), rng=np.random.default_rng(i))
            for i in range(4)
        ]
        read = inventory_at_pose(tags, powered=lambda t: True, rng=rng)
        assert read == {t.epc_int for t in tags}

    def test_unpowered_tags_silent(self):
        rng = np.random.default_rng(0)
        tags = [
            PassiveTag(epc=i + 1, position=(i, 0), rng=np.random.default_rng(i))
            for i in range(4)
        ]
        read = inventory_at_pose(tags, powered=lambda t: t.epc_int <= 2, rng=rng)
        assert read == {1, 2}

    def test_repeated_poses_keep_reading(self):
        """Flag toggling must not lose tags between poses (A/B passes)."""
        rng = np.random.default_rng(0)
        tags = [
            PassiveTag(epc=i + 1, position=(i, 0), rng=np.random.default_rng(i))
            for i in range(3)
        ]
        for _ in range(3):
            read = inventory_at_pose(tags, powered=lambda t: True, rng=rng)
            assert read == {1, 2, 3}


class TestWorld:
    def test_scan_collects_measurements(self):
        world = make_world()
        observations = world.scan(LineTrajectory((0.0, 0.0), (3.0, 0.0)))
        assert len(observations) == 3
        for obs in observations.values():
            assert obs.n_reads >= 5

    def test_scan_and_localize(self):
        world = make_world(n_tags=1, use_mac=False, spacing=0.1)
        observations = world.scan(LineTrajectory((0.0, 0.0), (3.0, 0.0)))
        obs = next(iter(observations.values()))
        from repro.localization import Grid2D

        grid = Grid2D(-1.0, 4.0, 0.2, 4.0, 0.1)
        result = world.localize(obs, search_grid=grid)
        assert result.error_to(obs.true_position) < 0.5

    def test_unreachable_tag_gets_no_reads(self):
        rng = np.random.default_rng(0)
        tags = [
            PassiveTag(epc=1, position=(1.0, 1.0), rng=np.random.default_rng(1)),
            PassiveTag(epc=2, position=(1.0, 40.0), rng=np.random.default_rng(2)),
        ]
        world = World(
            Environment.free_space(), (-10.0, 0.0), tags, rng,
            WorldConfig(sample_spacing_m=0.25),
        )
        observations = world.scan(LineTrajectory((0.0, 0.0), (3.0, 0.0)))
        assert observations[1].n_reads > 0
        assert observations[2].n_reads == 0

    def test_relay_inoperational_far_from_reader(self):
        world = make_world(reader=(-2000.0, 0.0))
        assert not world.relay_operational(np.array([0.0, 0.0]))
        observations = world.scan(LineTrajectory((0.0, 0.0), (2.0, 0.0)))
        assert all(o.n_reads == 0 for o in observations.values())

    def test_duplicate_epcs_rejected(self):
        rng = np.random.default_rng(0)
        tags = [
            PassiveTag(epc=7, position=(0, 0), rng=np.random.default_rng(1)),
            PassiveTag(epc=7, position=(1, 0), rng=np.random.default_rng(2)),
        ]
        with pytest.raises(ConfigurationError):
            World(Environment.free_space(), (-5.0, 0.0), tags, rng)

    def test_estimate_snr_falls_with_distance(self):
        world = make_world()
        tag = world.tags[0]
        near = world.estimate_snr_db(np.array([-5.0, 0.0]), tag)
        far = world.estimate_snr_db(np.array([30.0, 0.0]), tag)
        assert near > far

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(sample_spacing_m=0.0)
