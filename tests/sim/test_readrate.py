"""Tests for the Fig. 11 read-rate model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.readrate import RangeConfig, RangeModel


@pytest.fixture
def model():
    return RangeModel()


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestConfig:
    def test_noise_floor(self):
        config = RangeConfig(noise_bandwidth_hz=1e6, noise_figure_db=6.0)
        assert config.noise_floor_dbm == pytest.approx(-107.8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RangeConfig(frequency_hz=0.0)
        with pytest.raises(ConfigurationError):
            RangeConfig(fading_std_db=-1.0)
        with pytest.raises(ConfigurationError):
            RangeConfig(relay_isolation_db=0.0)


class TestNoRelay:
    def test_close_range_always_reads(self, model):
        assert model.no_relay_read(1.0, rng=None)

    def test_far_range_never_reads(self, model):
        assert not model.no_relay_read(20.0, rng=None)

    def test_deterministic_cutoff_consistent_with_budget(self, model):
        """Without fading there is a sharp power-up threshold."""
        reads = [model.no_relay_read(d, rng=None) for d in np.arange(1.0, 20.0, 0.5)]
        # Monotone: once dead, stays dead.
        first_fail = reads.index(False)
        assert all(not r for r in reads[first_fail:])

    def test_read_rate_declines(self, model, rng):
        near = model.read_rate(3.0, "no_relay", rng, 200)
        far = model.read_rate(9.0, "no_relay", rng, 200)
        assert near > far


class TestRelay:
    def test_los_extends_range_10x(self, model, rng):
        assert model.read_rate(50.0, "relay_los", rng, 100) > 0.9

    def test_oscillation_cliff(self, model):
        """Beyond the Eq. 3/4 limit the relay cannot operate at all.

        With 82 dB of isolation, Eq. 4 allows ~330 m; at 400 m the
        free-space loss exceeds the isolation and the loop rings.
        """
        assert model.relay_read(100.0, rng=None, line_of_sight=True)
        assert not model.relay_read(400.0, rng=None, line_of_sight=True)

    def test_nlos_worse_than_los(self, model, rng):
        los = model.read_rate(55.0, "relay_los", rng, 200)
        nlos = model.read_rate(55.0, "relay_nlos", rng, 200)
        assert nlos < los

    def test_relay_tag_distance_limited(self, model):
        """The relay-tag half-link stays power-limited to a few meters
        (paper footnote 2) — the relay does not extend THAT link."""
        assert model.relay_read(20.0, rng=None, relay_tag_distance_m=2.0)
        assert not model.relay_read(20.0, rng=None, relay_tag_distance_m=12.0)

    def test_higher_isolation_longer_range(self, rng):
        low = RangeModel(RangeConfig(relay_isolation_db=60.0))
        high = RangeModel(RangeConfig(relay_isolation_db=90.0))
        d = 40.0
        assert not low.relay_read(d, rng=None)
        assert high.relay_read(d, rng=None)


class TestReadRate:
    def test_rate_bounds(self, model, rng):
        for mode in ("no_relay", "relay_los", "relay_nlos"):
            rate = model.read_rate(5.0, mode, rng, 50)
            assert 0.0 <= rate <= 1.0

    def test_unknown_mode_rejected(self, model, rng):
        with pytest.raises(ConfigurationError):
            model.read_rate(5.0, "warp_drive", rng)

    def test_zero_trials_rejected(self, model, rng):
        with pytest.raises(ConfigurationError):
            model.read_rate(5.0, "no_relay", rng, trials=0)
