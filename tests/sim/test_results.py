"""Tests for result statistics and table formatting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.results import (
    ResultError,
    empirical_cdf,
    format_table,
    percentile,
    summarize,
)

value_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=200
)


class TestCdf:
    def test_sorted_and_normalized(self):
        values, probs = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_allclose(values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(probs, [1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ResultError):
            empirical_cdf([])

    @given(value_lists)
    def test_cdf_properties(self, values):
        v, p = empirical_cdf(values)
        assert np.all(np.diff(v) >= 0)
        assert np.all(np.diff(p) > 0)
        assert p[-1] == pytest.approx(1.0)


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50.0) == 2.0

    def test_bounds_enforced(self):
        with pytest.raises(ResultError):
            percentile([1.0], 101.0)
        with pytest.raises(ResultError):
            percentile([], 50.0)

    @given(value_lists)
    def test_monotone_in_q(self, values):
        assert percentile(values, 10.0) <= percentile(values, 90.0)


class TestSummarize:
    def test_fields(self):
        s = summarize(np.arange(101, dtype=float))
        assert s.n == 101
        assert s.median == 50.0
        assert s.p10 == pytest.approx(10.0)
        assert s.p90 == pytest.approx(90.0)
        assert s.mean == pytest.approx(50.0)

    def test_row_rendering(self):
        s = summarize([1.0, 2.0])
        row = s.row("metric", " m")
        assert row[0] == "metric"
        assert len(row) == 6

    def test_empty_rejected(self):
        with pytest.raises(ResultError):
            summarize([])


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ResultError):
            format_table(["a"], [["1", "2"]])

    def test_no_headers_rejected(self):
        with pytest.raises(ResultError):
            format_table([], [])

    def test_empty_rows_ok(self):
        table = format_table(["a", "b"], [])
        assert "a" in table
