"""Tests for the EPC-to-object catalog and scan reconciliation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.inventory_db import Item, ItemDatabase, LocatedItem


def catalog():
    return ItemDatabase(
        [
            Item(epc=0xA1, name="pallet-jack", expected_position=(1.0, 2.0)),
            Item(epc=0xA2, name="drill-box", expected_position=(3.0, 2.0)),
            Item(epc=0xA3, name="cable-spool"),
        ]
    )


class TestCatalog:
    def test_lookup(self):
        db = catalog()
        assert db.lookup(0xA1).name == "pallet-jack"
        assert db.lookup(0xFF) is None
        assert 0xA2 in db
        assert len(db) == 3

    def test_duplicate_epc_rejected(self):
        db = catalog()
        with pytest.raises(ConfigurationError):
            db.add(Item(epc=0xA1, name="impostor"))

    def test_item_validation(self):
        with pytest.raises(ConfigurationError):
            Item(epc=-1, name="x")
        with pytest.raises(ConfigurationError):
            Item(epc=1, name="")


class TestReconcile:
    def test_full_report(self):
        db = catalog()
        report = db.reconcile(
            located={
                0xA1: np.array([1.05, 2.02]),
                0xA2: np.array([7.0, 2.0]),  # far from its shelf
                0xBB: np.array([0.0, 0.0]),  # a foreign tag
            },
            read_counts={0xA1: 12, 0xA2: 9},
        )
        assert {f.item.epc for f in report.found} == {0xA1, 0xA2}
        assert [m.epc for m in report.missing] == [0xA3]
        assert report.unexpected_epcs == [0xBB]
        assert report.found_fraction == pytest.approx(2.0 / 3.0)

    def test_displacement(self):
        db = catalog()
        report = db.reconcile({0xA1: np.array([1.0, 3.0])})
        found = report.found[0]
        assert found.displacement_m == pytest.approx(1.0)

    def test_displacement_none_without_expectation(self):
        db = catalog()
        report = db.reconcile({0xA3: np.array([5.0, 5.0])})
        assert report.found[0].displacement_m is None

    def test_misplaced_detection(self):
        db = catalog()
        report = db.reconcile(
            {0xA1: np.array([1.1, 2.0]), 0xA2: np.array([6.0, 2.0])}
        )
        misplaced = report.misplaced(threshold_m=1.0)
        assert [m.item.epc for m in misplaced] == [0xA2]
        with pytest.raises(ConfigurationError):
            report.misplaced(threshold_m=0.0)

    def test_empty_scan_all_missing(self):
        db = catalog()
        report = db.reconcile({})
        assert len(report.missing) == 3
        assert report.found_fraction == 0.0

    def test_empty_catalog(self):
        report = ItemDatabase().reconcile({0x1: np.zeros(2)})
        assert report.unexpected_epcs == [0x1]
        assert report.found_fraction == 1.0


class TestEndToEndWithWorld:
    def test_scan_localize_reconcile(self):
        """The full §3 workflow: scan, localize, look up, reconcile."""
        from repro.channel import Environment
        from repro.hardware import PassiveTag
        from repro.localization import Grid2D
        from repro.mobility import LineTrajectory
        from repro.sim import World, WorldConfig

        rng = np.random.default_rng(0)
        positions = {0xB1: (0.8, 1.4), 0xB2: (2.2, 1.6)}
        tags = [
            PassiveTag(epc=epc, position=pos, rng=np.random.default_rng(epc))
            for epc, pos in positions.items()
        ]
        db = ItemDatabase(
            [
                Item(epc=0xB1, name="crate-A", expected_position=(0.8, 1.4)),
                Item(epc=0xB2, name="crate-B", expected_position=(2.2, 1.6)),
                Item(epc=0xB3, name="crate-C", expected_position=(9.0, 1.0)),
            ]
        )
        world = World(
            Environment.free_space(), (-10.0, 0.0), tags, rng,
            WorldConfig(sample_spacing_m=0.1, use_gen2_mac=False),
        )
        observations = world.scan(LineTrajectory((0.0, 0.0), (3.0, 0.0)))
        grid = Grid2D(-1.0, 4.0, 0.2, 4.0, 0.1)
        located = {
            epc: world.localize(obs, search_grid=grid).position
            for epc, obs in observations.items()
            if obs.n_reads >= 5
        }
        counts = {epc: obs.n_reads for epc, obs in observations.items()}
        report = db.reconcile(located, counts)
        assert {f.item.name for f in report.found} == {"crate-A", "crate-B"}
        assert [m.name for m in report.missing] == ["crate-C"]
        assert all(f.displacement_m < 0.5 for f in report.found)
        assert not report.misplaced(threshold_m=1.0)
