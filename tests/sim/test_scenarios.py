"""Tests for the canned experiment scenarios (trial-builder surface)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scenarios.trials import (
    aperture_trial,
    distance_trial,
    heatmap_trial,
    warehouse_trial,
)
from repro.sim.scenarios import projected_distance_snr_db


class TestHeatmapScenarios:
    def test_los_scenario_shape(self):
        sc = heatmap_trial("los_aisle", 0)
        assert len(sc.measurements) > 20
        assert sc.search_grid.n_points > 100
        assert sc.calibration_gain_linear > 0

    def test_multipath_scenario_has_reflectors(self):
        sc = heatmap_trial("cold_storage_aisles", 0)
        assert "multipath" in sc.description

    def test_deterministic_per_seed(self):
        a = heatmap_trial("los_aisle", 3)
        b = heatmap_trial("los_aisle", 3)
        assert a.measurements[0].h_target == b.measurements[0].h_target

    def test_seeds_differ(self):
        a = heatmap_trial("los_aisle", 1)
        b = heatmap_trial("los_aisle", 2)
        assert a.measurements[0].h_target != b.measurements[0].h_target


class TestWarehouseTrial:
    def test_tag_within_search_grid(self):
        for seed in range(5):
            sc = warehouse_trial("paper_warehouse_two_floor", seed)
            g = sc.search_grid
            assert g.x_min <= sc.tag_position[0] <= g.x_max
            assert g.y_min - 0.25 <= sc.tag_position[1] <= g.y_max + 0.25

    def test_trajectory_rotated_to_x_axis(self):
        sc = warehouse_trial("paper_warehouse_two_floor", 1)
        ys = sc.trajectory_positions[:, 1]
        # After rotation the path runs along x with only jitter in y.
        assert np.std(ys) < 0.3

    def test_measurement_counts(self):
        sc = warehouse_trial("paper_warehouse_two_floor", 2)
        assert len(sc.measurements) == len(sc.trajectory_positions)
        assert len(sc.measurements) > 40


class TestMicrobenchmarks:
    def test_aperture_controls_path_extent(self):
        short = aperture_trial("aisle_microbench", 0.5, 0)
        long = aperture_trial("aisle_microbench", 2.5, 0)
        extent = lambda sc: np.ptp(sc.trajectory_positions[:, 0])
        assert extent(short) == pytest.approx(0.5, abs=0.1)
        assert extent(long) == pytest.approx(2.5, abs=0.1)

    def test_invalid_aperture(self):
        with pytest.raises(ConfigurationError):
            aperture_trial("aisle_microbench", -1.0, 0)

    def test_rssi_calibration_mismatch_present(self):
        sc = aperture_trial("aisle_microbench", 1.0, 0)
        assert sc.rssi_calibration_gain_linear != sc.calibration_gain_linear

    def test_distance_maps_to_snr(self):
        near = distance_trial("aisle_microbench", 5.0, 0)
        far = distance_trial("aisle_microbench", 50.0, 0)
        assert near.measurements[0].snr_db > far.measurements[0].snr_db

    def test_snr_law(self):
        assert projected_distance_snr_db(5.0) == pytest.approx(46.0)
        assert projected_distance_snr_db(50.0) == pytest.approx(6.0)
        with pytest.raises(ConfigurationError):
            projected_distance_snr_db(0.0)
