"""Tests for ray tracing, multipath channels, and environments."""

import numpy as np
import pytest

from repro.channel import (
    Environment,
    Material,
    Ray,
    Wall,
    one_way_channel,
    round_trip_channel,
    trace_rays,
)
from repro.channel.environment import CONCRETE, STEEL
from repro.channel.pathloss import free_space_amplitude
from repro.constants import SPEED_OF_LIGHT, UHF_CENTER_FREQUENCY
from repro.errors import GeometryError

F = UHF_CENTER_FREQUENCY


class TestTraceRays:
    def test_free_space_gives_single_direct_ray(self):
        rays = trace_rays((0, 0), (10, 0))
        assert len(rays) == 1
        assert rays[0].bounces == 0
        assert rays[0].length == pytest.approx(10.0)
        assert rays[0].gain == pytest.approx(1.0)

    def test_wall_adds_bounce_path(self):
        wall = Wall((0, 2), (10, 2), reflectivity=0.8)
        rays = trace_rays((1, 0), (9, 0), [wall])
        assert len(rays) == 2
        bounce = rays[1]
        assert bounce.bounces == 1
        # Image method: mirror target is at (9, 4); path length is
        # |(1,0) - (9,4)| = sqrt(64+16).
        assert bounce.length == pytest.approx(np.sqrt(80.0))
        assert bounce.gain == pytest.approx(0.8)

    def test_obstructing_wall_attenuates_direct(self):
        wall = Wall((5, -5), (5, 5), transmission_loss_db=20.0, reflectivity=0.0)
        rays = trace_rays((0, 0), (10, 0), [wall])
        assert len(rays) == 1
        assert rays[0].gain == pytest.approx(10 ** (-20 / 20))

    def test_nonreflective_wall_adds_no_bounce(self):
        wall = Wall((0, 2), (10, 2), reflectivity=0.0)
        rays = trace_rays((1, 0), (9, 0), [wall])
        assert len(rays) == 1

    def test_double_bounce_between_parallel_walls(self):
        south = Wall((0, -1), (20, -1), reflectivity=0.9, name="s")
        north = Wall((0, 1), (20, 1), reflectivity=0.9, name="n")
        rays = trace_rays((1, 0), (9, 0), [south, north], max_reflections=2)
        bounces = sorted(r.bounces for r in rays)
        assert bounces == [0, 1, 1, 2, 2]
        for ray in rays:
            if ray.bounces == 2:
                assert ray.gain == pytest.approx(0.81)

    def test_bounce_longer_than_direct(self):
        """Paper §5.2's key insight: reflections travel farther."""
        env = Environment.warehouse_aisle()
        rays = env.rays_between((0.5, 0.2), (9.0, -0.7))
        direct = rays[0].length
        for ray in rays[1:]:
            assert ray.length > direct

    def test_min_gain_prunes_weak_paths(self):
        wall = Wall((0, 2), (10, 2), reflectivity=1e-8)
        rays = trace_rays((1, 0), (9, 0), [wall], min_gain=1e-6)
        assert len(rays) == 1

    def test_same_point_rejected(self):
        with pytest.raises(GeometryError):
            trace_rays((1, 1), (1, 1))

    def test_excessive_order_rejected(self):
        with pytest.raises(GeometryError):
            trace_rays((0, 0), (1, 0), max_reflections=3)


class TestChannels:
    def test_single_path_phase_matches_distance(self):
        d = 7.3
        rays = [Ray(length=d, gain=1.0, bounces=0)]
        h = one_way_channel(rays, F)
        expected_phase = -2 * np.pi * F * d / SPEED_OF_LIGHT
        assert np.angle(h) == pytest.approx(
            np.angle(np.exp(1j * expected_phase)), abs=1e-9
        )
        assert abs(h) == pytest.approx(free_space_amplitude(d, F))

    def test_round_trip_is_square(self):
        rays = [Ray(5.0, 1.0, 0), Ray(7.0, 0.5, 1)]
        h1 = one_way_channel(rays, F)
        assert round_trip_channel(rays, F) == pytest.approx(h1 * h1)

    def test_round_trip_single_path_doubles_phase(self):
        d = 4.0
        rays = [Ray(length=d, gain=1.0, bounces=0)]
        h = round_trip_channel(rays, F)
        expected = -2 * np.pi * F * 2 * d / SPEED_OF_LIGHT
        assert np.angle(h) == pytest.approx(np.angle(np.exp(1j * expected)), abs=1e-9)

    def test_destructive_interference_possible(self):
        """Two paths half a wavelength apart cancel (RFID blind spots)."""
        lam = SPEED_OF_LIGHT / F
        rays_constructive = [Ray(10.0, 1.0, 0), Ray(10.0 + lam, 1.0, 1)]
        rays_destructive = [Ray(10.0, 1.0, 0), Ray(10.0 + lam / 2, 1.0, 1)]
        h_c = abs(one_way_channel(rays_constructive, F))
        h_d = abs(one_way_channel(rays_destructive, F))
        assert h_d < 0.02 * h_c

    def test_invalid_frequency(self):
        with pytest.raises(GeometryError):
            one_way_channel([Ray(1.0, 1.0, 0)], 0.0)


class TestEnvironment:
    def test_free_space_has_los_everywhere(self):
        env = Environment.free_space()
        assert env.has_line_of_sight((0, 0), (100, 100))
        assert env.obstruction_loss_db((0, 0), (100, 100)) == 0.0

    def test_through_wall_blocks_los(self):
        env = Environment.through_wall(wall_x=5.0, material=CONCRETE)
        assert not env.has_line_of_sight((0, 0), (10, 0))
        assert env.obstruction_loss_db((0, 0), (10, 0)) == pytest.approx(
            CONCRETE.transmission_loss_db
        )

    def test_parallel_to_wall_keeps_los(self):
        env = Environment.through_wall(wall_x=5.0)
        assert env.has_line_of_sight((0, 0), (0, 10))

    def test_warehouse_aisle_is_multipath_rich(self):
        env = Environment.warehouse_aisle()
        rays = env.rays_between((1, 0), (8, 0.5))
        assert sum(1 for r in rays if r.bounces > 0) >= 2

    def test_two_floor_building_dimensions(self):
        env = Environment.two_floor_building()
        assert len(env.walls) >= 6

    def test_add_wall_uses_material(self):
        env = Environment()
        wall = env.add_wall((0, 0), (1, 0), STEEL)
        assert wall.reflectivity == STEEL.reflectivity
        assert wall.transmission_loss_db == STEEL.transmission_loss_db

    def test_invalid_corridor(self):
        with pytest.raises(GeometryError):
            Environment.corridor(length_m=-1.0)

    def test_channel_weaker_through_wall(self):
        blocked = Environment.through_wall(wall_x=5.0, material=CONCRETE)
        clear = Environment.free_space()
        h_clear = abs(clear.channel((0, 0), (10, 0), F))
        h_blocked = abs(blocked.channel((0, 0), (10, 0), F))
        assert h_blocked < h_clear
