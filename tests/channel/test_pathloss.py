"""Tests for path-loss models, anchored to the paper's Eq. 3-4 numbers."""

import pytest
from hypothesis import given, strategies as st

from repro.channel.pathloss import (
    free_space_amplitude,
    free_space_gain_db,
    free_space_path_loss_db,
    free_space_range_for_loss,
    log_distance_path_loss_db,
)
from repro.constants import SPEED_OF_LIGHT, UHF_CENTER_FREQUENCY
from repro.errors import LinkBudgetError

F = UHF_CENTER_FREQUENCY


class TestFreeSpace:
    def test_known_value_at_one_meter(self):
        # 20 log10(4 pi / lambda) at 915 MHz ~= 31.7 dB.
        assert free_space_path_loss_db(1.0, F) == pytest.approx(31.67, abs=0.05)

    def test_six_db_per_doubling(self):
        assert free_space_path_loss_db(20.0, F) - free_space_path_loss_db(
            10.0, F
        ) == pytest.approx(6.02, abs=0.01)

    def test_gain_is_negative_loss(self):
        assert free_space_gain_db(5.0, F) == pytest.approx(
            -free_space_path_loss_db(5.0, F)
        )

    def test_amplitude_squares_to_gain(self):
        import numpy as np

        amp = free_space_amplitude(7.0, F)
        assert 20.0 * np.log10(amp) == pytest.approx(free_space_gain_db(7.0, F))

    def test_invalid_inputs(self):
        with pytest.raises(LinkBudgetError):
            free_space_path_loss_db(0.0, F)
        with pytest.raises(LinkBudgetError):
            free_space_path_loss_db(1.0, -1.0)


class TestRangeForLoss:
    """Paper Eq. 4: isolation -> maximum stable relay range."""

    def test_thirty_db_is_sub_meter(self):
        r = free_space_range_for_loss(30.0, F)
        assert 0.7 < r < 0.9  # paper: 0.75 m

    def test_eighty_db_is_hundreds_of_meters(self):
        r = free_space_range_for_loss(80.0, F)
        assert 230.0 < r < 270.0  # paper: 238 m

    def test_seventy_db_matches_lisolation_claim(self):
        """Paper §7.2: >70 dB isolation -> theoretical LoS range 83 m."""
        r = free_space_range_for_loss(70.0, F)
        assert 75.0 < r < 90.0

    def test_inverse_of_path_loss(self):
        r = free_space_range_for_loss(55.0, F)
        assert free_space_path_loss_db(r, F) == pytest.approx(55.0, abs=1e-9)

    @given(st.floats(min_value=10.0, max_value=120.0))
    def test_roundtrip_property(self, loss_db):
        r = free_space_range_for_loss(loss_db, F)
        assert free_space_path_loss_db(r, F) == pytest.approx(loss_db, abs=1e-6)


class TestLogDistance:
    def test_matches_free_space_at_reference(self):
        assert log_distance_path_loss_db(1.0, F) == pytest.approx(
            free_space_path_loss_db(1.0, F)
        )

    def test_steeper_decay_beyond_reference(self):
        fs = free_space_path_loss_db(10.0, F)
        ld = log_distance_path_loss_db(10.0, F, exponent=3.0)
        assert ld > fs

    def test_below_reference_uses_free_space(self):
        assert log_distance_path_loss_db(0.5, F, exponent=4.0) == pytest.approx(
            free_space_path_loss_db(0.5, F)
        )

    def test_exponent_scaling(self):
        l2 = log_distance_path_loss_db(100.0, F, exponent=2.0)
        l4 = log_distance_path_loss_db(100.0, F, exponent=4.0)
        assert l4 - l2 == pytest.approx(10.0 * 2.0 * 2.0)  # 10*(4-2)*log10(100)

    def test_invalid_exponent(self):
        with pytest.raises(LinkBudgetError):
            log_distance_path_loss_db(10.0, F, exponent=0.0)

    @given(
        st.floats(min_value=0.1, max_value=500.0),
        st.floats(min_value=2.0, max_value=4.0),
    )
    def test_monotone_in_distance(self, d, n):
        a = log_distance_path_loss_db(d, F, exponent=n)
        b = log_distance_path_loss_db(d * 1.5, F, exponent=n)
        assert b > a
