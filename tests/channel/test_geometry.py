"""Tests for geometric primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.channel.geometry import (
    Wall,
    distance_m,
    mirror_point,
    reflection_point,
    segment_intersection,
    segments_cross,
)
from repro.errors import GeometryError

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


class TestWall:
    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            Wall((1.0, 1.0), (1.0, 1.0))

    def test_reflectivity_bounds(self):
        with pytest.raises(GeometryError):
            Wall((0, 0), (1, 0), reflectivity=1.5)

    def test_negative_loss_rejected(self):
        with pytest.raises(GeometryError):
            Wall((0, 0), (1, 0), transmission_loss_db=-1.0)

    def test_normal_is_perpendicular(self):
        wall = Wall((0, 0), (2, 2))
        assert np.dot(wall.normal, wall.direction) == pytest.approx(0.0)
        assert np.linalg.norm(wall.normal) == pytest.approx(1.0)

    def test_length(self):
        assert Wall((0, 0), (3, 4)).length == pytest.approx(5.0)


class TestDistance:
    def test_known(self):
        assert distance_m((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_bad_shape_rejected(self):
        with pytest.raises(GeometryError):
            distance_m((0, 0, 0), (1, 1, 1))

    @given(coords, coords, coords, coords)
    def test_symmetry(self, x1, y1, x2, y2):
        assert distance_m((x1, y1), (x2, y2)) == pytest.approx(
            distance_m((x2, y2), (x1, y1))
        )


class TestMirror:
    def test_mirror_across_x_axis(self):
        wall = Wall((0, 0), (10, 0))
        np.testing.assert_allclose(mirror_point((3.0, 2.0), wall), [3.0, -2.0])

    def test_mirror_is_involution(self):
        wall = Wall((1, 1), (4, 3))
        p = np.array([2.5, -1.0])
        np.testing.assert_allclose(
            mirror_point(mirror_point(p, wall), wall), p, atol=1e-12
        )

    def test_point_on_wall_is_fixed(self):
        wall = Wall((0, 0), (10, 0))
        np.testing.assert_allclose(
            mirror_point((5.0, 0.0), wall), [5.0, 0.0], atol=1e-12
        )


class TestIntersection:
    def test_crossing_segments(self):
        p = segment_intersection((0, 0), (2, 2), (0, 2), (2, 0))
        np.testing.assert_allclose(p, [1.0, 1.0])

    def test_disjoint_segments(self):
        assert segment_intersection((0, 0), (1, 0), (0, 1), (1, 1)) is None

    def test_parallel_segments(self):
        assert segment_intersection((0, 0), (1, 0), (0, 1), (1, 1)) is None

    def test_touching_endpoint_counts(self):
        p = segment_intersection((0, 0), (1, 1), (1, 1), (2, 0))
        np.testing.assert_allclose(p, [1.0, 1.0], atol=1e-6)

    def test_proper_crossing_predicate(self):
        assert segments_cross((0, 0), (2, 2), (0, 2), (2, 0))
        assert not segments_cross((0, 0), (1, 1), (1, 1), (2, 0))  # touch only
        assert not segments_cross((0, 0), (1, 0), (2, -1), (2, 1))  # disjoint


class TestReflectionPoint:
    def test_symmetric_reflection(self):
        wall = Wall((0, 0), (10, 0))
        p = reflection_point((2.0, 1.0), (4.0, 1.0), wall)
        np.testing.assert_allclose(p, [3.0, 0.0], atol=1e-9)

    def test_specular_point_outside_segment(self):
        wall = Wall((0, 0), (1, 0))
        assert reflection_point((5.0, 1.0), (7.0, 1.0), wall) is None

    def test_point_on_wall_plane_gives_none(self):
        wall = Wall((0, 0), (10, 0))
        assert reflection_point((2.0, 1.0), (4.0, 0.0), wall) is None

    def test_equal_angles(self):
        """Specular law: incidence angle equals reflection angle."""
        wall = Wall((0, 0), (10, 0))
        a, b = np.array([1.0, 2.0]), np.array([6.0, 3.0])
        p = reflection_point(a, b, wall)
        va, vb = a - p, b - p
        cos_a = abs(np.dot(va, wall.normal)) / np.linalg.norm(va)
        cos_b = abs(np.dot(vb, wall.normal)) / np.linalg.norm(vb)
        assert cos_a == pytest.approx(cos_b)

    @given(coords, st.floats(0.5, 50.0), coords, st.floats(0.5, 50.0))
    def test_reflected_length_exceeds_direct(self, x1, y1, x2, y2):
        """A bounce path is never shorter than the direct path (§5.2)."""
        wall = Wall((-200, 0), (200, 0))
        a, b = np.array([x1, y1]), np.array([x2, y2])
        if distance_m(a, b) < 1e-6:
            return
        p = reflection_point(a, b, wall)
        if p is None:
            return
        bounce_length = distance_m(a, p) + distance_m(p, b)
        assert bounce_length >= distance_m(a, b) - 1e-9
