"""Tests for antenna patterns and link budgets."""

import numpy as np
import pytest

from repro.channel import (
    DipoleAntenna,
    Environment,
    IsotropicAntenna,
    Link,
    PatchAntenna,
)
from repro.channel.environment import CONCRETE
from repro.channel.pathloss import free_space_path_loss_db
from repro.constants import UHF_CENTER_FREQUENCY
from repro.errors import ConfigurationError, LinkBudgetError

F = UHF_CENTER_FREQUENCY


class TestAntennas:
    def test_isotropic_uniform(self):
        ant = IsotropicAntenna(gain_dbi=3.0)
        assert ant.gain_dbi((1, 0)) == ant.gain_dbi((0, 1)) == 3.0

    def test_dipole_peak_broadside(self):
        ant = DipoleAntenna(axis=(1, 0))
        assert ant.gain_dbi((0, 1)) == pytest.approx(2.15, abs=0.01)

    def test_dipole_null_along_axis(self):
        ant = DipoleAntenna(axis=(1, 0))
        assert ant.gain_dbi((1, 0)) < -20.0

    def test_dipole_zero_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            DipoleAntenna(axis=(0, 0))

    def test_patch_peak_on_boresight(self):
        ant = PatchAntenna(boresight=(1, 0), peak_gain_dbi=6.0)
        assert ant.gain_dbi((1, 0)) == pytest.approx(6.0)

    def test_patch_half_power_at_beamwidth_edge(self):
        ant = PatchAntenna(boresight=(1, 0), peak_gain_dbi=6.0, beamwidth_deg=70.0)
        edge = np.deg2rad(35.0)
        gain = ant.gain_dbi((np.cos(edge), np.sin(edge)))
        assert gain == pytest.approx(3.0, abs=0.1)

    def test_patch_backlobe(self):
        ant = PatchAntenna(boresight=(1, 0), peak_gain_dbi=6.0, front_to_back_db=15.0)
        assert ant.gain_dbi((-1, 0)) == pytest.approx(-9.0)

    def test_patch_invalid_beamwidth(self):
        with pytest.raises(ConfigurationError):
            PatchAntenna(beamwidth_deg=5.0)

    def test_zero_direction_rejected(self):
        with pytest.raises(ConfigurationError):
            PatchAntenna().gain_dbi((0, 0))


class TestLink:
    def test_free_space_path_gain(self):
        link = Link((0, 0), (10, 0), F)
        assert link.path_gain_db() == pytest.approx(
            -free_space_path_loss_db(10.0, F), abs=1e-6
        )

    def test_antenna_gains_add(self):
        bare = Link((0, 0), (10, 0), F)
        endowed = Link(
            (0, 0),
            (10, 0),
            F,
            tx_antenna=IsotropicAntenna(6.0),
            rx_antenna=IsotropicAntenna(2.0),
        )
        assert endowed.path_gain_db() - bare.path_gain_db() == pytest.approx(8.0)

    def test_polarization_loss_subtracts(self):
        bare = Link((0, 0), (10, 0), F)
        lossy = Link((0, 0), (10, 0), F, polarization_loss_db=3.0)
        assert bare.path_gain_db() - lossy.path_gain_db() == pytest.approx(3.0)

    def test_budget_rx_power(self):
        link = Link((0, 0), (10, 0), F)
        budget = link.budget(30.0)
        assert budget.rx_power_dbm == pytest.approx(
            30.0 - free_space_path_loss_db(10.0, F), abs=1e-6
        )

    def test_budget_snr(self):
        link = Link((0, 0), (10, 0), F)
        budget = link.budget(30.0, bandwidth_hz=1e6, noise_figure_db=6.0)
        noise_dbm = -173.8 + 60.0 + 6.0
        assert budget.snr_db == pytest.approx(
            budget.rx_power_dbm - noise_dbm, abs=1e-6
        )

    def test_wall_reduces_budget(self):
        env = Environment.through_wall(wall_x=5.0, material=CONCRETE)
        blocked = Link((0, 0), (10, 0), F, environment=env)
        clear = Link((0, 0), (10, 0), F)
        delta = clear.budget(30.0).rx_power_dbm - blocked.budget(30.0).rx_power_dbm
        # The bounce path may add back a little energy, so the difference
        # is close to but not exactly the wall loss.
        assert delta > CONCRETE.transmission_loss_db - 4.0

    def test_faded_channel_statistics(self):
        link = Link((0, 0), (10, 0), F)
        h0 = link.complex_channel()
        rng = np.random.default_rng(4)
        draws = np.array([link.faded_channel(rng, rician_k_db=10.0) for _ in range(4000)])
        # Mean converges to the specular component.
        assert np.mean(draws) == pytest.approx(h0, abs=abs(h0) * 0.05)
        # Diffuse power ~ |h|^2 / K.
        diffuse_power = np.var(draws)
        assert diffuse_power == pytest.approx(abs(h0) ** 2 / 10.0, rel=0.2)

    def test_invalid_inputs(self):
        with pytest.raises(LinkBudgetError):
            Link((0, 0), (1, 0), -F)
        with pytest.raises(LinkBudgetError):
            Link((0, 0), (1, 0), F, polarization_loss_db=-1.0)
        with pytest.raises(LinkBudgetError):
            Link((0, 0), (1, 0), F).budget(30.0, bandwidth_hz=0.0)
