"""Tier-1 gate: the whole package stays reprolint-clean.

This test is the enforcement point of the unit/determinism/API
contracts documented in DESIGN.md §8: any new finding anywhere under
``src/repro`` fails the suite with the rule code and location.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.reporting import render_text

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src" / "repro"

#: Grandfathered findings (currently fig10's bench-level tag placement
#: under A406). The baseline may only ratchet down — new findings fail.
BASELINE_FILE = REPO_ROOT / "reprolint-baseline.json"


def test_source_tree_exists():
    assert REPO_SRC.is_dir(), f"expected package sources at {REPO_SRC}"


def test_package_has_zero_findings(monkeypatch):
    monkeypatch.chdir(REPO_ROOT)  # baseline keys are repo-relative
    findings = apply_baseline(
        analyze_paths([str(REPO_SRC)]), load_baseline(str(BASELINE_FILE))
    )
    assert findings == [], "\n" + render_text(findings)


def test_baseline_only_suppresses_live_findings(monkeypatch):
    """Every baseline key still matches a real finding — stale keys
    mean the site was fixed and the baseline must ratchet down."""
    from repro.analysis.baseline import portable_key

    monkeypatch.chdir(REPO_ROOT)
    live = {portable_key(f) for f in analyze_paths([str(REPO_SRC)])}
    stale = load_baseline(str(BASELINE_FILE)) - live
    assert stale == set(), f"stale baseline keys: {sorted(stale)}"


def test_gate_is_not_vacuous():
    """A seeded violation in a sibling tree must fail — proves the gate bites."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        bad = Path(tmp) / "bad.py"
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        findings = analyze_paths([tmp])
        assert any(f.code == "R301" for f in findings)


def test_analyzer_passes_its_own_rules():
    """Dogfood: the analyzer package itself stays clean under every
    rule it ships, including the whole-program U11x/R31x/P70x ones."""
    findings = analyze_paths([str(REPO_SRC / "analysis")])
    assert findings == [], "\n" + render_text(findings)


def test_flow_rules_are_exercised_by_the_gate():
    """The zero-findings gate must actually run the dataflow rules —
    a seeded cross-function unit bug has to surface as U111."""
    import tempfile

    source = (
        "def attenuate(power_dbm):\n"
        "    return power_dbm\n"
        "def g(distance_m):\n"
        "    return attenuate(distance_m)\n"
    )
    with tempfile.TemporaryDirectory() as tmp:
        (Path(tmp) / "bad.py").write_text(source)
        findings = analyze_paths([tmp])
        assert any(f.code == "U111" for f in findings)


def test_driver_matches_inline_on_package(tmp_path):
    """The runtime-backed driver is the CI path for big trees: it must
    agree byte-for-byte with the in-process engine on the real package."""
    from repro.analysis.driver import analyze_project
    from repro.runtime import RuntimeConfig

    driven = analyze_project(
        [str(REPO_SRC / "analysis")],
        runtime=RuntimeConfig(backend="serial", cache_dir=tmp_path / "cache"),
    )
    inline = analyze_paths([str(REPO_SRC / "analysis")])
    assert render_text(driven) == render_text(inline)
