"""Tier-1 gate: the whole package stays reprolint-clean.

This test is the enforcement point of the unit/determinism/API
contracts documented in DESIGN.md §8: any new finding anywhere under
``src/repro`` fails the suite with the rule code and location.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.reporting import render_text

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_source_tree_exists():
    assert REPO_SRC.is_dir(), f"expected package sources at {REPO_SRC}"


def test_package_has_zero_findings():
    findings = analyze_paths([str(REPO_SRC)])
    assert findings == [], "\n" + render_text(findings)


def test_gate_is_not_vacuous():
    """A seeded violation in a sibling tree must fail — proves the gate bites."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        bad = Path(tmp) / "bad.py"
        bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
        findings = analyze_paths([tmp])
        assert any(f.code == "R301" for f in findings)
