"""Tests for multi-reader interference management (§4.3)."""

import numpy as np
import pytest

from repro.channel import Environment
from repro.channel.environment import CONCRETE
from repro.dsp.filters import LowPassFilter
from repro.errors import ConfigurationError
from repro.reader import ReaderSite, residual_interference_db, strongest_reader
from repro.reader.multireader import received_power_dbm

LPF = LowPassFilter(100e3, 4e6, order=6)


def make_sites():
    return [
        ReaderSite(position=(0.0, 0.0), frequency_hz=903.25e6, name="west"),
        ReaderSite(position=(30.0, 0.0), frequency_hz=913.25e6, name="east"),
    ]


class TestSelection:
    def test_nearest_reader_wins_in_free_space(self):
        sites = make_sites()
        assert strongest_reader(sites, (3.0, 0.0)).name == "west"
        assert strongest_reader(sites, (27.0, 0.0)).name == "east"

    def test_wall_changes_the_winner(self):
        sites = make_sites()
        env = Environment()
        # A thick wall just east of the drone mutes the nearer reader.
        env.add_wall((10.0, -5.0), (10.0, 5.0), CONCRETE)
        env.add_wall((10.2, -5.0), (10.2, 5.0), CONCRETE)
        env.add_wall((10.4, -5.0), (10.4, 5.0), CONCRETE)
        drone = (12.0, 0.0)
        # Without walls: west (12 m) beats east (18 m); with the triple
        # wall attenuating west's signal, east wins.
        assert strongest_reader(sites, drone).name == "west"
        assert strongest_reader(sites, drone, env).name == "east"

    def test_no_sites_rejected(self):
        with pytest.raises(ConfigurationError):
            strongest_reader([], (0.0, 0.0))

    def test_received_power_declines_with_distance(self):
        site = make_sites()[0]
        near = received_power_dbm(site, (2.0, 0.0))
        far = received_power_dbm(site, (20.0, 0.0))
        assert near > far

    def test_site_validation(self):
        with pytest.raises(ConfigurationError):
            ReaderSite(position=(0, 0), frequency_hz=-1.0)


class TestSuppression:
    def test_off_channel_reader_heavily_suppressed(self):
        locked, other = make_sites()
        # 10 MHz apart: beyond the representable baseband -> the front
        # end has already removed it entirely.
        assert residual_interference_db(locked, other, LPF) == float("inf")

    def test_adjacent_channel_suppression(self):
        locked = ReaderSite(position=(0, 0), frequency_hz=913.25e6)
        other = ReaderSite(position=(5, 0), frequency_hz=913.75e6)
        # 500 kHz offset: the LPF's deep stopband.
        suppression = residual_interference_db(locked, other, LPF)
        assert suppression > 80.0

    def test_same_channel_gets_no_protection(self):
        locked = ReaderSite(position=(0, 0), frequency_hz=913.25e6)
        other = ReaderSite(position=(5, 0), frequency_hz=913.25e6)
        assert residual_interference_db(locked, other, LPF) == 0.0

    def test_suppression_grows_with_offset(self):
        locked = ReaderSite(position=(0, 0), frequency_hz=913.25e6)
        close = ReaderSite(position=(5, 0), frequency_hz=913.45e6)
        farther = ReaderSite(position=(5, 0), frequency_hz=914.05e6)
        assert residual_interference_db(
            locked, farther, LPF
        ) > residual_interference_db(locked, close, LPF)
