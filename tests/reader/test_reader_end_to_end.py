"""End-to-end sample-level reads: reader <-> (relay) <-> tag."""

import numpy as np
import pytest

import repro.channel.pathloss as pl
from repro.dsp.units import db_to_linear
from repro.errors import ProtocolError, TagNotPoweredError
from repro.gen2.backscatter import TagParams
from repro.hardware import PassiveTag, ReaderFrontend, Synthesizer
from repro.reader import Reader
from repro.relay import MirroredRelay, NoMirrorRelay
from repro.relay.mirrored import RelayConfig


def attenuator(db):
    amp = np.sqrt(db_to_linear(-db))
    return lambda sig: sig.scaled(amp)


@pytest.fixture
def direct_setup():
    rng = np.random.default_rng(0)
    frontend = ReaderFrontend(Synthesizer.random(915e6, rng), tx_power_dbm=20.0, rng=rng)
    reader = Reader(frontend)
    tag = PassiveTag(epc=0xCAFE0001, position=(2.0, 0.0), rng=np.random.default_rng(1))
    return reader, tag


class TestDirectRead:
    def test_full_exchange(self, direct_setup):
        reader, tag = direct_setup
        cable = attenuator(20.0)
        read = reader.read_single_tag(tag, downlink=cable, uplink=cable)
        assert read.epc == 0xCAFE0001
        assert abs(read.channel) > 0.0

    def test_channel_phase_tracks_cable_phase(self, direct_setup):
        reader, tag = direct_setup
        results = []
        for extra_phase in (0.0, 0.8):
            tag.protocol.power_reset()
            rot = np.exp(1j * extra_phase) * np.sqrt(db_to_linear(-20.0))
            read = reader.read_single_tag(
                tag, downlink=lambda s: s.scaled(rot), uplink=lambda s: s.scaled(rot)
            )
            results.append(read.epc_channel.phase_rad)
        # Round trip picks up 2x the one-way phase.
        delta = (results[1] - results[0]) % (2 * np.pi)
        assert delta == pytest.approx(1.6, abs=0.05)

    def test_unpowered_tag_raises(self, direct_setup):
        reader, tag = direct_setup
        deep_fade = attenuator(80.0)
        with pytest.raises(TagNotPoweredError):
            reader.read_single_tag(tag, downlink=deep_fade, uplink=deep_fade)

    def test_nonparticipating_tag_raises(self, direct_setup):
        reader, tag = direct_setup
        tag.protocol.inventoried["S0"] = "B"
        with pytest.raises(ProtocolError):
            reader.read_single_tag(tag, downlink=attenuator(20.0), uplink=attenuator(20.0))


class TestRelayedRead:
    def make_media(self, relay, wire_db=40.0, tag_distance=0.5):
        wire = np.sqrt(db_to_linear(-wire_db))
        half = np.sqrt(
            db_to_linear(-pl.free_space_path_loss_db(tag_distance, 916e6))
        )
        downlink = lambda s: relay.forward_downlink(s.scaled(wire)).scaled(half)
        uplink = lambda s: relay.forward_uplink(s.scaled(half)).scaled(wire)
        return downlink, uplink

    def make_reader(self, seed=0):
        rng = np.random.default_rng(seed)
        frontend = ReaderFrontend(
            Synthesizer.random(915e6, rng), tx_power_dbm=20.0, rng=rng
        )
        # Through the relay the reader requests Miller-4: the subcarrier
        # keeps the reply inside the relay's band-pass filter.
        return Reader(frontend, tag_params=TagParams(blf=500e3, miller_m=4))

    def test_read_through_mirrored_relay(self):
        reader = self.make_reader()
        tag = PassiveTag(epc=0xB0BA, position=(0.5, 0.0), rng=np.random.default_rng(2))
        relay = MirroredRelay(915e6, RelayConfig(), np.random.default_rng(3))
        downlink, uplink = self.make_media(relay)
        read = reader.read_single_tag(tag, downlink=downlink, uplink=uplink)
        assert read.epc == 0xB0BA

    def test_mirrored_relay_preserves_phase_across_builds(self):
        """Fig. 10 at system level: different synthesizer realizations
        yield the same measured phase."""
        reader = self.make_reader()
        tag = PassiveTag(epc=0xB0BA, position=(0.5, 0.0), rng=np.random.default_rng(2))
        phases = []
        for seed in range(3):
            tag.protocol.power_reset()
            relay = MirroredRelay(915e6, RelayConfig(), np.random.default_rng(seed))
            downlink, uplink = self.make_media(relay)
            read = reader.read_single_tag(tag, downlink=downlink, uplink=uplink)
            phases.append(read.epc_channel.phase_rad)
        # Cross-build spread is bounded by filter phase slope at the
        # build-specific CFO; within one build the phase is far tighter
        # (see the Fig. 10 benchmark).
        spread = np.ptp(np.unwrap(phases))
        assert spread < np.deg2rad(8.0)

    def test_no_mirror_relay_randomizes_phase(self):
        """With independent synthesizers the measured phase is random;
        the known-reply procedure of Fig. 10 exposes it."""
        reader = self.make_reader()
        tag = PassiveTag(epc=0xB0BA, position=(0.5, 0.0), rng=np.random.default_rng(2))
        bits = (1, 0, 1, 1, 0, 0, 1, 0) * 2
        phases = []
        for seed in range(5):
            relay = NoMirrorRelay(915e6, RelayConfig(), np.random.default_rng(seed + 50))
            downlink, uplink = self.make_media(relay)
            est = reader.measure_reply_phase(
                tag, bits, downlink=downlink, uplink=uplink
            )
            phases.append(est.phase_rad)
        assert np.std(np.angle(np.exp(1j * (np.array(phases) - phases[0])))) > 0.3

    def test_measure_reply_phase_matches_full_read(self):
        reader = self.make_reader()
        tag = PassiveTag(epc=0xB0BA, position=(0.5, 0.0), rng=np.random.default_rng(2))
        relay = MirroredRelay(915e6, RelayConfig(), np.random.default_rng(7))
        downlink, uplink = self.make_media(relay)
        read = reader.read_single_tag(tag, downlink=downlink, uplink=uplink)
        tag.protocol.power_reset()
        est = reader.measure_reply_phase(
            tag, read.epc_channel.bits, downlink=downlink, uplink=uplink
        )
        assert est.phase_rad == pytest.approx(read.epc_channel.phase_rad, abs=0.02)
