"""Tests for complex channel estimation from tag replies."""

import numpy as np
import pytest

from repro.dsp import Signal
from repro.errors import EncodingError, SignalError
from repro.gen2.backscatter import FM0Encoder, MillerEncoder, TagParams
from repro.reader.channel_estimation import (
    align_to_preamble,
    codec_for,
    estimate_channel,
    find_reply_start,
    project_to_real,
)

FS = 8e6
PARAMS = TagParams(blf=500e3)


def synth_reply(bits, h, noise_std=0.0, seed=0, params=PARAMS, dc=0.0):
    """A received baseband: DC + h * reflection + noise."""
    enc = codec_for(params, FS)[0]
    wave = enc.encode(bits)
    rng = np.random.default_rng(seed)
    samples = dc + h * wave.samples
    if noise_std > 0:
        samples = samples + noise_std * (
            rng.standard_normal(len(samples)) + 1j * rng.standard_normal(len(samples))
        )
    return Signal(samples, FS)


class TestProjection:
    def test_projects_onto_channel_axis(self):
        rng = np.random.default_rng(0)
        h = 0.7 * np.exp(1j * 1.1)
        levels = rng.integers(0, 2, 1000) * 2.0 - 1.0
        samples = h * levels
        projected, rotation = project_to_real(samples)
        # The projection preserves magnitude and is purely real.
        np.testing.assert_allclose(np.abs(projected), 0.7, atol=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(SignalError):
            project_to_real(np.array([]))


class TestEstimate:
    @pytest.mark.parametrize("phase", [-2.5, -0.3, 0.0, 1.0, 3.0])
    def test_recovers_channel_phase(self, phase):
        bits = (1, 0, 1, 1, 0, 0, 1, 0) * 4
        h = 1e-3 * np.exp(1j * phase)
        sig = synth_reply(bits, h, dc=0.05)
        est = estimate_channel(sig, PARAMS, len(bits))
        assert est.phase_rad == pytest.approx(phase if phase <= np.pi else phase - 2 * np.pi, abs=1e-6)
        assert est.bits == bits

    def test_recovers_magnitude(self):
        bits = (1, 1, 0, 0) * 8
        h = 2.5e-4 + 0.0j
        est = estimate_channel(synth_reply(bits, h), PARAMS, len(bits))
        assert est.magnitude == pytest.approx(2.5e-4, rel=1e-6)

    def test_dc_leak_does_not_bias(self):
        bits = (1, 0) * 16
        h = 1e-3 * np.exp(1j * 0.7)
        with_dc = estimate_channel(synth_reply(bits, h, dc=0.3 + 0.2j), PARAMS, len(bits))
        without = estimate_channel(synth_reply(bits, h), PARAMS, len(bits))
        assert with_dc.h == pytest.approx(without.h, rel=1e-6)

    def test_noise_tolerance(self):
        bits = tuple(np.random.default_rng(3).integers(0, 2, 96))
        h = 1e-3 * np.exp(1j * 2.0)
        sig = synth_reply(bits, h, noise_std=1e-4, seed=4)
        est = estimate_channel(sig, PARAMS, len(bits))
        assert est.bits == bits
        assert est.phase_rad == pytest.approx(2.0, abs=0.02)
        assert est.snr_db > 10.0

    def test_known_bits_skip_decoding(self):
        bits = (1, 0, 1, 1) * 4
        h = 1e-3 * np.exp(1j * 1.5)
        # Heavy noise breaks blind decode, but known-bits fitting works.
        sig = synth_reply(bits, h, noise_std=5e-4, seed=5)
        est = estimate_channel(sig, PARAMS, len(bits), expected_bits=bits)
        assert est.phase_rad == pytest.approx(1.5, abs=0.2)

    def test_miller_estimation(self):
        params = TagParams(blf=500e3, miller_m=4)
        bits = (0, 1, 1, 0) * 4
        h = 1e-3 * np.exp(1j * -1.2)
        est = estimate_channel(synth_reply(bits, h, params=params), params, len(bits))
        assert est.bits == bits
        assert est.phase_rad == pytest.approx(-1.2, abs=1e-6)

    def test_too_short_signal_rejected(self):
        sig = Signal(np.zeros(10, dtype=complex), FS)
        with pytest.raises(EncodingError):
            estimate_channel(sig, PARAMS, 128)


class TestAlignment:
    def test_finds_shifted_reply(self):
        bits = (1, 0, 0, 1) * 8
        h = 1e-3 * np.exp(1j * 0.5)
        clean = synth_reply(bits, h)
        shift = 37
        shifted = Signal(
            np.concatenate([np.zeros(shift, dtype=complex), clean.samples]), FS
        )
        found = align_to_preamble(shifted, PARAMS, 0, 64)
        assert found == shift
        est = estimate_channel(shifted, PARAMS, len(bits), offset=0, align_slack=64)
        assert est.bits == bits
        assert est.phase_rad == pytest.approx(0.5, abs=1e-3)

    def test_negative_slack_rejected(self):
        sig = synth_reply((1, 0), 1e-3)
        with pytest.raises(SignalError):
            align_to_preamble(sig, PARAMS, 0, -1)

    def test_find_reply_start_energy_detector(self):
        bits = (1, 0, 1, 0) * 8
        h = 1e-3
        clean = synth_reply(bits, h)
        shift = 100
        padded = Signal(
            np.concatenate(
                [
                    np.zeros(shift, dtype=complex),
                    clean.samples,
                    np.zeros(200, dtype=complex),
                ]
            ),
            FS,
        )
        found = find_reply_start(padded, PARAMS, len(bits))
        assert abs(found - shift) <= 24  # within a half-symbol

    def test_find_reply_start_too_short(self):
        with pytest.raises(EncodingError):
            find_reply_start(Signal(np.zeros(10, dtype=complex), FS), PARAMS, 128)
