"""Cross-fidelity integration: sample level must agree with phasor level.

DESIGN.md §6 claims the two simulation fidelities close the loop: the
phasor measurement model's assumptions (round-trip phase proportional
to distance, constant relay hardware phase) must match what the
sample-level pipeline actually produces. These tests verify that
quantitatively: waveform-level reads through real channel delays and
the mirrored relay yield exactly the phase progression the phasor model
(and hence the SAR solver) assumes.
"""

import numpy as np
import pytest

import repro.channel.pathloss as pathloss
from repro.constants import SPEED_OF_LIGHT
from repro.dsp.units import db_to_linear
from repro.gen2.backscatter import TagParams
from repro.hardware import PassiveTag, ReaderFrontend, Synthesizer
from repro.relay import MirroredRelay
from repro.relay.mirrored import RelayConfig
from repro.reader import Reader

F1 = 915.0e6
WIRE_AMP = float(np.sqrt(db_to_linear(-40.0)))
BITS = (1, 0, 1, 1, 0, 0, 1, 0) * 2


def relayed_phase(relay, reader, tag, distance_m):
    """Waveform-level measured phase with the tag at a given distance."""
    f2 = relay.shifted_frequency_hz
    tau = distance_m / SPEED_OF_LIGHT
    amp = float(
        np.sqrt(db_to_linear(-pathloss.free_space_path_loss_db(distance_m, f2)))
    )
    downlink = lambda s: relay.forward_downlink(s.scaled(WIRE_AMP)).delayed(
        tau
    ).scaled(amp)
    uplink = lambda s: relay.forward_uplink(
        s.delayed(tau).scaled(amp)
    ).scaled(WIRE_AMP)
    estimate = reader.measure_reply_phase(
        tag, BITS, downlink=downlink, uplink=uplink
    )
    return estimate.phase_rad


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    relay = MirroredRelay(F1, RelayConfig(), np.random.default_rng(1))
    frontend = ReaderFrontend(
        Synthesizer(F1, ppm_error=0.4, phase_offset_rad=1.0),
        tx_power_dbm=20.0,
        rng=rng,
    )
    reader = Reader(frontend, tag_params=TagParams(blf=500e3, miller_m=4))
    tag = PassiveTag(epc=0x1DEA, position=(0.0, 0.0), rng=rng)
    return relay, reader, tag


class TestPhaseDistanceLaw:
    def test_round_trip_phase_slope_matches_phasor_model(self, setup):
        """Moving the tag by delta changes the phase by -4 pi f2 delta/c,
        exactly the law the phasor MeasurementModel encodes (Eq. 2/7)."""
        relay, reader, tag = setup
        f2 = relay.shifted_frequency_hz
        d0 = 0.5
        for delta in (0.01, 0.02, 0.04):
            phase_near = relayed_phase(relay, reader, tag, d0)
            phase_far = relayed_phase(relay, reader, tag, d0 + delta)
            measured = np.angle(np.exp(1j * (phase_far - phase_near)))
            expected = np.angle(
                np.exp(-1j * 2 * np.pi * f2 * 2 * delta / SPEED_OF_LIGHT)
            )
            assert measured == pytest.approx(expected, abs=0.05), delta

    def test_hardware_phase_is_constant(self, setup):
        """Repeated reads at one distance give one phase: the relay only
        adds the constant hardware offset that Eq. 10 divides away."""
        relay, reader, tag = setup
        phases = [relayed_phase(relay, reader, tag, 0.5) for _ in range(4)]
        spread = np.max(np.abs(np.diff(np.unwrap(phases))))
        assert spread < np.deg2rad(1.0)

    def test_wavelength_periodicity(self, setup):
        """A half-wavelength (at f2) displacement returns the same phase:
        the round trip spans a full cycle."""
        relay, reader, tag = setup
        f2 = relay.shifted_frequency_hz
        half_wavelength = SPEED_OF_LIGHT / f2 / 2.0
        phase_a = relayed_phase(relay, reader, tag, 0.5)
        phase_b = relayed_phase(relay, reader, tag, 0.5 + half_wavelength)
        assert np.angle(np.exp(1j * (phase_b - phase_a))) == pytest.approx(
            0.0, abs=0.05
        )
