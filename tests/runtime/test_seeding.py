"""Unit tests for deterministic SeedSequence-based task seeding."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.runtime import SweepTask, seed_tasks, spawn_seed_sequences, spawn_task_seeds

from tests.runtime import sweep_fns


class TestSpawning:
    def test_deterministic(self):
        assert spawn_task_seeds(42, 20) == spawn_task_seeds(42, 20)

    def test_root_changes_everything(self):
        assert set(spawn_task_seeds(0, 10)).isdisjoint(spawn_task_seeds(1, 10))

    def test_prefix_stable_under_growth(self):
        # Child i depends only on (root, i): growing a sweep must not
        # reshuffle the seeds of tasks that already existed.
        assert spawn_task_seeds(7, 20)[:5] == spawn_task_seeds(7, 5)

    def test_seeds_are_128_bit(self):
        for seed in spawn_task_seeds(3, 50):
            assert 0 <= seed < 1 << 128

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            spawn_seed_sequences(0, -1)

    def test_no_collisions_across_10k_tasks(self):
        seeds = spawn_task_seeds(0, 10_000)
        assert len(set(seeds)) == 10_000

    def test_no_collisions_across_roots(self):
        pool = set()
        for root in range(20):
            pool.update(spawn_task_seeds(root, 100))
        assert len(pool) == 20 * 100


class TestSeedTasks:
    def _unseeded(self, n):
        return [
            SweepTask.make(sweep_fns.normal_sum, params={"n": i + 1})
            for i in range(n)
        ]

    def test_fills_only_missing_seeds(self):
        explicit = SweepTask.make(sweep_fns.normal_sum, params={"n": 9}, seed=123)
        tasks = seed_tasks([explicit, *self._unseeded(2)], root_seed=0)
        assert tasks[0].seed == 123
        assert tasks[1].seed is not None and tasks[2].seed is not None
        assert tasks[1].seed != tasks[2].seed

    def test_assignment_by_task_index(self):
        spawned = spawn_task_seeds(5, 3)
        tasks = seed_tasks(self._unseeded(3), root_seed=5)
        assert [t.seed for t in tasks] == spawned

    def test_root_none_passthrough(self):
        tasks = self._unseeded(2)
        assert seed_tasks(tasks, root_seed=None) == tasks

    def test_idempotent_once_seeded(self):
        once = seed_tasks(self._unseeded(4), root_seed=9)
        assert seed_tasks(once, root_seed=9) == once
