"""Unit tests for the content-addressed result cache."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime import ResultCache, SweepTask, cache_key

from tests.runtime import sweep_fns


def _task(n=4, seed=0):
    return SweepTask.make(sweep_fns.normal_sum, params={"n": n}, seed=seed)


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key(_task()) == cache_key(_task())

    def test_sensitive_to_params(self):
        assert cache_key(_task(n=4)) != cache_key(_task(n=5))

    def test_sensitive_to_seed(self):
        assert cache_key(_task(seed=0)) != cache_key(_task(seed=1))

    def test_sensitive_to_fn(self):
        a = SweepTask.make(sweep_fns.normal_sum, params={"n": 4}, seed=0)
        b = SweepTask.make(sweep_fns.normal_draw, params={"n": 4}, seed=0)
        assert cache_key(a) != cache_key(b)

    def test_sensitive_to_version(self):
        assert cache_key(_task(), version="1.0.0") != cache_key(
            _task(), version="1.0.1"
        )

    def test_hex_sha256(self):
        key = cache_key(_task())
        assert len(key) == 64
        int(key, 16)  # parses as hex


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(_task())
        hit, payload = cache.load(key)
        assert not hit and payload is None
        cache.store(key, {"answer": 42})
        hit, payload = cache.load(key)
        assert hit and payload == {"answer": 42}

    def test_hit_is_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(_task())
        original = sweep_fns.structured(32, 7)
        cache.store(key, original)
        _, loaded = cache.load(key)
        assert pickle.dumps(loaded, protocol=pickle.HIGHEST_PROTOCOL) == (
            pickle.dumps(original, protocol=pickle.HIGHEST_PROTOCOL)
        )
        np.testing.assert_array_equal(loaded["values"], original["values"])

    def test_two_level_fanout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(_task())
        assert cache.path_for(key).parent.name == key[:2]

    def test_malformed_key_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultCache(tmp_path).path_for("ab")

    def test_corrupt_entry_reads_as_miss_and_is_deleted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(_task())
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a pickle")
        hit, payload = cache.load(key)
        assert not hit and payload is None
        assert not path.exists()

    def test_truncated_pickle_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(_task())
        cache.store(key, list(range(1000)))
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:10])
        hit, _ = cache.load(key)
        assert not hit

    def test_store_overwrites_atomically(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(_task())
        cache.store(key, "first")
        cache.store(key, "second")
        assert cache.load(key) == (True, "second")
        # No stray temp files left behind.
        assert not list(tmp_path.glob("**/.tmp-*"))

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in range(5):
            cache.store(cache_key(_task(seed=seed)), seed)
        assert len(cache) == 5
        assert cache.clear() == 5
        assert len(cache) == 0
