"""Unit tests for the SweepTask model and parameter canonicalization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime import SweepTask
from repro.runtime.task import canonical_params, fn_identity

from tests.runtime import sweep_fns


class TestCanonicalParams:
    def test_sorted_by_key(self):
        params = canonical_params({"b": 2, "a": 1, "c": 3})
        assert [k for k, _ in params] == ["a", "b", "c"]

    def test_order_insensitive(self):
        assert canonical_params({"x": 1, "y": 2}) == canonical_params(
            {"y": 2, "x": 1}
        )

    def test_nested_containers_become_tuples(self):
        params = canonical_params({"xs": [1, 2, [3, 4]], "m": {"b": 2, "a": 1}})
        assert dict(params)["xs"] == (1, 2, (3, 4))
        assert dict(params)["m"] == (("a", 1), ("b", 2))

    def test_scalars_pass_through(self):
        params = dict(
            canonical_params(
                {"i": 3, "f": 0.5, "s": "x", "b": True, "none": None}
            )
        )
        assert params == {"i": 3, "f": 0.5, "s": "x", "b": True, "none": None}

    def test_rejects_arrays(self):
        with pytest.raises(ConfigurationError, match="unsupported type"):
            canonical_params({"a": np.zeros(3)})

    def test_rejects_objects(self):
        with pytest.raises(ConfigurationError, match="unsupported type"):
            canonical_params({"rng": np.random.default_rng(0)})


class TestFnIdentity:
    def test_module_level_function(self):
        assert fn_identity(sweep_fns.add) == "tests.runtime.sweep_fns:add"

    def test_rejects_lambda(self):
        with pytest.raises(ConfigurationError, match="module-level"):
            fn_identity(lambda x: x)

    def test_rejects_closure(self):
        def outer():
            def inner(x):
                return x

            return inner

        with pytest.raises(ConfigurationError, match="module-level"):
            fn_identity(outer())


class TestSweepTask:
    def test_make_and_execute(self):
        task = SweepTask.make(sweep_fns.add, params={"x": 2, "y": 3})
        assert task.execute() == 5

    def test_seed_appended_to_kwargs(self):
        task = SweepTask.make(sweep_fns.normal_sum, params={"n": 4}, seed=7)
        assert task.kwargs() == {"n": 4, "seed": 7}

    def test_no_seed_no_kwarg(self):
        task = SweepTask.make(sweep_fns.add, params={"x": 1, "y": 1})
        assert "seed" not in task.kwargs()

    def test_default_label_is_fn_name(self):
        assert SweepTask.make(sweep_fns.add, params={"x": 0, "y": 0}).label == "add"

    def test_explicit_label(self):
        task = SweepTask.make(sweep_fns.add, params={"x": 0, "y": 0}, label="a/b")
        assert task.label == "a/b"

    def test_non_int_seed_rejected(self):
        with pytest.raises(ConfigurationError, match="seed"):
            SweepTask.make(sweep_fns.normal_sum, params={"n": 1}, seed=1.5)

    def test_frozen(self):
        task = SweepTask.make(sweep_fns.add, params={"x": 0, "y": 0})
        with pytest.raises(AttributeError):
            task.seed = 3

    def test_execution_reproducible(self):
        task = SweepTask.make(sweep_fns.normal_draw, params={"n": 16}, seed=11)
        np.testing.assert_array_equal(task.execute(), task.execute())
