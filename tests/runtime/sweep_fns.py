"""Module-level task functions for the runtime tests.

Worker processes pickle task functions by reference, so everything the
engine tests dispatch must live at module scope in an importable module
— that is this file's whole job.
"""

from __future__ import annotations

import numpy as np


def add(x, y):
    """Seedless pure arithmetic."""
    return x + y


def normal_sum(n, seed):
    """Sum of n standard-normal draws — scalar, seed-sensitive."""
    rng = np.random.default_rng(seed)
    return float(rng.normal(size=n).sum())


def normal_draw(n, seed):
    """Raw normal draws — an ndarray payload for bit-identity checks."""
    rng = np.random.default_rng(seed)
    return rng.normal(size=n)


def structured(n, seed):
    """A nested payload: dict of arrays and scalars."""
    rng = np.random.default_rng(seed)
    values = rng.normal(size=n)
    return {"values": values, "mean": float(values.mean()), "n": n}


def slow_square(x, delay_s=0.0):
    """Square with an optional sleep (for wall-time accounting tests)."""
    import time

    if delay_s:
        time.sleep(delay_s)
    return x * x


def boom(seed):
    """Always raises — error-propagation tests."""
    raise ValueError(f"boom({seed})")


def instrumented(n, seed):
    """Opens spans and reports metrics — telemetry determinism tests.

    The span structure and metric values depend only on (n, seed), so
    serial and process-pool runs must agree on everything but timing.
    """
    from repro.obs import metrics, tracing

    rng = np.random.default_rng(seed)
    with tracing.span("test.task", n=n):
        with tracing.span("test.draw"):
            values = rng.normal(size=n)
        metrics.count("test.draws", n)
        metrics.set_gauge("test.last_n", n)
        with tracing.span("test.reduce"):
            total = float(values.sum())
        metrics.observe("test.total", total)
    return total
