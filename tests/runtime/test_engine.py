"""Unit tests for run_sweep: backends, caching, manifests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.runtime import RuntimeConfig, SweepTask, run_sweep

from tests.runtime import sweep_fns


def _tasks(n=4):
    return [
        SweepTask.make(
            sweep_fns.normal_sum, params={"n": 8 * (i + 1)}, seed=100 + i
        )
        for i in range(n)
    ]


class TestSerialBackend:
    def test_results_in_task_order(self):
        sweep = run_sweep(_tasks(5))
        expected = [t.execute() for t in _tasks(5)]
        assert sweep.results == expected

    def test_len_and_iter(self):
        sweep = run_sweep(_tasks(3))
        assert len(sweep) == 3
        assert list(sweep) == sweep.results

    def test_empty_task_list(self):
        sweep = run_sweep([])
        assert sweep.results == []
        assert sweep.manifest.n_tasks == 0

    def test_task_error_propagates(self):
        task = SweepTask.make(sweep_fns.boom, params={}, seed=1)
        with pytest.raises(ValueError, match="boom"):
            run_sweep([task])


class TestProcessBackend:
    def test_matches_serial_bitwise(self):
        tasks = [
            SweepTask.make(sweep_fns.normal_draw, params={"n": 64}, seed=s)
            for s in range(6)
        ]
        serial = run_sweep(tasks, RuntimeConfig(backend="serial"))
        parallel = run_sweep(
            tasks, RuntimeConfig(backend="process", max_workers=2)
        )
        for a, b in zip(serial.results, parallel.results):
            np.testing.assert_array_equal(a, b)
        assert serial.manifest.fingerprint() == parallel.manifest.fingerprint()

    def test_single_task_stays_serial(self):
        # One task gains nothing from a pool; backend falls back.
        sweep = run_sweep(
            _tasks(1), RuntimeConfig(backend="process", max_workers=2)
        )
        assert sweep.results == [_tasks(1)[0].execute()]


class TestCaching:
    def test_cold_then_warm(self, tmp_path):
        config = RuntimeConfig(cache_dir=tmp_path / "cache")
        cold = run_sweep(_tasks(4), config)
        assert cold.manifest.cache_hits == 0
        warm = run_sweep(_tasks(4), config)
        assert warm.manifest.cache_hits == 4
        assert warm.results == cold.results
        assert warm.manifest.fingerprint() == cold.manifest.fingerprint()

    def test_no_cache_escape_hatch(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_sweep(_tasks(2), RuntimeConfig(cache_dir=cache_dir))
        bypass = run_sweep(
            _tasks(2), RuntimeConfig(cache_dir=cache_dir, use_cache=False)
        )
        assert bypass.manifest.cache_hits == 0
        assert not bypass.manifest.cache_enabled

    def test_param_change_invalidates(self, tmp_path):
        config = RuntimeConfig(cache_dir=tmp_path / "cache")
        run_sweep(_tasks(2), config)
        other = [
            SweepTask.make(sweep_fns.normal_sum, params={"n": 999}, seed=100)
        ]
        sweep = run_sweep(other, config)
        assert sweep.manifest.cache_hits == 0

    def test_partial_warmth(self, tmp_path):
        config = RuntimeConfig(cache_dir=tmp_path / "cache")
        run_sweep(_tasks(2), config)
        sweep = run_sweep(_tasks(4), config)
        assert sweep.manifest.cache_hits == 2


class TestSeeding:
    def test_root_seed_fills_missing(self):
        tasks = [
            SweepTask.make(sweep_fns.normal_sum, params={"n": 8})
            for _ in range(3)
        ]
        a = run_sweep(tasks, root_seed=0)
        b = run_sweep(tasks, root_seed=0)
        c = run_sweep(tasks, root_seed=1)
        assert a.results == b.results
        assert a.results != c.results
        assert len(set(t.seed for t in a.manifest.tasks)) == 3


class TestManifest:
    def test_records_per_task(self):
        sweep = run_sweep(_tasks(3), name="unit")
        manifest = sweep.manifest
        assert manifest.sweep == "unit"
        assert manifest.n_tasks == 3
        assert [t.index for t in manifest.tasks] == [0, 1, 2]
        for record in manifest.tasks:
            assert record.fn == "tests.runtime.sweep_fns:normal_sum"
            assert record.wall_time_s >= 0.0
            assert len(record.result_hash) == 64

    def test_saved_to_manifest_dir(self, tmp_path):
        config = RuntimeConfig(manifest_dir=tmp_path / "manifests")
        sweep = run_sweep(_tasks(2), config, name="saved")
        path = tmp_path / "manifests" / "saved.json"
        assert path.exists()
        data = json.loads(path.read_text())
        assert data["sweep"] == "saved"
        assert data["n_tasks"] == 2
        assert data["fingerprint"] == sweep.manifest.fingerprint()
        assert len(data["tasks"]) == 2

    def test_trace_memory_records_peak(self):
        with pytest.warns(DeprecationWarning, match="trace_memory"):
            config = RuntimeConfig(trace_memory=True)
            sweep = run_sweep(_tasks(2), config)
        for record in sweep.manifest.tasks:
            assert record.peak_memory_bytes is not None
            assert record.peak_memory_bytes > 0

    def test_fingerprint_ignores_timing_fields(self):
        a = run_sweep(_tasks(3)).manifest
        b = run_sweep(_tasks(3)).manifest
        assert a.fingerprint() == b.fingerprint()
        assert a.task_wall_time_s != b.task_wall_time_s or True  # timings free


class TestConfigValidation:
    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(backend="threads")

    def test_bad_worker_count(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(max_workers=0)
