"""Hypothesis property suite for the sweep engine (ISSUE satellites).

Three engine-level contracts, stated as properties over random task
sets rather than single examples:

1. serial and process-pool execution of the same tasks produce
   identical payloads AND identical manifest fingerprints;
2. a cache hit returns a bit-identical payload (pickle-byte equality);
3. SeedSequence spawning never collides across large sweeps.
"""

from __future__ import annotations

import pickle
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.observers import MetricsObserver, TraceObserver
from repro.obs.tracing import Span
from repro.runtime import (
    ResultCache,
    RuntimeConfig,
    SweepTask,
    cache_key,
    run_sweep,
    spawn_task_seeds,
)

from tests.runtime import sweep_fns

_FNS = (sweep_fns.normal_sum, sweep_fns.normal_draw, sweep_fns.structured)

task_sets = st.lists(
    st.tuples(
        st.sampled_from(range(len(_FNS))),
        st.integers(min_value=1, max_value=64),  # n
        st.integers(min_value=0, max_value=2**63 - 1),  # seed
    ),
    min_size=2,
    max_size=8,
)


def _build(task_set):
    return [
        SweepTask.make(_FNS[fn_index], params={"n": n}, seed=seed)
        for fn_index, n, seed in task_set
    ]


def _payload_bytes(payload):
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


@settings(max_examples=5)
@given(task_sets)
def test_serial_and_parallel_manifests_identical(task_set):
    tasks = _build(task_set)
    serial = run_sweep(tasks, RuntimeConfig(backend="serial"), name="prop")
    parallel = run_sweep(
        tasks, RuntimeConfig(backend="process", max_workers=2), name="prop"
    )
    assert serial.manifest.fingerprint() == parallel.manifest.fingerprint()
    for a, b in zip(serial.results, parallel.results):
        assert _payload_bytes(a) == _payload_bytes(b)


@settings(max_examples=5)
@given(task_sets)
def test_serial_and_parallel_telemetry_identical(task_set):
    # The observability satellite: both backends must record the same
    # span *structure* (names, attrs, parent edges — not timings) for
    # every task, and merge to the same metric counter values.
    tasks = [
        SweepTask.make(sweep_fns.instrumented, params={"n": n}, seed=seed)
        for _, n, seed in task_set
    ]

    def _run(config):
        trace, metrics = TraceObserver(), MetricsObserver()
        result = run_sweep(tasks, config, name="prop_obs", observers=[trace, metrics])
        structures = [
            tuple(Span.from_dict(d).structure() for d in record.spans or [])
            for record in result.manifest.tasks
        ]
        return structures, metrics.registry

    serial_structures, serial_registry = _run(RuntimeConfig(backend="serial"))
    parallel_structures, parallel_registry = _run(
        RuntimeConfig(backend="process", max_workers=2)
    )
    assert serial_structures == parallel_structures
    assert serial_registry.counters == parallel_registry.counters
    assert {
        name: state.to_dict()
        for name, state in serial_registry.histograms.items()
    } == {
        name: state.to_dict()
        for name, state in parallel_registry.histograms.items()
    }


@settings(max_examples=25)
@given(task_sets)
def test_cache_hit_returns_bit_identical_payload(task_set):
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        tasks = _build(task_set)
        for task in tasks:
            payload = task.execute()
            key = cache_key(task)
            cache.store(key, payload)
            hit, loaded = cache.load(key)
            assert hit
            assert _payload_bytes(loaded) == _payload_bytes(payload)


@settings(max_examples=25)
@given(task_sets)
def test_warm_cache_reproduces_cold_results(task_set):
    with tempfile.TemporaryDirectory() as tmp:
        config = RuntimeConfig(cache_dir=tmp)
        tasks = _build(task_set)
        cold = run_sweep(tasks, config)
        warm = run_sweep(tasks, config)
        assert warm.manifest.cache_hits == len(tasks)
        assert warm.manifest.fingerprint() == cold.manifest.fingerprint()
        for a, b in zip(cold.results, warm.results):
            assert _payload_bytes(a) == _payload_bytes(b)


@settings(max_examples=20)
@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_spawned_seeds_never_collide(root_seed):
    seeds = spawn_task_seeds(root_seed, 500)
    assert len(set(seeds)) == 500


def test_spawned_seeds_never_collide_10k():
    # The ISSUE's explicit scale: 10k tasks under one root, zero
    # collisions (128-bit seeds make a collision astronomically rare).
    seeds = spawn_task_seeds(0, 10_000)
    assert len(set(seeds)) == 10_000


def test_spawned_seeds_disjoint_across_adjacent_roots():
    pool = []
    for root in range(10):
        pool.extend(spawn_task_seeds(root, 200))
    assert len(set(pool)) == len(pool)


@settings(max_examples=25)
@given(
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=1, max_value=300),
)
def test_spawn_prefix_property(root_seed, n):
    # Child i depends only on (root, i): any shorter spawn is a prefix.
    full = spawn_task_seeds(root_seed, 300)
    assert spawn_task_seeds(root_seed, n) == full[:n]


@settings(max_examples=10)
@given(task_sets)
def test_root_seeding_is_backend_independent(task_set):
    # Unseeded tasks get their seeds BEFORE dispatch, so root-seeded
    # sweeps agree across backends too.
    unseeded = [
        SweepTask.make(_FNS[fn_index], params={"n": n})
        for fn_index, n, _ in task_set
    ]
    serial = run_sweep(unseeded, RuntimeConfig(backend="serial"), root_seed=3)
    again = run_sweep(unseeded, RuntimeConfig(backend="serial"), root_seed=3)
    assert serial.manifest.fingerprint() == again.manifest.fingerprint()
    seeds = [t.seed for t in serial.manifest.tasks]
    assert all(s is not None for s in seeds)
    assert len(set(seeds)) == len(seeds)
