"""Tests for trajectory generation and sampling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import MobilityError
from repro.mobility import LawnmowerTrajectory, LineTrajectory, WaypointTrajectory
from repro.mobility.trajectory import Trajectory


class TestLine:
    def test_length_and_duration(self):
        traj = LineTrajectory((0, 0), (3, 4), speed_mps=0.5)
        assert traj.length == pytest.approx(5.0)
        assert traj.duration == pytest.approx(10.0)

    def test_position_interpolation(self):
        traj = LineTrajectory((0, 0), (10, 0))
        np.testing.assert_allclose(traj.position_at(5.0), [5.0, 0.0])

    def test_out_of_range_distance(self):
        traj = LineTrajectory((0, 0), (1, 0))
        with pytest.raises(MobilityError):
            traj.position_at(2.0)
        with pytest.raises(MobilityError):
            traj.position_at(-0.1)

    def test_sampling_even_spacing(self):
        traj = LineTrajectory((0, 0), (2, 0))
        samples = traj.sample(5)
        xs = [s.position[0] for s in samples]
        np.testing.assert_allclose(xs, [0, 0.5, 1.0, 1.5, 2.0])

    def test_sample_times_match_speed(self):
        traj = LineTrajectory((0, 0), (1, 0), speed_mps=0.5)
        samples = traj.sample(3)
        assert samples[-1].time == pytest.approx(2.0)

    def test_sample_every(self):
        traj = LineTrajectory((0, 0), (1, 0))
        samples = traj.sample_every(0.1)
        assert len(samples) == 11

    def test_invalid_construction(self):
        with pytest.raises(MobilityError):
            LineTrajectory((0, 0), (0, 0))
        with pytest.raises(MobilityError):
            LineTrajectory((0, 0), (1, 0), speed_mps=0.0)
        with pytest.raises(MobilityError):
            Trajectory([(0, 0)], 1.0)

    def test_minimum_samples(self):
        with pytest.raises(MobilityError):
            LineTrajectory((0, 0), (1, 0)).sample(1)


class TestAperture:
    def test_aperture_length(self):
        traj = LineTrajectory((0, 0), (5, 0))
        sub = traj.aperture_segment(2.0)
        assert sub.length == pytest.approx(2.0)

    def test_aperture_centered(self):
        traj = LineTrajectory((0, 0), (4, 0))
        sub = traj.aperture_segment(2.0, center_fraction=0.5)
        assert sub.position_at(0.0)[0] == pytest.approx(1.0)
        assert sub.position_at(2.0)[0] == pytest.approx(3.0)

    def test_aperture_clipped_to_ends(self):
        traj = LineTrajectory((0, 0), (4, 0))
        sub = traj.aperture_segment(2.0, center_fraction=0.0)
        assert sub.position_at(0.0)[0] == pytest.approx(0.0)

    def test_aperture_too_long(self):
        with pytest.raises(MobilityError):
            LineTrajectory((0, 0), (1, 0)).aperture_segment(2.0)

    @given(st.floats(0.2, 4.9), st.floats(0.0, 1.0))
    def test_aperture_within_parent(self, length, center):
        traj = LineTrajectory((0, 0), (5, 0))
        sub = traj.aperture_segment(length, center)
        assert sub.length == pytest.approx(length, rel=1e-6)
        for d in (0.0, sub.length):
            p = sub.position_at(d)
            assert -1e-9 <= p[0] <= 5.0 + 1e-9


class TestWaypointAndLawnmower:
    def test_waypoint_path_length(self):
        traj = WaypointTrajectory([(0, 0), (1, 0), (1, 1)])
        assert traj.length == pytest.approx(2.0)

    def test_waypoint_interpolation_across_segments(self):
        traj = WaypointTrajectory([(0, 0), (1, 0), (1, 1)])
        np.testing.assert_allclose(traj.position_at(1.5), [1.0, 0.5])

    def test_lawnmower_covers_area(self):
        traj = LawnmowerTrajectory((0, 0), width_m=10.0, depth_m=6.0,
                                   lane_spacing_m=2.0)
        assert traj.n_lanes == 4
        xs = np.array([w[0] for w in traj.waypoints])
        ys = np.array([w[1] for w in traj.waypoints])
        assert xs.min() == 0.0 and xs.max() == 10.0
        assert ys.min() == 0.0 and ys.max() == 6.0

    def test_lawnmower_alternates_direction(self):
        traj = LawnmowerTrajectory((0, 0), 4.0, 4.0, lane_spacing_m=2.0)
        # Lane 0 runs left->right, lane 1 right->left.
        assert traj.waypoints[0][0] == 0.0
        assert traj.waypoints[1][0] == 4.0
        assert traj.waypoints[2][0] == 4.0
        assert traj.waypoints[3][0] == 0.0

    def test_invalid_lawnmower(self):
        with pytest.raises(MobilityError):
            LawnmowerTrajectory((0, 0), -1.0, 4.0)
        with pytest.raises(MobilityError):
            LawnmowerTrajectory((0, 0), 4.0, 4.0, lane_spacing_m=0.0)
