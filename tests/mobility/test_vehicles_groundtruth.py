"""Tests for the drone, ground robot, and OptiTrack models."""

import numpy as np
import pytest

from repro.constants import RELAY_POWER_CONSUMPTION_W, RELAY_WEIGHT_GRAMS
from repro.errors import MobilityError, PayloadError
from repro.mobility import Drone, GroundRobot, LineTrajectory, OptiTrack


class TestDrone:
    def test_relay_payload_fits(self):
        drone = Drone()
        assert drone.payload_grams == RELAY_WEIGHT_GRAMS

    def test_reader_payload_rejected(self):
        """The paper's §3 argument: a 500+ g reader cannot fly indoors."""
        with pytest.raises(PayloadError):
            Drone(payload_grams=500.0)

    def test_battery_fraction_under_3_percent(self):
        """Paper §6.2: the relay draws <3% of the battery's current."""
        drone = Drone(payload_power_w=RELAY_POWER_CONSUMPTION_W)
        assert drone.payload_battery_fraction < 0.03
        assert drone.payload_current_a == pytest.approx(5.8 / 12.0)

    def test_fly_samples_with_jitter(self):
        drone = Drone(hover_jitter_std_m=0.05)
        traj = LineTrajectory((0, 0), (5, 0))
        rng = np.random.default_rng(0)
        samples = drone.fly(traj, 0.1, rng)
        deviations = [abs(s.position[1]) for s in samples]
        assert 0.01 < np.std(deviations) < 0.2

    def test_fly_without_rng_is_exact(self):
        drone = Drone()
        traj = LineTrajectory((0, 0), (5, 0))
        samples = drone.fly(traj, 0.5, rng=None)
        assert all(s.position[1] == 0.0 for s in samples)

    def test_negative_jitter_rejected(self):
        with pytest.raises(MobilityError):
            Drone(hover_jitter_std_m=-0.01)


class TestGroundRobot:
    def test_drive_jitter_smaller_than_drone(self):
        robot = GroundRobot()
        assert robot.track_jitter_std_m < Drone().hover_jitter_std_m

    def test_drive_samples(self):
        robot = GroundRobot()
        traj = LineTrajectory((0, 0), (2.5, 0), speed_mps=robot.speed_mps)
        samples = robot.drive(traj, 0.1, np.random.default_rng(0))
        assert len(samples) == 26

    def test_invalid_speed(self):
        with pytest.raises(MobilityError):
            GroundRobot(speed_mps=0.0)


class TestOptiTrack:
    def test_observation_noise_statistics(self):
        tracker = OptiTrack(accuracy_std_m=0.005)
        rng = np.random.default_rng(1)
        observations = np.array(
            [tracker.observe((1.0, 2.0), rng) for _ in range(2000)]
        )
        assert np.mean(observations[:, 0]) == pytest.approx(1.0, abs=0.001)
        assert np.std(observations[:, 0]) == pytest.approx(0.005, rel=0.1)

    def test_out_of_view_raises(self):
        """The paper's §9 limitation: drones must stay in camera view."""
        tracker = OptiTrack(coverage_min=(0, 0), coverage_max=(10, 10))
        assert tracker.in_view((5, 5))
        assert not tracker.in_view((11, 5))
        with pytest.raises(MobilityError):
            tracker.observe((11.0, 5.0))

    def test_observe_trajectory(self):
        tracker = OptiTrack(accuracy_std_m=0.0)
        traj = LineTrajectory((0, 0), (1, 0))
        drone = Drone(hover_jitter_std_m=0.0)
        flown = drone.fly(traj, 0.25)
        observed = tracker.observe_trajectory(flown)
        for a, b in zip(flown, observed):
            np.testing.assert_allclose(a.position, b.position)
            assert a.time == b.time

    def test_invalid_coverage(self):
        with pytest.raises(MobilityError):
            OptiTrack(coverage_min=(5, 5), coverage_max=(0, 0))
