"""End-to-end tests of the Localizer facade."""

import numpy as np
import pytest

from repro.channel import Environment
from repro.constants import UHF_CENTER_FREQUENCY
from repro.errors import LocalizationError
from repro.localization import Grid2D, Localizer, MeasurementModel
from repro.mobility import LineTrajectory

F = UHF_CENTER_FREQUENCY


def make_measurements(tag, reader=(-8.0, 0.0), env=None, snr_db=None, seed=0):
    model = MeasurementModel(environment=env, reader_position=reader)
    samples = LineTrajectory((0.0, 0.0), (3.0, 0.0)).sample_every(0.05)
    rng = np.random.default_rng(seed) if snr_db is not None else None
    return model.measure_along(samples, tag, rng, snr_db or np.inf)


HALF_PLANE = Grid2D(-1.0, 4.0, 0.2, 4.0, 0.10)


class TestLocalizer:
    def test_noiseless_localization_is_nearly_exact(self):
        tag = (1.4, 1.9)
        localizer = Localizer(frequency_hz=F)
        result = localizer.locate(make_measurements(tag), search_grid=HALF_PLANE)
        assert result.error_to(tag) < 0.03

    def test_multiple_tag_positions(self):
        localizer = Localizer(frequency_hz=F)
        for tag in [(0.5, 0.9), (2.6, 1.4), (1.5, 3.0)]:
            result = localizer.locate(
                make_measurements(tag), search_grid=HALF_PLANE
            )
            assert result.error_to(tag) < 0.10, tag

    def test_noise_degrades_gracefully(self):
        tag = (1.4, 1.9)
        localizer = Localizer(frequency_hz=F)
        result = localizer.locate(
            make_measurements(tag, snr_db=10.0), search_grid=HALF_PLANE
        )
        assert result.error_to(tag) < 0.30

    def test_result_carries_heatmaps(self):
        tag = (1.4, 1.9)
        result = Localizer(frequency_hz=F).locate(
            make_measurements(tag), search_grid=HALF_PLANE
        )
        assert result.coarse_heatmap.values.size > 0
        assert result.fine_heatmap.grid.resolution < HALF_PLANE.resolution
        assert result.peak_distance_to_trajectory_m >= 0.0

    def test_default_grid_from_trajectory(self):
        tag = (1.4, 1.9)
        result = Localizer(frequency_hz=F).locate(make_measurements(tag))
        # Without the half-plane prior the mirror image may win; the
        # estimate is correct up to reflection across the flight line.
        mirrored = np.array([tag[0], -tag[1]])
        error = min(result.error_to(tag), result.error_to(mirrored))
        assert error < 0.05

    def test_multipath_environment(self):
        env = Environment.warehouse_aisle(aisle_length_m=8.0, aisle_width_m=5.0)
        tag = (1.5, 1.2)
        localizer = Localizer(frequency_hz=F)
        result = localizer.locate(
            make_measurements(tag, env=env, snr_db=25.0), search_grid=HALF_PLANE
        )
        assert result.error_to(tag) < 0.5

    def test_rssi_baseline_worse_than_sar(self):
        tag = (1.4, 1.9)
        measurements = make_measurements(tag, snr_db=15.0)
        localizer = Localizer(frequency_hz=F)
        sar_error = localizer.locate(
            measurements, search_grid=HALF_PLANE
        ).error_to(tag)
        model = MeasurementModel(reader_position=(-8.0, 0.0))
        calibration = abs(model.relay_gain / model.reference_gain)
        rssi_estimate = localizer.locate_rssi(
            measurements, calibration, search_grid=HALF_PLANE
        )
        rssi_error = float(np.linalg.norm(rssi_estimate - np.asarray(tag)))
        assert sar_error <= rssi_error + 0.05

    def test_invalid_construction(self):
        with pytest.raises(LocalizationError):
            Localizer(frequency_hz=-1.0)
        with pytest.raises(LocalizationError):
            Localizer(frequency_hz=F, coarse_resolution=0.0)
