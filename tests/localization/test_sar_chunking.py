"""Chunked evaluation must not change SAR numerics (ISSUE satellite).

The matched filter sums coherently over poses, and the chunk axis is
the candidate-node axis — chunk boundaries therefore cannot change any
node's sum. These tests pin that claim to 1e-12 across chunk widths,
storage modes, and the shared-geometry fast path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.localization import (
    DEFAULT_CHUNK_NODES,
    Grid2D,
    SarGeometry,
    grid_geometry,
    sar_heatmap,
    sar_profile,
)


@pytest.fixture()
def scene():
    rng = np.random.default_rng(42)
    positions = np.column_stack(
        [np.linspace(-1.0, 1.0, 25), np.zeros(25)]
    )
    channels = rng.normal(size=25) + 1j * rng.normal(size=25)
    grid = Grid2D(x_min=-3.0, x_max=3.0, y_min=0.5, y_max=4.5, resolution=0.1)
    return positions, channels, grid


def test_default_chunk_nodes_is_public():
    assert isinstance(DEFAULT_CHUNK_NODES, int)
    assert DEFAULT_CHUNK_NODES >= 1


@pytest.mark.parametrize("chunk_nodes", [1, 7, 64, 1000, DEFAULT_CHUNK_NODES])
def test_heatmap_chunked_vs_unchunked(scene, chunk_nodes):
    positions, channels, grid = scene
    reference = sar_heatmap(
        positions, channels, grid, 915e6, chunk_nodes=grid.n_points
    )
    chunked = sar_heatmap(
        positions, channels, grid, 915e6, chunk_nodes=chunk_nodes
    )
    np.testing.assert_allclose(
        chunked.values, reference.values, rtol=0.0, atol=1e-12
    )


@pytest.mark.parametrize("chunk_nodes", [3, 50, 999])
def test_profile_chunked_vs_unchunked(scene, chunk_nodes):
    positions, channels, _ = scene
    rng = np.random.default_rng(1)
    points = rng.uniform(-3.0, 3.0, size=(501, 2))
    reference = sar_profile(
        positions, channels, points, 915e6, chunk_nodes=len(points)
    )
    chunked = sar_profile(
        positions, channels, points, 915e6, chunk_nodes=chunk_nodes
    )
    np.testing.assert_allclose(chunked, reference, rtol=0.0, atol=1e-12)


def test_stored_vs_streamed_distances(scene):
    positions, channels, grid = scene
    gx, gy = grid.meshgrid()
    nodes = np.column_stack([gx.ravel(), gy.ravel()])
    stored = SarGeometry(positions, nodes, chunk_nodes=97, store_distances=True)
    streamed = SarGeometry(
        positions, nodes, chunk_nodes=97, store_distances=False
    )
    assert stored.stores_distances and not streamed.stores_distances
    np.testing.assert_allclose(
        stored.profile(channels, 915e6),
        streamed.profile(channels, 915e6),
        rtol=0.0,
        atol=1e-12,
    )


def test_shared_geometry_matches_fresh_compute(scene):
    positions, channels, grid = scene
    geometry = grid_geometry(positions, grid, chunk_nodes=111)
    shared = sar_heatmap(positions, channels, grid, 915e6, geometry=geometry)
    fresh = sar_heatmap(positions, channels, grid, 915e6)
    np.testing.assert_allclose(
        shared.values, fresh.values, rtol=0.0, atol=1e-12
    )


def test_rssi_mismatch_chunk_invariant(scene):
    positions, _, grid = scene
    gx, gy = grid.meshgrid()
    nodes = np.column_stack([gx.ravel(), gy.ravel()])
    rng = np.random.default_rng(5)
    ranges_m = rng.uniform(1.0, 5.0, size=len(positions))
    narrow = SarGeometry(positions, nodes, chunk_nodes=13)
    wide = SarGeometry(positions, nodes, chunk_nodes=len(nodes))
    np.testing.assert_allclose(
        narrow.rssi_mismatch(ranges_m),
        wide.rssi_mismatch(ranges_m),
        rtol=0.0,
        atol=1e-12,
    )


def test_geometry_reuse_across_frequencies(scene):
    positions, channels, grid = scene
    geometry = grid_geometry(positions, grid)
    for frequency_hz in (902.75e6, 915e6, 927.25e6):
        shared = sar_heatmap(
            positions, channels, grid, frequency_hz, geometry=geometry
        )
        fresh = sar_heatmap(positions, channels, grid, frequency_hz)
        np.testing.assert_allclose(
            shared.values, fresh.values, rtol=0.0, atol=1e-12
        )
