"""Tests for the search grid and the SAR matched filter."""

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT, UHF_CENTER_FREQUENCY
from repro.errors import InsufficientMeasurementsError, LocalizationError
from repro.localization import Grid2D, Heatmap, sar_heatmap, sar_profile

F = UHF_CENTER_FREQUENCY


def synth_channels(positions, tag, f=F, amplitude=1.0):
    """Ideal round-trip half-link channels for a tag location."""
    distances = np.linalg.norm(positions - tag, axis=1)
    return amplitude * np.exp(-2j * np.pi * f * 2 * distances / SPEED_OF_LIGHT)


@pytest.fixture
def line_array():
    xs = np.linspace(0.0, 3.0, 40)
    return np.column_stack([xs, np.zeros_like(xs)])


class TestGrid2D:
    def test_shape_and_meshgrid(self):
        grid = Grid2D(0.0, 1.0, 0.0, 2.0, 0.5)
        assert grid.shape == (5, 3)
        gx, gy = grid.meshgrid()
        assert gx.shape == grid.shape

    def test_invalid_extents(self):
        with pytest.raises(LocalizationError):
            Grid2D(1.0, 0.0, 0.0, 1.0, 0.1)
        with pytest.raises(LocalizationError):
            Grid2D(0.0, 1.0, 0.0, 1.0, -0.1)

    def test_too_many_points_rejected(self):
        with pytest.raises(LocalizationError):
            Grid2D(0.0, 100.0, 0.0, 100.0, 0.001)

    def test_refined_around(self):
        grid = Grid2D(0.0, 10.0, 0.0, 10.0, 0.5)
        fine = grid.refined_around((5.0, 5.0), span=1.0, resolution=0.1)
        assert fine.x_min == pytest.approx(4.5)
        assert fine.resolution == 0.1

    def test_around_trajectory(self):
        positions = np.array([[0.0, 0.0], [3.0, 0.0]])
        grid = Grid2D.around_trajectory(positions, margin=2.0, resolution=0.5)
        assert grid.x_min == pytest.approx(-2.0)
        assert grid.x_max == pytest.approx(5.0)
        with pytest.raises(LocalizationError):
            Grid2D.around_trajectory(positions, margin=-1.0, resolution=0.5)


class TestHeatmap:
    def test_shape_validated(self):
        grid = Grid2D(0.0, 1.0, 0.0, 1.0, 0.5)
        with pytest.raises(LocalizationError):
            Heatmap(grid=grid, values=np.zeros((2, 2)))

    def test_argmax_position(self):
        grid = Grid2D(0.0, 1.0, 0.0, 1.0, 0.5)
        values = np.zeros(grid.shape)
        values[2, 1] = 1.0
        hm = Heatmap(grid=grid, values=values)
        np.testing.assert_allclose(hm.argmax_position(), [0.5, 1.0])

    def test_value_at(self):
        grid = Grid2D(0.0, 1.0, 0.0, 1.0, 0.5)
        values = np.arange(9).reshape(3, 3).astype(float)
        hm = Heatmap(grid=grid, values=values)
        assert hm.value_at((0.0, 0.0)) == 0.0
        assert hm.value_at((1.0, 1.0)) == 8.0
        assert hm.value_at((5.0, 5.0)) == 8.0  # clipped to edge


class TestSar:
    def test_peak_at_true_location(self, line_array):
        tag = np.array([1.2, 1.7])
        channels = synth_channels(line_array, tag)
        grid = Grid2D(-0.5, 3.5, 0.3, 3.0, 0.02)
        heatmap = sar_heatmap(line_array, channels, grid, F)
        estimate = heatmap.argmax_position()
        assert np.linalg.norm(estimate - tag) < 0.03

    def test_2d_fix_from_1d_trajectory(self, line_array):
        """The non-linear projection property the paper highlights."""
        for tag in ([0.5, 0.8], [2.5, 2.2]):
            channels = synth_channels(line_array, np.asarray(tag))
            grid = Grid2D(-0.5, 3.5, 0.3, 3.0, 0.05)
            estimate = sar_heatmap(line_array, channels, grid, F).argmax_position()
            assert np.linalg.norm(estimate - np.asarray(tag)) < 0.08

    def test_peak_normalized_magnitude(self, line_array):
        tag = np.array([1.0, 1.0])
        channels = synth_channels(line_array, tag, amplitude=0.123)
        profile = sar_profile(line_array, channels, tag[None, :], F)
        assert profile[0] == pytest.approx(1.0, abs=1e-6)

    def test_normalization_equalizes_unequal_amplitudes(self, line_array):
        tag = np.array([1.0, 1.0])
        channels = synth_channels(line_array, tag)
        # Scale one measurement by a large factor: with normalize=True
        # it must not dominate the solution.
        channels[0] *= 1000.0
        profile = sar_profile(line_array, channels, tag[None, :], F, normalize=True)
        assert profile[0] == pytest.approx(1.0, abs=1e-6)

    def test_profile_input_validation(self, line_array):
        channels = synth_channels(line_array, np.array([1.0, 1.0]))
        with pytest.raises(LocalizationError):
            sar_profile(line_array, channels[:-1], np.zeros((1, 2)), F)
        with pytest.raises(LocalizationError):
            sar_profile(line_array, channels, np.zeros((1, 3)), F)
        with pytest.raises(LocalizationError):
            sar_profile(line_array, channels, np.zeros((1, 2)), -F)
        with pytest.raises(InsufficientMeasurementsError):
            sar_profile(line_array[:1], channels[:1], np.zeros((1, 2)), F)

    def test_resolution_improves_with_aperture(self):
        """Larger aperture -> narrower main lobe (the Fig. 13 physics)."""
        tag = np.array([1.5, 1.5])
        widths = []
        for aperture in (0.5, 2.5):
            xs = np.linspace(1.5 - aperture / 2, 1.5 + aperture / 2, 40)
            positions = np.column_stack([xs, np.zeros_like(xs)])
            channels = synth_channels(positions, tag)
            # Sample P along x through the tag; measure the -3 dB width.
            probe_x = np.linspace(0.5, 2.5, 401)
            probe = np.column_stack([probe_x, np.full_like(probe_x, 1.5)])
            profile = sar_profile(positions, channels, probe, F)
            above = probe_x[profile > 0.707 * profile.max()]
            widths.append(above[-1] - above[0])
        assert widths[1] < widths[0]

    def test_zero_channel_measurement_tolerated(self, line_array):
        tag = np.array([1.0, 1.0])
        channels = synth_channels(line_array, tag)
        channels[3] = 0.0
        profile = sar_profile(line_array, channels, tag[None, :], F)
        assert profile[0] > 0.9
