"""Incremental SAR vs the batch pipeline: bit-level equivalence.

The acceptance bar for the streaming accumulator: after any update
order — one pose at a time, random micro-batches, or one big batch —
``finalize()`` must match the offline batch ``Localizer`` within 1e-9
on every golden scene, because the coherent sum is linear in the poses.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import SPEED_OF_LIGHT, UHF_CENTER_FREQUENCY
from repro.errors import InsufficientMeasurementsError, LocalizationError
from repro.localization import Grid2D, IncrementalSar, Localizer, sar_heatmap
from repro.localization.disentangle import disentangle_series
from repro.scenarios.trials import heatmap_trial, warehouse_trial

F = UHF_CENTER_FREQUENCY

GOLDEN_SCENES = {
    "los": lambda: heatmap_trial("los_aisle", seed=0),
    "multipath": lambda: heatmap_trial("cold_storage_aisles", seed=0),
    "fig12": lambda: warehouse_trial("paper_warehouse_two_floor", 3),
}


def stream_scene(scenario, batch_sizes=None, rng=None):
    """Feed a scenario's measurements into a fresh accumulator."""
    grid = scenario.search_grid
    inc = IncrementalSar(F, grid)
    measurements = list(scenario.measurements)
    if batch_sizes is None:
        for measurement in measurements:
            inc.update_measurement(measurement)
        return inc
    positions, channels = disentangle_series(measurements)
    start = 0
    for size in batch_sizes:
        stop = min(start + size, len(positions))
        if stop > start:
            inc.update(positions[start:stop], channels[start:stop])
        start = stop
    if start < len(positions):
        inc.update(positions[start:], channels[start:])
    return inc


@pytest.mark.parametrize("scene", sorted(GOLDEN_SCENES))
class TestGoldenSceneEquivalence:
    def test_streamed_finalize_matches_batch_localizer(self, scene):
        scenario = GOLDEN_SCENES[scene]()
        batch = Localizer(frequency_hz=F).locate(
            scenario.measurements, search_grid=scenario.search_grid
        )
        inc = stream_scene(scenario)
        streamed = inc.finalize()
        np.testing.assert_allclose(
            streamed.position, batch.position, atol=1e-9
        )
        np.testing.assert_allclose(
            streamed.coarse_heatmap.values,
            batch.coarse_heatmap.values,
            atol=1e-9,
        )
        np.testing.assert_allclose(
            streamed.fine_heatmap.values,
            batch.fine_heatmap.values,
            atol=1e-9,
        )
        assert streamed.peak_distance_to_trajectory_m == pytest.approx(
            batch.peak_distance_to_trajectory_m, abs=1e-9
        )

    def test_random_micro_batches_match_serial(self, scene):
        scenario = GOLDEN_SCENES[scene]()
        rng = np.random.default_rng(scene.encode()[0])
        n = len(scenario.measurements)
        sizes = []
        remaining = n
        while remaining > 0:
            size = int(rng.integers(1, 8))
            sizes.append(size)
            remaining -= size
        serial = stream_scene(scenario)
        batched = stream_scene(scenario, batch_sizes=sizes)
        np.testing.assert_allclose(
            batched.coarse_heatmap().values,
            serial.coarse_heatmap().values,
            atol=1e-9,
        )
        np.testing.assert_allclose(
            batched.finalize().position,
            serial.finalize().position,
            atol=1e-9,
        )

    def test_coarse_heatmap_matches_batch_sar_heatmap(self, scene):
        scenario = GOLDEN_SCENES[scene]()
        inc = stream_scene(scenario)
        positions, channels = disentangle_series(scenario.measurements)
        reference = sar_heatmap(
            positions, channels, scenario.search_grid, F
        )
        np.testing.assert_allclose(
            inc.coarse_heatmap().values, reference.values, atol=1e-9
        )


def ideal_channels(positions, tag):
    d = np.linalg.norm(positions - tag, axis=1)
    return np.exp(-2j * np.pi * F * 2.0 * d / SPEED_OF_LIGHT)


tag_points = st.tuples(st.floats(0.4, 2.6), st.floats(0.7, 2.3)).map(
    np.array
)
pose_counts = st.integers(min_value=8, max_value=40)
resolutions = st.sampled_from([0.08, 0.1, 0.15, 0.2])
split_seeds = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=25, deadline=None)
@given(tag_points, pose_counts, resolutions, split_seeds)
def test_property_serial_equals_micro_batched(tag, n, resolution, split_seed):
    """Any partition of any trajectory accumulates to the same state."""
    xs = np.linspace(0.0, 3.0, n)
    positions = np.column_stack([xs, np.zeros(n)])
    channels = ideal_channels(positions, tag)
    grid = Grid2D(-0.5, 3.5, 0.2, 3.0, resolution)

    serial = IncrementalSar(F, grid)
    serial.update(positions, channels)

    rng = np.random.default_rng(split_seed)
    batched = IncrementalSar(F, grid)
    start = 0
    while start < n:
        stop = min(n, start + int(rng.integers(1, 7)))
        batched.update(positions[start:stop], channels[start:stop])
        start = stop

    np.testing.assert_allclose(
        batched.coarse_heatmap().values,
        serial.coarse_heatmap().values,
        atol=1e-9,
    )
    np.testing.assert_allclose(
        batched.finalize().position, serial.finalize().position, atol=1e-9
    )
    hist_b = batched.history()
    hist_s = serial.history()
    np.testing.assert_array_equal(hist_b[0], hist_s[0])
    np.testing.assert_array_equal(hist_b[1], hist_s[1])


class TestCheckpointRoundTrip:
    def test_payload_round_trip_preserves_finalize(self):
        scenario = heatmap_trial("los_aisle", seed=1)
        inc = stream_scene(scenario)
        clone = IncrementalSar.from_payload(inc.to_payload())
        np.testing.assert_allclose(
            clone.finalize().position, inc.finalize().position, atol=1e-9
        )
        assert clone.n_poses == inc.n_poses

    def test_round_trip_keeps_streaming(self):
        scenario = heatmap_trial("los_aisle", seed=2)
        measurements = list(scenario.measurements)
        half = len(measurements) // 2

        inc = IncrementalSar(F, scenario.search_grid)
        for m in measurements[:half]:
            inc.update_measurement(m)
        clone = IncrementalSar.from_payload(inc.to_payload())
        for m in measurements[half:]:
            inc.update_measurement(m)
            clone.update_measurement(m)
        np.testing.assert_allclose(
            clone.finalize().position, inc.finalize().position, atol=1e-9
        )

    def test_mismatched_accumulator_shape_is_rejected(self):
        inc = IncrementalSar(F, Grid2D(0.0, 1.0, 0.0, 1.0, 0.25))
        payload = inc.to_payload()
        payload["accumulator"] = np.zeros(3, dtype=complex)
        with pytest.raises(LocalizationError):
            IncrementalSar.from_payload(payload)


class TestValidation:
    def make(self):
        return IncrementalSar(F, Grid2D(0.0, 3.0, 0.0, 3.0, 0.2))

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(LocalizationError):
            IncrementalSar(0.0, Grid2D(0.0, 1.0, 0.0, 1.0, 0.25))

    def test_fine_resolution_must_refine_coarse(self):
        with pytest.raises(LocalizationError):
            IncrementalSar(
                F, Grid2D(0.0, 1.0, 0.0, 1.0, 0.05), fine_resolution=0.2
            )

    def test_bad_position_shape_rejected(self):
        with pytest.raises(LocalizationError):
            self.make().update(np.zeros((2, 3)), np.ones(2, dtype=complex))

    def test_channel_count_mismatch_rejected(self):
        with pytest.raises(LocalizationError):
            self.make().update(np.zeros((2, 2)), np.ones(3, dtype=complex))

    def test_nonfinite_values_rejected(self):
        inc = self.make()
        with pytest.raises(LocalizationError):
            inc.update(
                np.array([[np.nan, 0.0]]), np.ones(1, dtype=complex)
            )

    def test_empty_heatmap_is_undefined(self):
        with pytest.raises(InsufficientMeasurementsError):
            self.make().coarse_heatmap()

    def test_single_pose_cannot_finalize(self):
        inc = self.make()
        inc.update(np.array([[0.0, 0.0]]), np.ones(1, dtype=complex))
        with pytest.raises(InsufficientMeasurementsError):
            inc.finalize()

    def test_zero_magnitude_channels_are_kept_unwhitened(self):
        inc = self.make()
        positions = np.array([[0.0, 0.0], [1.0, 0.0]])
        channels = np.array([0.0 + 0.0j, 1.0 + 0.0j])
        inc.update(positions, channels)
        assert inc.n_poses == 2
        assert np.all(np.isfinite(inc.coarse_heatmap().values))
