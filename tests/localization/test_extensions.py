"""Tests for the paper's extension features: 3-D localization (§5.2)
and drone RF self-localization (§5.1/§9)."""

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT, UHF_CENTER_FREQUENCY
from repro.errors import InsufficientMeasurementsError, LocalizationError
from repro.localization import (
    Grid2D,
    Grid3D,
    MeasurementModel,
    Volume,
    locate_3d,
    sar_profile,
    sar_volume,
    self_localize,
    self_localize_from_measurements,
)

F = UHF_CENTER_FREQUENCY


def planar_array(extent=1.6, n=21, z=2.0):
    """A dense lawnmower-style planar aperture at height z."""
    xs, ys = np.meshgrid(np.linspace(0, extent, n), np.linspace(0, extent, n))
    return np.column_stack([xs.ravel(), ys.ravel(), np.full(xs.size, z)])


def channels_for(positions, tag, f=F):
    d = np.linalg.norm(positions - np.asarray(tag), axis=1)
    return np.exp(-2j * np.pi * f * 2 * d / SPEED_OF_LIGHT)


class TestGrid3D:
    def test_shape_and_nodes(self):
        grid = Grid3D(0, 1, 0, 1, 0, 1, 0.5)
        assert grid.shape == (3, 3, 3)
        assert grid.nodes().shape == (27, 3)

    def test_invalid_extents(self):
        with pytest.raises(LocalizationError):
            Grid3D(1, 0, 0, 1, 0, 1, 0.5)
        with pytest.raises(LocalizationError):
            Grid3D(0, 1, 0, 1, 0, 1, -0.5)

    def test_oversized_volume_rejected(self):
        with pytest.raises(LocalizationError):
            Grid3D(0, 100, 0, 100, 0, 100, 0.01)

    def test_refined_around(self):
        grid = Grid3D(0, 10, 0, 10, 0, 10, 1.0)
        fine = grid.refined_around((5, 5, 5), span=1.0, resolution=0.1)
        assert fine.x_min == pytest.approx(4.5)
        assert fine.resolution == 0.1

    def test_volume_shape_validated(self):
        grid = Grid3D(0, 1, 0, 1, 0, 1, 0.5)
        with pytest.raises(LocalizationError):
            Volume(grid=grid, values=np.zeros((2, 2, 2)))

    def test_volume_argmax(self):
        grid = Grid3D(0, 1, 0, 1, 0, 1, 0.5)
        values = np.zeros(grid.shape)
        values[2, 1, 0] = 1.0  # z=1.0, y=0.5, x=0.0
        np.testing.assert_allclose(
            Volume(grid=grid, values=values).argmax_position(), [0.0, 0.5, 1.0]
        )


class Test3DLocalization:
    def test_3d_fix_from_planar_trajectory(self):
        """Paper §5.2: a 2-D trajectory resolves all three coordinates."""
        positions = planar_array()
        tag = np.array([1.0, 0.8, 0.3])
        channels = channels_for(positions, tag)
        grid = Grid3D(-0.5, 2.5, -0.5, 2.5, 0.0, 1.8, 0.15)
        estimate = locate_3d(positions, channels, grid, F)
        assert np.linalg.norm(estimate - tag) < 0.05

    def test_sar_volume_peak_location(self):
        positions = planar_array(extent=1.2, n=16)
        tag = np.array([0.6, 0.6, 0.5])
        channels = channels_for(positions, tag)
        grid = Grid3D(0.0, 1.2, 0.0, 1.2, 0.0, 1.5, 0.1)
        volume = sar_volume(positions, channels, grid, F)
        assert np.linalg.norm(volume.argmax_position() - tag) < 0.15

    def test_dimension_mismatch_rejected(self):
        positions = planar_array(n=4)
        channels = channels_for(positions, [0.5, 0.5, 0.5])
        with pytest.raises(LocalizationError):
            sar_profile(positions, channels, np.zeros((3, 2)), F)

    def test_invalid_fine_parameters(self):
        positions = planar_array(n=4)
        channels = channels_for(positions, [0.5, 0.5, 0.5])
        grid = Grid3D(0, 1, 0, 1, 0, 1, 0.25)
        with pytest.raises(LocalizationError):
            locate_3d(positions, channels, grid, F, fine_resolution=-1.0)


class TestSelfLocalization:
    def make_flight(self, origin, reader, snr_db=25.0, seed=0):
        model = MeasurementModel(reader_position=reader, reader_frequency_hz=F)
        relative = np.column_stack([np.linspace(0, 3, 40), np.zeros(40)])
        rng = np.random.default_rng(seed)
        measurements = [
            model.measure(np.asarray(origin) + q, (2.0, 3.0), rng, snr_db)
            for q in relative
        ]
        return measurements, relative

    def test_recovers_trajectory_origin(self):
        """The §9 future-work idea: SAR on the reader-relay half-link."""
        reader = (6.0, 5.0)
        origin = np.array([1.0, 1.5])
        measurements, relative = self.make_flight(origin, reader)
        grid = Grid2D(-1.0, 3.0, 0.0, 4.0, 0.03)
        estimate, heatmap = self_localize_from_measurements(
            measurements, relative, reader, grid, F
        )
        assert np.linalg.norm(estimate - origin) < 0.15
        assert heatmap.peak_value > 0.5

    def test_different_origins_distinguished(self):
        reader = (6.0, 5.0)
        grid = Grid2D(-1.0, 3.0, 0.0, 4.0, 0.05)
        for origin in ([0.0, 0.5], [2.0, 2.5]):
            measurements, relative = self.make_flight(np.asarray(origin), reader)
            estimate, _ = self_localize_from_measurements(
                measurements, relative, reader, grid, F
            )
            assert np.linalg.norm(estimate - np.asarray(origin)) < 0.2, origin

    def test_input_validation(self):
        refs = np.ones(5, dtype=complex)
        good_rel = np.zeros((5, 2))
        grid = Grid2D(0, 1, 0, 1, 0.5)
        with pytest.raises(LocalizationError):
            self_localize(refs, np.zeros((4, 2)), (0, 0), grid, F)
        with pytest.raises(LocalizationError):
            self_localize(refs, np.zeros((5, 3)), (0, 0), grid, F)

    def test_too_few_measurements(self):
        model = MeasurementModel(reader_position=(5.0, 5.0))
        one = [model.measure((0.0, 0.0), (1.0, 1.0))]
        with pytest.raises(InsufficientMeasurementsError):
            self_localize_from_measurements(
                one, np.zeros((1, 2)), (5.0, 5.0), Grid2D(0, 1, 0, 1, 0.5), F
            )
