"""Tests for peak selection, multi-resolution search, and the RSSI baseline."""

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT, UHF_CENTER_FREQUENCY
from repro.errors import InsufficientMeasurementsError, LocalizationError
from repro.localization import (
    Grid2D,
    Heatmap,
    find_peaks,
    multires_locate,
    rssi_distances,
    rssi_locate,
    select_nearest_to_trajectory,
)
from repro.localization.peaks import Peak, distance_to_polyline

F = UHF_CENTER_FREQUENCY


def synth_channels(positions, tag, f=F):
    distances = np.linalg.norm(positions - tag, axis=1)
    amplitudes = (SPEED_OF_LIGHT / f / (4 * np.pi * distances)) ** 2
    return amplitudes * np.exp(-2j * np.pi * f * 2 * distances / SPEED_OF_LIGHT)


@pytest.fixture
def line_array():
    xs = np.linspace(0.0, 3.0, 40)
    return np.column_stack([xs, np.zeros_like(xs)])


def two_peak_heatmap():
    grid = Grid2D(0.0, 4.0, 0.0, 4.0, 0.5)
    values = np.zeros(grid.shape)
    values[2, 2] = 0.8  # near peak at (1.0, 1.0)
    values[6, 6] = 1.0  # far peak at (3.0, 3.0)
    return Heatmap(grid=grid, values=values)


class TestPeaks:
    def test_find_both_peaks(self):
        peaks = find_peaks(two_peak_heatmap(), relative_threshold=0.5)
        assert len(peaks) == 2
        np.testing.assert_allclose(peaks[0].position, [3.0, 3.0])

    def test_threshold_filters_weak_peaks(self):
        peaks = find_peaks(two_peak_heatmap(), relative_threshold=0.9)
        assert len(peaks) == 1

    def test_invalid_threshold(self):
        with pytest.raises(LocalizationError):
            find_peaks(two_peak_heatmap(), relative_threshold=0.0)

    def test_flat_heatmap_everything_is_peak(self):
        grid = Grid2D(0.0, 1.0, 0.0, 1.0, 0.5)
        hm = Heatmap(grid=grid, values=np.ones(grid.shape))
        peaks = find_peaks(hm, relative_threshold=0.5, max_peaks=4)
        assert len(peaks) == 4

    def test_nearest_selection(self):
        """The §5.2 rule: the weaker-but-nearer peak wins."""
        trajectory = np.array([[0.0, 0.0], [2.0, 0.0]])
        peaks = find_peaks(two_peak_heatmap(), relative_threshold=0.5)
        chosen = select_nearest_to_trajectory(peaks, trajectory)
        np.testing.assert_allclose(chosen.position, [1.0, 1.0])
        assert chosen.distance_to_trajectory_m == pytest.approx(1.0)

    def test_empty_selection_rejected(self):
        with pytest.raises(LocalizationError):
            select_nearest_to_trajectory([], np.zeros((2, 2)))

    def test_distance_to_polyline(self):
        poly = np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 2.0]])
        assert distance_to_polyline((1.0, 1.0), poly) == pytest.approx(1.0)
        assert distance_to_polyline((3.0, 1.0), poly) == pytest.approx(1.0)
        assert distance_to_polyline((0.0, 0.0), poly) == pytest.approx(0.0)
        # Beyond an endpoint: distance to the endpoint.
        assert distance_to_polyline((-1.0, 0.0), poly) == pytest.approx(1.0)

    def test_distance_to_single_point_polyline(self):
        assert distance_to_polyline((3.0, 4.0), np.array([[0.0, 0.0]])) == 5.0


class TestMultires:
    def test_refines_estimate(self, line_array):
        tag = np.array([1.3, 1.8])
        channels = synth_channels(line_array, tag)
        grid = Grid2D(-0.5, 3.5, 0.3, 3.5, 0.25)
        result = multires_locate(
            line_array, channels, grid, F, fine_resolution=0.01
        )
        assert np.linalg.norm(result.position - tag) < 0.02
        # The fine stage beats the coarse resolution.
        coarse_estimate = result.coarse_heatmap.argmax_position()
        assert np.linalg.norm(result.position - tag) <= np.linalg.norm(
            coarse_estimate - tag
        ) + 1e-9

    def test_argmax_rule_option(self, line_array):
        tag = np.array([1.3, 1.8])
        channels = synth_channels(line_array, tag)
        grid = Grid2D(-0.5, 3.5, 0.3, 3.5, 0.25)
        result = multires_locate(
            line_array, channels, grid, F, use_nearest_peak_rule=False
        )
        assert np.linalg.norm(result.position - tag) < 0.05

    def test_invalid_fine_parameters(self, line_array):
        channels = synth_channels(line_array, np.array([1.0, 1.0]))
        grid = Grid2D(-0.5, 3.5, 0.3, 3.5, 0.25)
        with pytest.raises(LocalizationError):
            multires_locate(line_array, channels, grid, F, fine_resolution=0.5)
        with pytest.raises(LocalizationError):
            multires_locate(line_array, channels, grid, F, fine_span=-1.0)


class TestRssi:
    def test_distances_inverted_exactly(self, line_array):
        """Free-space magnitudes invert to the true distances."""
        tag = np.array([1.0, 2.0])
        channels = synth_channels(line_array, tag)
        distances = rssi_distances(channels, F, calibration_gain=1.0)
        true = np.linalg.norm(line_array - tag, axis=1)
        np.testing.assert_allclose(distances, true, rtol=1e-9)

    def test_calibration_gain_scales_distances(self, line_array):
        channels = synth_channels(line_array, np.array([1.0, 2.0]))
        base = rssi_distances(channels, F, 1.0)
        scaled = rssi_distances(channels, F, 4.0)
        np.testing.assert_allclose(scaled, 2.0 * base)

    def test_locate_exact_in_free_space(self, line_array):
        tag = np.array([1.0, 2.0])
        channels = synth_channels(line_array, tag)
        grid = Grid2D(-0.5, 3.5, 0.3, 3.5, 0.05)
        estimate, heatmap = rssi_locate(line_array, channels, grid, F)
        assert np.linalg.norm(estimate - tag) < 0.08
        assert heatmap.values.shape == grid.shape

    def test_needs_three_poses(self):
        positions = np.zeros((2, 2))
        positions[1, 0] = 1.0
        channels = np.ones(2, dtype=complex)
        grid = Grid2D(0.0, 1.0, 0.0, 1.0, 0.5)
        with pytest.raises(InsufficientMeasurementsError):
            rssi_locate(positions, channels, grid, F)

    def test_invalid_inputs(self):
        with pytest.raises(LocalizationError):
            rssi_distances(np.array([1.0 + 0j]), -F)
        with pytest.raises(LocalizationError):
            rssi_distances(np.array([0.0 + 0j]), F)
        with pytest.raises(LocalizationError):
            rssi_distances(np.array([1.0 + 0j]), F, calibration_gain=0.0)
