"""Property-based tests of SAR localization invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import SPEED_OF_LIGHT, UHF_CENTER_FREQUENCY
from repro.localization import Grid2D, multires_locate, sar_profile

F = UHF_CENTER_FREQUENCY


def channels_for(positions, tag):
    d = np.linalg.norm(positions - tag, axis=1)
    return np.exp(-2j * np.pi * F * 2 * d / SPEED_OF_LIGHT)


def line_positions(n=30, length=3.0):
    xs = np.linspace(0.0, length, n)
    return np.column_stack([xs, np.zeros(n)])


tags = st.tuples(st.floats(0.3, 2.7), st.floats(0.6, 2.5)).map(np.array)
shifts = st.tuples(st.floats(-30.0, 30.0), st.floats(-30.0, 30.0)).map(np.array)
angles = st.floats(0.0, 2.0 * np.pi)


@settings(max_examples=15, deadline=None)
@given(tags, shifts)
def test_translation_invariance(tag, shift):
    """Shifting the whole scene shifts the estimate identically."""
    positions = line_positions()
    channels = channels_for(positions, tag)
    grid = Grid2D(-0.5, 3.5, 0.3, 3.0, 0.1)
    base = multires_locate(positions, channels, grid, F).position

    moved_positions = positions + shift
    moved_channels = channels_for(moved_positions, tag + shift)
    moved_grid = Grid2D(
        grid.x_min + shift[0], grid.x_max + shift[0],
        grid.y_min + shift[1], grid.y_max + shift[1],
        grid.resolution,
    )
    moved = multires_locate(moved_positions, moved_channels, moved_grid, F).position
    np.testing.assert_allclose(moved - shift, base, atol=0.03)


@settings(max_examples=10, deadline=None)
@given(tags, angles)
def test_rotation_invariance(tag, angle):
    """Rotating the scene rotates the estimate (physics has no preferred
    axis; only the grid quantization differs)."""
    positions = line_positions()
    channels = channels_for(positions, tag)
    grid = Grid2D(-0.5, 3.5, 0.3, 3.0, 0.05)
    base = multires_locate(positions, channels, grid, F).position

    rot = np.array(
        [[np.cos(angle), -np.sin(angle)], [np.sin(angle), np.cos(angle)]]
    )
    rotated_positions = positions @ rot.T
    rotated_tag = rot @ tag
    rotated_channels = channels_for(rotated_positions, rotated_tag)
    # The rotated half-plane grid: probe a dense point cloud around the
    # rotated true answer instead of building an axis-aligned grid.
    probe = rotated_tag + np.random.default_rng(0).uniform(-0.4, 0.4, (400, 2))
    probe = np.vstack([probe, rotated_tag[None, :]])
    profile = sar_profile(rotated_positions, rotated_channels, probe, F)
    best = probe[np.argmax(profile)]
    np.testing.assert_allclose(best, rotated_tag, atol=0.05)
    # And the unrotated estimate matched the tag to grid precision.
    np.testing.assert_allclose(base, tag, atol=0.05)


@settings(max_examples=15, deadline=None)
@given(tags, st.floats(0.05, 3.0))
def test_global_phase_invariance(tag, phase):
    """A constant complex factor on every channel (the G/C residue of
    Eq. 10) must not move the peak at all."""
    positions = line_positions()
    channels = channels_for(positions, tag)
    rotated = channels * np.exp(1j * phase) * 0.37
    probe = tag[None, :]
    assert sar_profile(positions, rotated, probe, F)[0] == pytest.approx(
        sar_profile(positions, channels, probe, F)[0], abs=1e-9
    )


@settings(max_examples=15, deadline=None)
@given(tags)
def test_peak_value_bounded_by_one(tag):
    """With normalization, P <= 1 everywhere, = 1 only at coherence."""
    positions = line_positions()
    channels = channels_for(positions, tag)
    rng = np.random.default_rng(1)
    probe = np.vstack(
        [tag[None, :], rng.uniform(-1.0, 4.0, (200, 2))]
    )
    profile = sar_profile(positions, channels, probe, F)
    assert np.all(profile <= 1.0 + 1e-9)
    assert profile[0] == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=10, deadline=None)
@given(tags, st.integers(0, 2**31 - 1))
def test_measurement_order_irrelevant(tag, seed):
    """P(x, y) is a sum: permuting the measurements changes nothing."""
    positions = line_positions()
    channels = channels_for(positions, tag)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(positions))
    probe = tag[None, :]
    assert sar_profile(positions[order], channels[order], probe, F)[
        0
    ] == pytest.approx(sar_profile(positions, channels, probe, F)[0], abs=1e-12)
