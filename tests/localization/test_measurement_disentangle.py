"""Tests for the through-relay measurement model and Eq. 10."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel import Environment, Wall
from repro.constants import SPEED_OF_LIGHT, UHF_CENTER_FREQUENCY
from repro.errors import (
    ConfigurationError,
    InsufficientMeasurementsError,
    LocalizationError,
)
from repro.localization import (
    MeasurementModel,
    ThroughRelayMeasurement,
    disentangle,
    disentangle_series,
)
from repro.mobility import LineTrajectory

F = UHF_CENTER_FREQUENCY


class TestMeasurementModel:
    def test_half_link_phases_match_distances(self):
        """Eq. 7: phase = -2 pi (f 2 d1 + f2 2 d2) / c for single paths."""
        model = MeasurementModel(reader_position=(0.0, 0.0))
        drone = np.array([4.0, 0.0])
        tag = np.array([4.0, 2.0])
        a_rt = model.reader_relay_round_trip(drone)
        b_rt = model.relay_tag_round_trip(drone, tag)
        expected_a = np.exp(-2j * np.pi * model.f * 2 * 4.0 / SPEED_OF_LIGHT)
        expected_b = np.exp(-2j * np.pi * model.f2 * 2 * 2.0 / SPEED_OF_LIGHT)
        assert np.angle(a_rt) == pytest.approx(np.angle(expected_a), abs=1e-9)
        assert np.angle(b_rt) == pytest.approx(np.angle(expected_b), abs=1e-9)

    def test_measurement_factorizes(self):
        """h_target = A_rt * B_rt * G; h_ref = A_rt * C (noiseless)."""
        model = MeasurementModel(reader_position=(-3.0, 1.0))
        drone, tag = np.array([2.0, 0.0]), np.array([3.0, 2.0])
        m = model.measure(drone, tag, rng=None)
        a_rt = model.reader_relay_round_trip(drone)
        b_rt = model.relay_tag_round_trip(drone, tag)
        assert m.h_target == pytest.approx(a_rt * b_rt * model.relay_gain)
        assert m.h_reference == pytest.approx(a_rt * model.reference_gain)

    def test_noise_scales_with_snr(self):
        model = MeasurementModel(reader_position=(-8.0, 0.0))
        rng = np.random.default_rng(0)
        drone, tag = np.array([2.0, 0.0]), np.array([3.0, 2.0])
        clean = model.measure(drone, tag, rng=None)
        high, low = [], []
        for _ in range(400):
            high.append(model.measure(drone, tag, rng, snr_db=30.0).h_target)
            low.append(model.measure(drone, tag, rng, snr_db=10.0).h_target)
        err_high = np.std(np.abs(np.array(high) - clean.h_target))
        err_low = np.std(np.abs(np.array(low) - clean.h_target))
        assert err_low / err_high == pytest.approx(10.0, rel=0.25)

    def test_measure_along_trajectory(self):
        model = MeasurementModel(reader_position=(-8.0, 0.0))
        samples = LineTrajectory((0, 0), (2, 0)).sample(5)
        out = model.measure_along(samples, (1.0, 1.0))
        assert len(out) == 5
        assert out[0].time == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            MeasurementModel(reader_frequency_hz=-1.0)
        with pytest.raises(ConfigurationError):
            MeasurementModel(reference_gain=0.0)


class TestDisentangle:
    def test_division_recovers_half_link(self):
        """Eq. 10 exactly: h_target / h_ref = B_rt * G / C."""
        model = MeasurementModel(reader_position=(-5.0, 0.0))
        drone, tag = np.array([1.0, 0.0]), np.array([2.0, 1.5])
        m = model.measure(drone, tag, rng=None)
        isolated = disentangle(m.h_target, m.h_reference)
        b_rt = model.relay_tag_round_trip(drone, tag)
        expected = b_rt * model.relay_gain / model.reference_gain
        assert isolated == pytest.approx(expected)

    def test_reader_relay_multipath_cancels(self):
        """The point of §5.1: multipath on the reader-relay half-link
        drops out entirely, even though it cannot be modeled away."""
        wall = Wall((-10.0, 3.0), (5.0, 3.0), reflectivity=0.9)
        env = Environment([wall])
        clean_env = Environment([])
        noisy_model = MeasurementModel(environment=env, reader_position=(-5.0, 0.0))
        drone, tag = np.array([1.0, -0.5]), np.array([2.0, -2.0])
        m = noisy_model.measure(drone, tag, rng=None)
        isolated = disentangle(m.h_target, m.h_reference)
        # The relay-tag link is below the wall (no bounce path for it in
        # this geometry? it may have one — compute its own round trip):
        b_rt = noisy_model.relay_tag_round_trip(drone, tag)
        expected = b_rt * noisy_model.relay_gain / noisy_model.reference_gain
        assert isolated == pytest.approx(expected)

    def test_zero_reference_raises(self):
        with pytest.raises(LocalizationError):
            disentangle(1.0 + 0j, 0.0 + 0j)

    def test_series_shapes(self):
        model = MeasurementModel(reader_position=(-8.0, 0.0))
        samples = LineTrajectory((0, 0), (2, 0)).sample(8)
        measurements = model.measure_along(samples, (1.0, 1.0))
        positions, channels = disentangle_series(measurements)
        assert positions.shape == (8, 2)
        assert channels.shape == (8,)

    def test_series_needs_two_measurements(self):
        model = MeasurementModel(reader_position=(-8.0, 0.0))
        one = [model.measure((0.0, 0.0), (1.0, 1.0))]
        with pytest.raises(InsufficientMeasurementsError):
            disentangle_series(one)

    @settings(max_examples=20, deadline=None)
    @given(
        st.floats(-5.0, 5.0),
        st.floats(0.5, 5.0),
        st.floats(-3.0, 3.0),
        st.floats(1.0, 4.0),
    )
    def test_isolated_phase_depends_only_on_tag_link(self, dx, dy, tx, ty):
        """Moving the reader must not change the disentangled channel."""
        drone = np.array([0.0, 0.0])
        tag = np.array([tx, ty])
        if np.allclose(drone, tag):
            return
        readers = [np.array([dx, dy + 6.0]), np.array([dx - 7.0, dy - 6.0])]
        isolated = []
        for reader in readers:
            if np.allclose(reader, drone):
                return
            model = MeasurementModel(reader_position=reader)
            m = model.measure(drone, tag, rng=None)
            isolated.append(disentangle(m.h_target, m.h_reference))
        assert isolated[0] == pytest.approx(isolated[1], rel=1e-9)
