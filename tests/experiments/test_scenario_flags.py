"""Precedence of the experiments CLI ``--scenario``/``--set`` flags.

The contract: spec defaults < smoke overrides < ``--scenario`` <
``--set``. ``scenario_override`` computes the ``scenario=`` keyword the
CLI threads into ``registry.run_experiment``; ``run_experiment`` itself
seeds ``params["scenario"]`` from the spec before applying smoke and
explicit overrides.
"""

from typing import Any, Dict, List

import pytest

from repro.errors import ConfigurationError
from repro.experiments import registry
from repro.experiments.cli import parse_set_overrides, scenario_override
from repro.experiments.registry import ExperimentSpec
from repro.experiments.runner import ExperimentOutput
from repro.scenarios.spec import Scenario


def _spec_stub(captured: Dict[str, Any], **kwargs: Any) -> ExperimentSpec:
    """A no-work spec that records the params build_tasks receives."""

    def build_tasks(**params: Any) -> List[Any]:
        captured.update(params)
        return []

    return ExperimentSpec(
        name="stub_experiment",
        alias="stub",
        description="records its params",
        build_tasks=build_tasks,
        reduce=lambda results, params: list(results),
        render=lambda result: [ExperimentOutput("stub", [], [])],
        **kwargs,
    )


class TestParseSetOverrides:
    def test_values_parse_as_json(self):
        parsed = parse_set_overrides(
            ["traffic.load=8.0", "traffic.use_gen2_mac=true"]
        )
        assert parsed == {"traffic.load": 8.0, "traffic.use_gen2_mac": True}

    def test_exponent_literals_are_numbers(self):
        assert parse_set_overrides(["radio.center_frequency_hz=920e6"]) == {
            "radio.center_frequency_hz": 920e6
        }

    def test_unquoted_names_fall_back_to_strings(self):
        assert parse_set_overrides(["description=cold aisle"]) == {
            "description": "cold aisle"
        }

    @pytest.mark.parametrize("item", ["traffic.load", "=1.0"])
    def test_malformed_items_rejected(self, item):
        with pytest.raises(ConfigurationError):
            parse_set_overrides([item])


class TestScenarioOverride:
    def test_no_flags_means_spec_default_wins(self):
        spec = registry.get("serve")
        assert scenario_override(spec, None, []) is None

    def test_scenario_flag_passes_through_untouched(self):
        spec = registry.get("serve")
        assert scenario_override(spec, "outdoor_yard", []) == "outdoor_yard"

    def test_set_resolves_the_spec_default(self):
        spec = registry.get("serve")
        result = scenario_override(spec, None, ["traffic.load=8.0"])
        assert isinstance(result, Scenario)
        assert result.name == spec.scenario
        assert result.traffic.load == 8.0

    def test_set_applies_on_top_of_the_scenario_flag(self):
        spec = registry.get("serve")
        result = scenario_override(
            spec, "outdoor_yard", ["traffic.load=8.0"]
        )
        assert isinstance(result, Scenario)
        assert result.name == "outdoor_yard"
        assert result.traffic.load == 8.0

    def test_multi_scenario_experiment_rejects_the_flags(self):
        spec = registry.get("ablations")
        assert spec.scenario == ""
        with pytest.raises(ConfigurationError) as err:
            scenario_override(spec, "rf_bench", [])
        assert "ablations" in str(err.value)

    def test_bad_set_item_surfaces_as_configuration_error(self):
        spec = registry.get("serve")
        with pytest.raises(ConfigurationError):
            scenario_override(spec, None, ["no_equals_sign"])


class TestRunExperimentPrecedence:
    def test_spec_scenario_seeds_the_params(self):
        captured: Dict[str, Any] = {}
        spec = _spec_stub(captured, scenario="rf_bench")
        registry.run_experiment(spec)
        assert captured["scenario"] == "rf_bench"

    def test_smoke_override_beats_the_spec_default(self):
        captured: Dict[str, Any] = {}
        spec = _spec_stub(
            captured,
            scenario="rf_bench",
            smoke_overrides={"scenario": "los_aisle"},
        )
        registry.run_experiment(spec, smoke=True)
        assert captured["scenario"] == "los_aisle"

    def test_explicit_override_beats_smoke_and_default(self):
        captured: Dict[str, Any] = {}
        spec = _spec_stub(
            captured,
            scenario="rf_bench",
            smoke_overrides={"scenario": "los_aisle"},
        )
        registry.run_experiment(spec, smoke=True, scenario="outdoor_yard")
        assert captured["scenario"] == "outdoor_yard"

    def test_spec_without_scenario_injects_nothing(self):
        captured: Dict[str, Any] = {}
        spec = _spec_stub(captured)
        registry.run_experiment(spec)
        assert "scenario" not in captured

    def test_every_single_scenario_experiment_names_a_shipped_spec(self):
        from repro.scenarios import registry as scenario_registry

        shipped = scenario_registry.names()
        for spec in registry.REGISTRY:
            if spec.scenario:
                assert spec.scenario in shipped, spec.alias
