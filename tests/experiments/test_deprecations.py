"""The deprecated ``run()`` shims must blame their *caller*.

Every figure module keeps a module-level ``run(...)`` shim that warns
and delegates to the registry. ``stacklevel=2`` is what makes the
DeprecationWarning point at the user's call site instead of the shim
body — this suite pins that, so a refactor can't silently regress the
warning back to "somewhere inside repro".
"""

import warnings
from types import SimpleNamespace

import pytest

from repro.experiments import (
    ablations,
    fig4_spectrum,
    fig6_heatmap,
    fig9_isolation,
    fig10_phase,
    fig11_range,
    fig12_localization,
    fig13_aperture,
    fig14_distance,
    registry,
)

SHIMS = {
    "fig4_spectrum": fig4_spectrum.run,
    "fig6_heatmap": fig6_heatmap.run,
    "fig9_isolation": fig9_isolation.run,
    "fig10_phase": fig10_phase.run,
    "fig11_range": fig11_range.run,
    "fig12_localization": fig12_localization.run,
    "fig13_aperture": fig13_aperture.run,
    "fig14_distance": fig14_distance.run,
    "ablations": ablations.run_all,
}


@pytest.fixture
def stub_registry(monkeypatch):
    """Replace the real sweep with a sentinel so shims stay cheap."""
    calls = []

    def fake_run_experiment(name, **kwargs):
        calls.append((name, kwargs))
        return SimpleNamespace(result="sentinel-result")

    monkeypatch.setattr(registry, "run_experiment", fake_run_experiment)
    return calls


@pytest.mark.parametrize("name", sorted(SHIMS))
def test_shim_warns_deprecation_at_the_call_site(name, stub_registry):
    shim = SHIMS[name]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = shim()
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    warning = deprecations[0]
    # stacklevel=2: the warning is attributed to this test file (the
    # caller), not to the shim module that raised it.
    assert warning.filename == __file__
    assert "registry" in str(warning.message)
    assert result == "sentinel-result"
    assert stub_registry, "shim never delegated to the registry"


@pytest.mark.parametrize("name", sorted(SHIMS))
def test_shim_delegates_its_own_experiment(name, stub_registry):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        SHIMS[name]()
    delegated_name, _ = stub_registry[0]
    assert delegated_name == name
