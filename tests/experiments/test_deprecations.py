"""Every deprecated shim must warn once and blame its *caller*.

Three shim families are pinned here: the figure modules' ``run(...)``
delegators, the ``sim.scenarios`` free-function builders that now route
through the scenario trial registry, and the
``LocalizationScenario.calibration_gain`` -> ``calibration_gain_linear``
rename (property aliases plus the keyword-compat constructor). The
``stacklevel`` assertions are what make each DeprecationWarning point
at the user's call site instead of the shim body — this suite pins
that, so a refactor can't silently regress the warning back to
"somewhere inside repro".
"""

import warnings
from types import SimpleNamespace

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    fig4_spectrum,
    fig6_heatmap,
    fig9_isolation,
    fig10_phase,
    fig11_range,
    fig12_localization,
    fig13_aperture,
    fig14_distance,
    registry,
)
from repro.localization.grid import Grid2D
from repro.sim import scenarios as sim_scenarios
from repro.sim.scenarios import LocalizationScenario

SHIMS = {
    "fig4_spectrum": fig4_spectrum.run,
    "fig6_heatmap": fig6_heatmap.run,
    "fig9_isolation": fig9_isolation.run,
    "fig10_phase": fig10_phase.run,
    "fig11_range": fig11_range.run,
    "fig12_localization": fig12_localization.run,
    "fig13_aperture": fig13_aperture.run,
    "fig14_distance": fig14_distance.run,
    "ablations": ablations.run_all,
}


@pytest.fixture
def stub_registry(monkeypatch):
    """Replace the real sweep with a sentinel so shims stay cheap."""
    calls = []

    def fake_run_experiment(name, **kwargs):
        calls.append((name, kwargs))
        return SimpleNamespace(result="sentinel-result")

    monkeypatch.setattr(registry, "run_experiment", fake_run_experiment)
    return calls


@pytest.mark.parametrize("name", sorted(SHIMS))
def test_shim_warns_deprecation_at_the_call_site(name, stub_registry):
    shim = SHIMS[name]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = shim()
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    warning = deprecations[0]
    # stacklevel=2: the warning is attributed to this test file (the
    # caller), not to the shim module that raised it.
    assert warning.filename == __file__
    assert "registry" in str(warning.message)
    assert result == "sentinel-result"
    assert stub_registry, "shim never delegated to the registry"


@pytest.mark.parametrize("name", sorted(SHIMS))
def test_shim_delegates_its_own_experiment(name, stub_registry):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        SHIMS[name]()
    delegated_name, _ = stub_registry[0]
    assert delegated_name == name


#: Deprecated sim.scenarios builder -> a cheap invocation of it.
BUILDER_SHIMS = {
    "los_heatmap_scenario": lambda: sim_scenarios.los_heatmap_scenario(0),
    "multipath_heatmap_scenario": (
        lambda: sim_scenarios.multipath_heatmap_scenario(0)
    ),
    "fig12_trial": lambda: sim_scenarios.fig12_trial(0),
    "aperture_microbenchmark": (
        lambda: sim_scenarios.aperture_microbenchmark(1.0, 0)
    ),
    "distance_microbenchmark": (
        lambda: sim_scenarios.distance_microbenchmark(5.0, 0)
    ),
}


@pytest.mark.parametrize("name", sorted(BUILDER_SHIMS))
def test_builder_shim_warns_at_the_call_site(name):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = BUILDER_SHIMS[name]()
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    warning = deprecations[0]
    # stacklevel=3 through the _route helper: the warning is attributed
    # to this test file (the caller), not the shim or its dispatcher.
    assert warning.filename == __file__
    assert "repro.scenarios.trials.build_trial" in str(warning.message)
    assert isinstance(result, LocalizationScenario)


@pytest.mark.parametrize("name", sorted(BUILDER_SHIMS))
def test_builder_shim_matches_trial_registry(name):
    from repro.scenarios.trials import build_trial

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shimmed = BUILDER_SHIMS[name]()
    kind, scenario = sim_scenarios._BUILDER_ROUTES[name]
    message = str(caught[0].message)
    assert repr(kind) in message and repr(scenario) in message
    args = {
        "aperture_microbenchmark": {"aperture_m": 1.0, "seed": 0},
        "distance_microbenchmark": {
            "projected_distance_m": 5.0,
            "seed": 0,
        },
    }.get(name, {"seed": 0})
    direct = build_trial(kind, scenario, **args)
    assert shimmed.measurements[0].h_target == (
        direct.measurements[0].h_target
    )


def _scenario(**kwargs):
    base = dict(
        measurements=[],
        tag_position=np.array([1.0, 1.0]),
        search_grid=Grid2D(0.0, 1.0, 0.0, 1.0, 0.5),
        trajectory_positions=np.zeros((2, 2)),
        calibration_gain_linear=2.0,
    )
    base.update(kwargs)
    return LocalizationScenario(**base)


class TestCalibrationGainRename:
    def test_new_names_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sc = _scenario()
            assert sc.calibration_gain_linear == 2.0
            assert sc.rssi_calibration_gain_linear == 2.0

    @pytest.mark.parametrize(
        "old", ["calibration_gain", "rssi_calibration_gain"]
    )
    def test_old_property_warns_at_the_call_site(self, old):
        sc = _scenario()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = getattr(sc, old)
        assert value == 2.0
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert deprecations[0].filename == __file__
        assert f"{old}_linear" in str(deprecations[0].message)

    @pytest.mark.parametrize(
        "old", ["calibration_gain", "rssi_calibration_gain"]
    )
    def test_old_constructor_keyword_warns_and_maps(self, old):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            kwargs = {"calibration_gain_linear": 2.0, old: 7.0}
            if old == "calibration_gain":
                del kwargs["calibration_gain_linear"]
            sc = _scenario(**kwargs)
        assert getattr(sc, f"{old}_linear") == 7.0
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert deprecations[0].filename == __file__
