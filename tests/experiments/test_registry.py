"""Registry contract tests: lookup, parameter layering, shim parity.

The golden *tables* are covered by test_golden.py; here we pin the
registry's structural contracts — name/alias round-trips, the
golden-file naming convention, defaults/smoke/override layering, and
that the deprecated per-module ``run()`` shims produce the exact result
the registry does.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import fig13_aperture, fig14_distance, registry
from repro.obs.observers import MetricsObserver, TraceObserver
from repro.runtime import RuntimeConfig

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


class TestLookup:
    def test_fourteen_specs_in_registry_order(self):
        assert len(registry.REGISTRY) == 14
        assert registry.names()[0] == "fig4_spectrum"
        assert registry.names()[-3] == "fleet_coverage"
        assert registry.names()[-2] == "soak"
        assert registry.names()[-1] == "ablations"

    def test_names_and_aliases_unique(self):
        assert len(set(registry.names())) == 14
        assert len(set(registry.aliases())) == 14

    def test_name_and_alias_resolve_to_same_spec(self):
        for spec in registry.REGISTRY:
            assert registry.get(spec.name) is spec
            assert registry.get(spec.alias) is spec

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            registry.get("fig99")
        with pytest.raises(ConfigurationError, match="fig4_spectrum"):
            registry.get("fig99")

    def test_every_spec_has_its_golden_file(self):
        for spec in registry.REGISTRY:
            assert (GOLDEN_DIR / spec.golden_filename).exists(), spec.name


class TestParameterLayering:
    def test_defaults_then_smoke_then_overrides(self):
        run = registry.run_experiment(
            "fig13",
            RuntimeConfig(),
            smoke=True,
            apertures_m=(1.0,),
            trials_per_point=2,
        )
        # smoke_overrides set trials_per_point=3; the explicit override
        # wins; untouched defaults (seed) survive.
        assert run.params["trials_per_point"] == 2
        assert run.params["apertures_m"] == (1.0,)
        assert run.params["seed"] == 0

    def test_smoke_overrides_apply_when_not_overridden(self):
        run = registry.run_experiment(
            "fig13", RuntimeConfig(), smoke=True, apertures_m=(1.0,)
        )
        assert run.params["trials_per_point"] == 3
        assert len(run.sweep.manifest.tasks) == 3

    def test_run_returns_outputs_and_sweep(self):
        run = registry.run_experiment(
            "fig14", RuntimeConfig(), distances_m=(5.0,), trials_per_point=1
        )
        assert run.spec.name == "fig14_distance"
        assert run.outputs and hasattr(run.outputs[0], "report")
        assert len(run.sweep.manifest.tasks) == 1


class TestShimParity:
    def test_fig13_run_shim_warns_and_matches_registry(self):
        with pytest.warns(DeprecationWarning):
            legacy = fig13_aperture.run(
                apertures_m=(1.0,), trials_per_point=2, seed=0
            )
        fresh = registry.run_experiment(
            "fig13", RuntimeConfig(), apertures_m=(1.0,), trials_per_point=2
        ).result
        assert legacy.sar_errors.keys() == fresh.sar_errors.keys()
        np.testing.assert_array_equal(
            legacy.sar_errors[1.0], fresh.sar_errors[1.0]
        )

    def test_fig14_run_shim_warns_and_matches_registry(self):
        with pytest.warns(DeprecationWarning):
            legacy = fig14_distance.run(
                distances_m=(5.0,), trials_per_point=1, seed=0
            )
        fresh = registry.run_experiment(
            "fig14", RuntimeConfig(), distances_m=(5.0,), trials_per_point=1
        ).result
        np.testing.assert_array_equal(
            legacy.sar_errors[5.0], fresh.sar_errors[5.0]
        )


class TestObserversThreadThrough:
    def test_observers_reach_the_sweep(self):
        trace, metrics = TraceObserver(), MetricsObserver()
        run = registry.run_experiment(
            "fig13",
            RuntimeConfig(),
            observers=[trace, metrics],
            apertures_m=(1.0,),
            trials_per_point=1,
        )
        assert trace.manifests and trace.manifests[0].sweep == "fig13_aperture"
        counters = metrics.registry.counters
        assert counters["runtime.sweeps"] == 1.0
        assert counters["localization.sar.grid_points"] > 0
        assert run.sweep.manifest.tasks[0].spans is not None

    def test_observed_run_result_identical_to_plain_run(self):
        plain = registry.run_experiment(
            "fig13", RuntimeConfig(), apertures_m=(1.0,), trials_per_point=1
        )
        observed = registry.run_experiment(
            "fig13",
            RuntimeConfig(),
            observers=[TraceObserver(), MetricsObserver()],
            apertures_m=(1.0,),
            trials_per_point=1,
        )
        assert [o.report() for o in plain.outputs] == [
            o.report() for o in observed.outputs
        ]
        assert (
            plain.sweep.manifest.fingerprint()
            == observed.sweep.manifest.fingerprint()
        )
