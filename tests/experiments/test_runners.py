"""Smoke tests of every experiment runner at reduced trial counts.

The full-scale reproduction claims live in benchmarks/; here we check
each runner executes, produces well-formed tables, and satisfies the
coarsest sanity properties even at small n. Everything goes through
the registry — the per-module ``run()`` shims are deprecated, and
their parity with the registry is pinned in test_registry.py.
"""

import numpy as np

from repro.experiments import (
    ablations,
    fig6_heatmap,
    fig9_isolation,
    fig10_phase,
    fig11_range,
    fig12_localization,
    fig13_aperture,
    fig14_distance,
)
from repro.experiments.registry import run_experiment
from repro.relay.self_interference import LeakagePath
from repro.runtime import RuntimeConfig


def run(name, **overrides):
    return run_experiment(name, RuntimeConfig(), **overrides).result


class TestFig9:
    def test_small_run(self):
        result = run("fig9", n_trials=5, seed=0)
        for path in LeakagePath:
            assert len(result.rfly[path]) == 5
            assert np.all(result.rfly[path] > result.analog[path])
        out = fig9_isolation.format_result(result)
        assert "inter_downlink" in out.table()
        assert "paper" in out.report()

    def test_cdf_access(self):
        result = run("fig9", n_trials=4, seed=1)
        values, probs = result.cdf(LeakagePath.INTER_UPLINK)
        assert len(values) == 4


class TestFig10:
    def test_small_run(self):
        result = run("fig10", n_trials=4, seed=0)
        assert len(result.mirrored_errors_deg) == 4
        assert np.median(result.mirrored_errors_deg) < np.median(
            result.no_mirror_errors_deg
        )
        out = fig10_phase.format_result(result)
        assert "mirrored" in out.table()


class TestFig11:
    def test_small_run(self):
        result = run(
            "fig11", distances_m=(2.0, 10.0, 50.0), trials_per_point=40, seed=0
        )
        assert result.rates["no_relay"][0] > result.rates["no_relay"][1]
        assert result.rates["relay_los"][2] > 0.8
        out = fig11_range.format_result(result)
        assert "relay LoS" in out.table()


class TestFig12:
    def test_small_run(self):
        result = run("fig12", n_trials=4, seed=0)
        assert len(result.errors_m) == 4
        assert np.all(result.errors_m >= 0)
        out = fig12_localization.format_result(result)
        assert "median" in out.report()


class TestFig13:
    def test_small_run(self):
        result = run("fig13", apertures_m=(0.5, 2.5), trials_per_point=3, seed=0)
        assert set(result.sar_errors) == {0.5, 2.5}
        out = fig13_aperture.format_result(result)
        assert "aperture" in out.table()


class TestFig14:
    def test_small_run(self):
        result = run(
            "fig14", distances_m=(5.0, 40.0, 55.0), trials_per_point=3, seed=0
        )
        assert set(result.sar_errors) == {5.0, 40.0, 55.0}
        out = fig14_distance.format_result(result)
        assert "projected" in out.table()


class TestFig6:
    def test_run_and_render(self):
        result = run("fig6", seed=0)
        assert result.los_error_m < 0.2
        art = fig6_heatmap.ascii_heatmap(result.los_heatmap, width=32)
        assert len(art.splitlines()) > 4
        out = fig6_heatmap.format_result(result)
        assert "line-of-sight" in out.table()


class TestAblations:
    def test_eq4(self):
        out = ablations.eq4_range_table()
        assert len(out.rows) == 6

    def test_frequency_shift(self):
        out = ablations.frequency_shift_ablation()
        assert any("REJECTED" in row[1] for row in out.rows)

    def test_peak_rule(self):
        out = ablations.peak_rule_ablation(n_trials=2, seed=0)
        assert len(out.rows) == 2

    def test_disentangle(self):
        out = ablations.disentangle_ablation(n_trials=2, seed=0)
        with_eq10 = float(out.rows[0][1])
        without = float(out.rows[1][1])
        assert without > with_eq10

    def test_report_structure(self):
        out = ablations.eq4_range_table()
        report = out.report()
        assert "paper" in report and "measured" in report
