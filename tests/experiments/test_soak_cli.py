"""The soak experiment's CLI surface: knobs, trend append, purity.

Pins the wiring the CI job depends on: ``--hours``/``--snapshot-every``/
``--shards`` reach ``build_tasks`` (and are rejected on experiments
they don't apply to), ``main`` appends exactly one trend entry per
distinct run via the spec's ``post_run`` hook, ``--no-trend`` and
``--trend-file`` are honored, and the side-effect-free
``cli.run_experiment`` path the golden suite uses never touches the
trend file.
"""

from __future__ import annotations

import pytest

from repro.experiments import cli, registry
from repro.runtime import RuntimeConfig
from repro.soak import trend
from repro.soak.driver import SoakConfig


def test_soak_is_registered_with_a_post_run_hook():
    spec = registry.get("soak")
    assert spec.alias == "soak"
    assert spec.post_run is not None
    assert spec.scenario == "warehouse_twin_aisle"
    assert "soak" in registry.aliases()


def test_knob_flags_reach_build_tasks():
    parser = cli.build_parser()
    args = parser.parse_args(
        ["run", "soak", "--hours", "1.0", "--snapshot-every", "1200",
         "--shards", "4"]
    )
    overrides = cli.knob_overrides(parser, registry.get("soak"), args)
    assert overrides == {
        "hours": 1.0,
        "snapshot_every_s": 1200.0,
        "shards": 4,
    }
    config = SoakConfig(hours=1.0, snapshot_every_s=1200.0, shards=4)
    assert config.n_epochs == 3


def test_knobs_are_rejected_on_experiments_without_them(capsys):
    parser = cli.build_parser()
    args = parser.parse_args(["run", "fig4", "--hours", "1.0"])
    with pytest.raises(SystemExit):
        cli.knob_overrides(parser, registry.get("fig4"), args)
    assert "--hours does not apply" in capsys.readouterr().err


def test_scalar_shards_is_rejected_where_shards_is_swept(capsys):
    parser = cli.build_parser()
    args = parser.parse_args(["run", "serve_scale", "--shards", "4"])
    with pytest.raises(SystemExit):
        cli.knob_overrides(parser, registry.get("serve_scale"), args)
    assert "sweeps" in capsys.readouterr().err


@pytest.fixture(scope="module")
def smoke_run():
    """One shared smoke soak (the expensive part of this module)."""
    return registry.run_experiment("soak", RuntimeConfig(), smoke=True)


def test_smoke_soak_has_three_epochs_and_a_summary(smoke_run):
    assert len(smoke_run.result.snapshots) == 3
    summary = smoke_run.result.summary
    assert summary.epochs == 3
    assert summary.virtual_hours == pytest.approx(0.5)
    assert summary.offered > 0
    assert summary.throughput_per_s > 0
    assert summary.p99_latency_ms > 0


def test_registry_run_never_touches_the_trend_file(smoke_run, tmp_path):
    # run_experiment already completed (module fixture); the committed
    # default path must not have been the target of any write from it.
    # The real guarantee: post_run is a separate, CLI-only hook.
    entry = trend.entry_from_summary(smoke_run.result.summary, smoke_run.params)
    path = tmp_path / "SOAK_TREND.json"
    assert not path.exists()
    doc, appended = trend.append_entry(path, entry)
    assert appended and len(doc["entries"]) == 1


def test_main_appends_one_entry_and_reruns_dedupe(tmp_path, capsys):
    path = tmp_path / "SOAK_TREND.json"
    argv = [
        "run",
        "soak",
        "--smoke",
        "--trend-file",
        str(path),
    ]
    assert cli.main(argv) == 0
    assert "appended entry" in capsys.readouterr().out
    assert len(trend.load_trend(path)["entries"]) == 1
    # A rerun of the identical tree appends nothing.
    assert cli.main(argv) == 0
    assert "tail entry unchanged" in capsys.readouterr().out
    assert len(trend.load_trend(path)["entries"]) == 1


def test_no_trend_skips_the_append(tmp_path, capsys):
    path = tmp_path / "SOAK_TREND.json"
    assert (
        cli.main(
            [
                "run",
                "soak",
                "--smoke",
                "--no-trend",
                "--trend-file",
                str(path),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert not path.exists()
