"""Golden-file regression tests for every experiment table.

Each experiment runs at its reduced (smoke) trial counts on the sweep
engine and its rendered ``ExperimentOutput.report()`` must match the
checked-in golden file byte for byte. Because every sweep is seeded and
the engine fixes task seeds before dispatch, these tables are exact
artifacts — any diff is a real behavior change, not noise.

To accept an intentional change::

    PYTHONPATH=src python -m pytest tests/experiments/test_golden.py --update-golden
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.cli import ALL_NAMES, run_experiment
from repro.runtime import RuntimeConfig

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def _render(name: str) -> str:
    outputs = run_experiment(name, RuntimeConfig(), smoke=True)
    return "\n\n".join(output.report() for output in outputs) + "\n"


@pytest.mark.parametrize("name", ALL_NAMES)
def test_golden_table(name, pytestconfig):
    text = _render(name)
    path = GOLDEN_DIR / f"{name}.txt"
    if pytestconfig.getoption("--update-golden"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return
    assert path.exists(), (
        f"golden file {path} missing; regenerate with "
        "pytest tests/experiments/test_golden.py --update-golden"
    )
    expected = path.read_text(encoding="utf-8")
    assert text == expected, (
        f"{name} table drifted from its golden file; if intentional, "
        "rerun with --update-golden and review the diff"
    )


def test_golden_dir_has_all_tables():
    missing = [
        name for name in ALL_NAMES if not (GOLDEN_DIR / f"{name}.txt").exists()
    ]
    assert not missing, f"golden files missing for: {missing}"
