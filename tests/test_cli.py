"""Tests for the ``python -m repro`` experiment CLI."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_prints_all_experiments(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out.split()
    for name in EXPERIMENTS:
        assert name in out
    assert "ablations" in out


def test_list_subcommand_matches_flag(capsys):
    assert main(["list"]) == 0
    subcommand_out = capsys.readouterr().out
    assert main(["--list"]) == 0
    assert capsys.readouterr().out == subcommand_out
    assert "fig12" in subcommand_out


def test_list_subcommand_rejects_extra_arguments(capsys):
    with pytest.raises(SystemExit):
        main(["list", "fig6"])
    assert "no further arguments" in capsys.readouterr().err


def test_single_experiment_runs(capsys):
    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 6" in out
    assert "paper vs measured" in out
    assert "regenerated in" in out


def test_run_subcommand_runs_named_experiment(capsys):
    assert main(["run", "fig6"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 6" in out
    assert "regenerated in" in out


def test_canonical_names_accepted(capsys):
    assert main(["run", "fig6_heatmap"]) == 0
    assert "Fig. 6" in capsys.readouterr().out


def test_unknown_experiment_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["fig99"])
    assert "unknown experiment" in capsys.readouterr().err


def test_run_subcommand_rejects_unknown_name(capsys):
    with pytest.raises(SystemExit):
        main(["run", "fig99"])
    assert "unknown experiment" in capsys.readouterr().err


def test_trace_and_metrics_flags_print_reports(capsys, tmp_path):
    assert (
        main(
            [
                "run",
                "fig13",
                "--smoke",
                "--trace",
                "--metrics",
                "--obs-dir",
                str(tmp_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "span tree:" in out
    assert "sweep.run" in out
    assert "metrics:" in out
    assert "runtime.tasks.dispatched" in out
    trace_path = tmp_path / "fig13_aperture.trace.jsonl"
    metrics_path = tmp_path / "fig13_aperture.metrics.json"
    assert trace_path.exists() and metrics_path.exists()
    data = json.loads(metrics_path.read_text())
    assert data["counters"]["runtime.sweeps"] == 1.0


def test_trace_memory_alias_maps_to_trace_malloc(capsys, recwarn):
    assert main(["run", "fig13", "--smoke", "--trace-memory"]) == 0
    assert "regenerated in" in capsys.readouterr().out
    # The alias routes to the observer, not the deprecated config flag.
    assert not [
        w for w in recwarn if issubclass(w.category, DeprecationWarning)
    ]
