"""Tests for the ``python -m repro`` experiment CLI."""

import pytest

from repro.__main__ import EXPERIMENTS, main


def test_list_prints_all_experiments(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out.split()
    for name in EXPERIMENTS:
        assert name in out
    assert "ablations" in out


def test_single_experiment_runs(capsys):
    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 6" in out
    assert "paper vs measured" in out
    assert "regenerated in" in out


def test_unknown_experiment_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["fig99"])
    assert "unknown experiment" in capsys.readouterr().err
