"""The trend file: canonical round-trips, idempotent appends, loud rot.

The hypothesis property here is the satellite's "trend-file JSON
round-trips losslessly and canonically": for any generated entry set,
writing the document and re-loading it reproduces the same document,
and re-serializing the loaded document reproduces the same *bytes* —
so a committed trend file never churns under rewrite.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TrendError
from repro.obs.reports import canonical_json, write_json_atomic
from repro.soak import trend

metric_values = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def entries(draw):
    key = {
        "scenario": draw(st.sampled_from(["warehouse_twin_aisle", "x"])),
        "hours": draw(st.sampled_from([0.5, 2.0])),
        "snapshot_every_s": 600.0,
        "shards": draw(st.integers(min_value=1, max_value=4)),
        "n_tags": None,
        "load": 8.0,
        "grid_resolution": 0.15,
        "fault_profile": "calm",
        "seed": draw(st.integers(min_value=0, max_value=3)),
    }
    return {
        "schema_version": 1,
        "key": key,
        "counts": {"epochs": draw(st.integers(min_value=1, max_value=20))},
        "metrics": {
            "throughput_per_s": draw(metric_values),
            "p99_latency_ms": draw(metric_values),
            "mean_error_m": draw(metric_values),
        },
    }


@given(entry_list=st.lists(entries(), min_size=0, max_size=4))
@settings(max_examples=40)
def test_trend_round_trips_losslessly_and_canonically(
    entry_list, tmp_path_factory
):
    path = tmp_path_factory.mktemp("trend") / "SOAK_TREND.json"
    doc = trend.new_trend()
    doc["entries"] = entry_list
    write_json_atomic(path, doc)
    loaded = trend.load_trend(path)
    assert loaded == json.loads(canonical_json(doc))
    # Canonical: re-serializing the loaded document reproduces the
    # committed bytes exactly.
    assert canonical_json(loaded) == path.read_text(encoding="utf-8")


def _entry(p99_ms: float = 2.0, seed: int = 0) -> dict:
    return {
        "schema_version": 1,
        "key": {"scenario": "warehouse_twin_aisle", "seed": seed},
        "counts": {"epochs": 3},
        "metrics": {
            "throughput_per_s": 300.0,
            "p99_latency_ms": p99_ms,
            "mean_error_m": 0.04,
        },
    }


def test_missing_file_loads_as_an_empty_trend(tmp_path):
    doc = trend.load_trend(tmp_path / "SOAK_TREND.json")
    assert doc["entries"] == []
    assert doc["kind"] == "soak_trend"


def test_append_is_idempotent_on_identical_tail(tmp_path):
    path = tmp_path / "SOAK_TREND.json"
    _, appended = trend.append_entry(path, _entry())
    assert appended
    _, appended = trend.append_entry(path, _entry())
    assert not appended
    assert len(trend.load_trend(path)["entries"]) == 1


def test_append_grows_on_a_different_entry(tmp_path):
    path = tmp_path / "SOAK_TREND.json"
    trend.append_entry(path, _entry(p99_ms=2.0))
    doc, appended = trend.append_entry(path, _entry(p99_ms=3.0))
    assert appended
    assert len(doc["entries"]) == 2


def test_corrupt_entry_is_reported_with_its_index(tmp_path):
    path = tmp_path / "SOAK_TREND.json"
    doc = trend.new_trend()
    doc["entries"] = [_entry(), {"key": {}, "counts": {}}]
    path.write_text(canonical_json(doc), encoding="utf-8")
    with pytest.raises(TrendError, match=r"entry 1"):
        trend.load_trend(path)


def test_non_numeric_metric_is_reported_with_its_index(tmp_path):
    path = tmp_path / "SOAK_TREND.json"
    broken = _entry()
    broken["metrics"]["p99_latency_ms"] = "fast"
    doc = trend.new_trend()
    doc["entries"] = [broken]
    path.write_text(canonical_json(doc), encoding="utf-8")
    with pytest.raises(TrendError, match=r"entry 0.*p99_latency_ms"):
        trend.load_trend(path)


def test_unparseable_json_is_a_trend_error(tmp_path):
    path = tmp_path / "SOAK_TREND.json"
    path.write_text('{"entries": [', encoding="utf-8")
    with pytest.raises(TrendError, match="not valid JSON"):
        trend.load_trend(path)


def test_append_writes_atomically_and_leaves_no_tmp(tmp_path):
    path = tmp_path / "SOAK_TREND.json"
    trend.append_entry(path, _entry())
    assert not list(tmp_path.glob("*.tmp"))
    assert canonical_json(trend.load_trend(path)) == path.read_text(
        encoding="utf-8"
    )


def test_entry_key_uses_a_scenario_objects_own_name():
    class Named:
        name = "custom_world"

    key = trend.entry_key({"scenario": Named(), "seed": 7})
    assert key["scenario"] == "custom_world"
    assert key["seed"] == 7


def test_matching_baseline_respects_key_and_order():
    doc = trend.new_trend()
    doc["entries"] = [
        _entry(p99_ms=1.0, seed=0),
        _entry(p99_ms=2.0, seed=1),
        _entry(p99_ms=3.0, seed=0),
    ]
    key = doc["entries"][0]["key"]
    latest = trend.matching_baseline(doc, key)
    assert latest is not None and latest["metrics"]["p99_latency_ms"] == 3.0
    earlier = trend.matching_baseline(doc, key, before_index=2)
    assert (
        earlier is not None and earlier["metrics"]["p99_latency_ms"] == 1.0
    )
    assert trend.matching_baseline(doc, {"scenario": "other"}) is None
