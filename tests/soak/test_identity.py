"""Smoke soak bit-identity: serial == process, and trend determinism.

The soak's whole value as a ratchet rests on runs being pure functions
of their config: the same smoke soak must render the same table and
produce the same trend entry whether epochs run in-process or across a
process pool. Marked slow — it runs the smoke soak twice end to end.
"""

from __future__ import annotations

import pytest

from repro.experiments import registry, soak as soak_experiment
from repro.runtime import RuntimeConfig
from repro.soak import trend

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def serial_run():
    return registry.run_experiment(
        "soak", RuntimeConfig(backend="serial"), smoke=True
    )


@pytest.fixture(scope="module")
def process_run():
    return registry.run_experiment(
        "soak", RuntimeConfig(backend="process", max_workers=2), smoke=True
    )


def test_smoke_soak_serial_process_bit_identical(serial_run, process_run):
    assert serial_run.result.snapshots == process_run.result.snapshots
    assert serial_run.result.summary == process_run.result.summary
    assert [output.report() for output in serial_run.outputs] == [
        output.report() for output in process_run.outputs
    ]


def test_trend_entries_identical_across_backends(
    serial_run, process_run, tmp_path
):
    serial_entry = trend.entry_from_summary(
        serial_run.result.summary, serial_run.params
    )
    process_entry = trend.entry_from_summary(
        process_run.result.summary, process_run.params
    )
    assert serial_entry == process_entry
    # And the post_run hook writes exactly one entry however often the
    # identical run repeats.
    path = tmp_path / "SOAK_TREND.json"
    for run in (serial_run, process_run, serial_run):
        soak_experiment.post_run(run, {"trend_file": str(path)})
    assert len(trend.load_trend(path)["entries"]) == 1
