"""The soak driver's configuration, fault profiles, and epoch tasks."""

from __future__ import annotations

import pytest

from repro import faults
from repro.errors import ConfigurationError
from repro.soak.driver import (
    FAULT_PROFILES,
    SoakConfig,
    build_epoch_tasks,
    fault_plan_for,
)


def test_defaults_are_valid():
    config = SoakConfig()
    assert config.n_epochs == 12  # 2 h / 600 s


@pytest.mark.parametrize(
    ("hours", "every", "expected"),
    [
        (0.5, 600.0, 3),
        (1.0, 600.0, 6),
        # Partial last interval still gets an epoch (ceil).
        (1.01, 600.0, 7),
        # A horizon shorter than one interval is one epoch, not zero.
        (0.01, 600.0, 1),
    ],
)
def test_epoch_count_covers_the_horizon(hours, every, expected):
    config = SoakConfig(hours=hours, snapshot_every_s=every)
    assert config.n_epochs == expected


@pytest.mark.parametrize(
    "bad",
    [
        {"hours": 0.0},
        {"hours": -1.0},
        {"snapshot_every_s": 0.0},
        {"shards": 0},
        {"load": 0.0},
        {"fault_profile": "apocalyptic"},
    ],
)
def test_invalid_configs_are_rejected(bad):
    with pytest.raises(ConfigurationError):
        SoakConfig(**bad)


def test_unknown_fault_profile_names_the_choices():
    with pytest.raises(ConfigurationError, match="calm"):
        fault_plan_for("nope")


def test_fault_profiles_round_trip_their_json():
    for name, plan in FAULT_PROFILES.items():
        assert faults.FaultPlan.from_json(plan.to_json()) == plan, name


def test_epoch_tasks_one_per_interval_with_distinct_seeds():
    config = SoakConfig(hours=0.5, snapshot_every_s=600.0)
    tasks = build_epoch_tasks(config)
    assert len(tasks) == config.n_epochs == 3
    assert [task.label for task in tasks] == [
        "soak/e000",
        "soak/e001",
        "soak/e002",
    ]
    seeds = [task.seed for task in tasks]
    assert len(set(seeds)) == len(seeds)


def test_epoch_tasks_are_a_pure_function_of_the_config():
    config = SoakConfig(hours=0.5)
    first = build_epoch_tasks(config)
    second = build_epoch_tasks(config)
    assert [task.seed for task in first] == [task.seed for task in second]
    assert [task.params for task in first] == [
        task.params for task in second
    ]


def test_different_run_seeds_spawn_different_epoch_seeds():
    base = build_epoch_tasks(SoakConfig(hours=0.5, seed=0))
    other = build_epoch_tasks(SoakConfig(hours=0.5, seed=1))
    assert [task.seed for task in base] != [task.seed for task in other]
