"""Property tests for soak snapshots and their reduction.

The hypothesis suite pins the two contracts everything downstream
leans on: :func:`summarize_snapshots` is order-insensitive (any
permutation of the same snapshots folds to a bitwise-identical
summary — what makes the trend file independent of sweep backend and
scheduling), and the snapshot payload round-trips losslessly through
``to_dict``/``from_dict`` (what rides the process-pool boundary).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.soak.snapshot import SoakSnapshot, summarize_snapshots

finite = st.floats(
    min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False
)
counts = st.integers(min_value=0, max_value=10_000)
samples = st.lists(finite, min_size=0, max_size=30)


@st.composite
def snapshots(draw, epoch: int) -> SoakSnapshot:
    offered = draw(counts)
    applied = draw(st.integers(min_value=0, max_value=offered))
    return SoakSnapshot(
        epoch=epoch,
        start_s=epoch * 600.0,
        interval_s=600.0,
        sessions=draw(counts),
        fixes=draw(counts),
        offered=offered,
        applied=applied,
        degraded=draw(counts),
        shed=draw(counts),
        rejected=draw(counts),
        lost=draw(counts),
        handoffs=draw(counts),
        recoveries=draw(counts),
        injected=draw(counts),
        busy_s=draw(finite),
        latency_samples_s=tuple(draw(samples)),
        error_samples_m=tuple(draw(samples)),
    )


@st.composite
def snapshot_runs(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    return [draw(snapshots(epoch)) for epoch in range(n)]


@given(run=snapshot_runs(), data=st.data())
@settings(max_examples=50)
def test_summary_is_order_insensitive(run, data):
    shuffled = data.draw(st.permutations(run))
    assert summarize_snapshots(shuffled) == summarize_snapshots(run)


@given(run=snapshot_runs())
@settings(max_examples=50)
def test_snapshot_round_trips_losslessly(run):
    for snapshot in run:
        assert SoakSnapshot.from_dict(snapshot.to_dict()) == snapshot


@given(snapshot=snapshots(epoch=0))
@settings(max_examples=25)
def test_samples_are_stored_sorted(snapshot):
    assert snapshot.latency_samples_s == tuple(
        sorted(snapshot.latency_samples_s)
    )
    assert snapshot.error_samples_m == tuple(
        sorted(snapshot.error_samples_m)
    )


def test_empty_reduction_is_rejected():
    with pytest.raises(ConfigurationError, match="zero soak snapshots"):
        summarize_snapshots([])


def test_duplicate_epochs_are_rejected():
    snapshot = SoakSnapshot(
        epoch=0,
        start_s=0.0,
        interval_s=600.0,
        sessions=1,
        fixes=1,
        offered=1,
        applied=1,
        degraded=0,
        shed=0,
        rejected=0,
        lost=0,
        handoffs=0,
        recoveries=0,
        injected=0,
        busy_s=1.0,
        latency_samples_s=(0.01,),
        error_samples_m=(0.1,),
    )
    with pytest.raises(ConfigurationError, match="duplicate snapshot"):
        summarize_snapshots([snapshot, snapshot])


def test_missing_payload_field_is_loud():
    payload = SoakSnapshot(
        epoch=0,
        start_s=0.0,
        interval_s=600.0,
        sessions=1,
        fixes=1,
        offered=1,
        applied=1,
        degraded=0,
        shed=0,
        rejected=0,
        lost=0,
        handoffs=0,
        recoveries=0,
        injected=0,
        busy_s=1.0,
        latency_samples_s=(),
        error_samples_m=(),
    ).to_dict()
    del payload["busy_s"]
    with pytest.raises(ConfigurationError, match="busy_s"):
        SoakSnapshot.from_dict(payload)


def test_summary_numbers_are_the_pooled_population():
    first = SoakSnapshot(
        epoch=0,
        start_s=0.0,
        interval_s=600.0,
        sessions=2,
        fixes=2,
        offered=10,
        applied=8,
        degraded=2,
        shed=1,
        rejected=0,
        lost=0,
        handoffs=1,
        recoveries=0,
        injected=3,
        busy_s=2.0,
        latency_samples_s=(0.001, 0.003),
        error_samples_m=(0.1,),
    )
    second = SoakSnapshot(
        epoch=1,
        start_s=600.0,
        interval_s=600.0,
        sessions=2,
        fixes=1,
        offered=10,
        applied=8,
        degraded=0,
        shed=0,
        rejected=0,
        lost=0,
        handoffs=0,
        recoveries=2,
        injected=1,
        busy_s=2.0,
        latency_samples_s=(0.002,),
        error_samples_m=(0.3,),
    )
    summary = summarize_snapshots([first, second])
    assert summary.epochs == 2
    assert summary.offered == 20
    assert summary.applied == 16
    assert summary.throughput_per_s == pytest.approx(16 / 4.0)
    assert summary.virtual_hours == pytest.approx(1200.0 / 3600.0)
    assert summary.mean_error_m == pytest.approx(0.2)
    assert summary.failure_fraction == pytest.approx(0.25)
    # p50 over the pooled {1, 2, 3} ms population, not a mean of
    # per-interval medians.
    assert summary.p50_latency_ms == pytest.approx(2.0)
