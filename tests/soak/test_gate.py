"""Gate edge cases: bootstrap, boundary, improvement, corruption.

Every branch the CI job can hit is pinned here, including the exact
threshold semantics (a regression of *exactly* the tolerance passes;
one epsilon more fails) and the failure message contract (the worst
metric and its percentage are named in the first line).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import GateError
from repro.obs.reports import canonical_json
from repro.soak import gate, trend


def _entry(
    throughput: float = 300.0,
    p99_ms: float = 2.0,
    error_m: float = 0.04,
    seed: int = 0,
) -> dict:
    return {
        "schema_version": 1,
        "key": {"scenario": "warehouse_twin_aisle", "seed": seed},
        "counts": {"epochs": 3},
        "metrics": {
            "throughput_per_s": throughput,
            "p99_latency_ms": p99_ms,
            "mean_error_m": error_m,
        },
    }


def _trend_file(tmp_path, *entry_list):
    tmp_path.mkdir(parents=True, exist_ok=True)
    path = tmp_path / "SOAK_TREND.json"
    doc = trend.new_trend()
    doc["entries"] = list(entry_list)
    path.write_text(canonical_json(doc), encoding="utf-8")
    return path


def test_missing_trend_file_bootstraps(tmp_path):
    report = gate.run_gate(tmp_path / "SOAK_TREND.json")
    assert report.passed and report.bootstrap
    assert "bootstrap" in report.reason


def test_single_entry_bootstraps(tmp_path):
    path = _trend_file(tmp_path, _entry())
    report = gate.run_gate(path)
    assert report.passed and report.bootstrap


def test_unmatched_key_bootstraps(tmp_path):
    path = _trend_file(tmp_path, _entry(seed=0), _entry(seed=1))
    report = gate.run_gate(path)
    assert report.passed and report.bootstrap
    assert '"seed": 1' in report.reason


def test_within_tolerance_passes(tmp_path):
    path = _trend_file(tmp_path, _entry(), _entry(p99_ms=2.1))
    report = gate.run_gate(path)
    assert report.passed and not report.bootstrap


def test_regression_fails_naming_metric_and_percentage(tmp_path):
    path = _trend_file(tmp_path, _entry(), _entry(p99_ms=2.6))
    report = gate.run_gate(path)
    assert not report.passed
    assert "p99_latency_ms" in report.reason
    assert "30.0%" in report.reason
    assert report.failures[0].metric == "p99_latency_ms"


def test_throughput_drop_fails_in_its_direction(tmp_path):
    path = _trend_file(tmp_path, _entry(), _entry(throughput=150.0))
    report = gate.run_gate(path)
    assert not report.passed
    assert "throughput_per_s" in report.reason
    assert "50.0%" in report.reason


def test_improvement_never_fails(tmp_path):
    better = _entry(throughput=900.0, p99_ms=0.5, error_m=0.001)
    path = _trend_file(tmp_path, _entry(), better)
    report = gate.run_gate(path)
    assert report.passed
    assert all(check.regression_fraction <= 0 for check in report.checks)


def test_exact_threshold_boundary_passes(tmp_path):
    # p99 2.0 -> 2.5 ms is exactly a 25% regression (binary-exact
    # arithmetic, so the comparison really is at the boundary): a
    # tolerance of exactly 0.25 passes — strictly-greater fails —
    path = _trend_file(tmp_path, _entry(), _entry(p99_ms=2.5))
    report = gate.run_gate(path, tolerances={"p99_latency_ms": 0.25})
    assert report.passed, report.render()
    # ... and any tolerance strictly below the regression fails.
    report = gate.run_gate(path, tolerances={"p99_latency_ms": 0.2499})
    assert not report.passed


def test_explicit_current_entry_gates_against_the_tail(tmp_path):
    path = _trend_file(tmp_path, _entry())
    degraded = _entry(p99_ms=2.6)
    report = gate.run_gate(path, current=degraded)
    assert not report.passed
    assert "30.0%" in report.reason


def test_custom_tolerance_is_honored(tmp_path):
    path = _trend_file(tmp_path, _entry(), _entry(p99_ms=2.6))
    report = gate.run_gate(
        path, tolerances={"p99_latency_ms": 0.5}
    )
    assert report.passed


def test_negative_tolerance_is_a_gate_error(tmp_path):
    path = _trend_file(tmp_path, _entry(), _entry())
    with pytest.raises(GateError, match="non-negative"):
        gate.run_gate(path, tolerances={"p99_latency_ms": -0.1})


def test_missing_watched_metric_is_a_gate_error(tmp_path):
    incomplete = _entry()
    del incomplete["metrics"]["p99_latency_ms"]
    path = _trend_file(tmp_path, _entry(), incomplete)
    with pytest.raises(GateError, match="p99_latency_ms"):
        gate.run_gate(path)


def test_cli_pass_fail_and_corrupt_exit_codes(tmp_path, capsys):
    path = _trend_file(tmp_path, _entry(), _entry(p99_ms=2.05))
    assert gate.main(["--trend", str(path)]) == 0
    assert "PASS" in capsys.readouterr().out

    baseline_only = _trend_file(tmp_path / "solo", _entry())
    degraded = tmp_path / "degraded.json"
    degraded.write_text(json.dumps(_entry(p99_ms=2.6)), encoding="utf-8")
    assert (
        gate.main(
            ["--trend", str(baseline_only), "--current", str(degraded)]
        )
        == 1
    )
    out = capsys.readouterr().out
    assert "p99_latency_ms" in out and "30.0%" in out

    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text('{"entries": [', encoding="utf-8")
    assert gate.main(["--trend", str(corrupt)]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_cli_corrupt_entry_names_its_index(tmp_path, capsys):
    path = tmp_path / "SOAK_TREND.json"
    doc = trend.new_trend()
    doc["entries"] = [_entry(), {"key": {}}]
    path.write_text(canonical_json(doc), encoding="utf-8")
    assert gate.main(["--trend", str(path)]) == 2
    assert "entry 1" in capsys.readouterr().err


def test_cli_missing_current_file_is_exit_2(tmp_path, capsys):
    path = _trend_file(tmp_path, _entry())
    code = gate.main(
        ["--trend", str(path), "--current", str(tmp_path / "nope.json")]
    )
    assert code == 2
    assert "not found" in capsys.readouterr().err
