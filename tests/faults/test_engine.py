"""FaultEngine semantics: seeding, triggers, counters, zero overhead."""

from __future__ import annotations

import numpy as np

from repro import faults
from repro.faults import FaultEngine, FaultPlan, FaultSpec, Trigger
from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry


class TestActivation:
    def test_no_engine_means_every_helper_noops(self):
        assert faults.active_engine() is None
        assert faults.watching("channel.link") is False
        assert faults.dropped("channel.link") is False
        assert faults.pose_lost("mobility.pose") is False
        assert faults.rebooted("serve.session") is False
        assert faults.stall_s("serve.ingest") == 0.0
        assert faults.gain_collapse_db("relay.forward") == 0.0
        assert faults.cfo_step_hz("hardware.synthesizer") == 0.0
        assert faults.phase_jump_rad("hardware.synthesizer") == 0.0
        bits = (1, 0, 1, 1)
        assert faults.corrupt_bits("gen2.frame", bits) == bits
        pose = np.array([1.0, 2.0])
        assert faults.jitter_position("mobility.pose", pose) is pose

    def test_engaged_restores_previous_engine(self):
        outer = FaultPlan.single("channel.link", "drop")
        inner = FaultPlan.single("serve.ingest", "drop")
        with faults.engaged(outer) as outer_engine:
            assert faults.active_engine() is outer_engine
            with faults.engaged(inner) as inner_engine:
                assert faults.active_engine() is inner_engine
                assert faults.watching("serve.ingest")
                assert not faults.watching("channel.link")
            assert faults.active_engine() is outer_engine
        assert faults.active_engine() is None

    def test_engaged_restores_on_exception(self):
        try:
            with faults.engaged(FaultPlan.single("channel.link", "drop")):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert faults.active_engine() is None

    def test_watching_is_per_site(self):
        with faults.engaged(FaultPlan.single("channel.link", "drop")):
            assert faults.watching("channel.link")
            assert not faults.watching("gen2.frame")


class TestDeterminism:
    def test_same_plan_and_seed_replay_bit_identically(self):
        plan = FaultPlan(
            (
                FaultSpec("channel.link", "drop", rate=0.5),
                FaultSpec("mobility.pose", "jitter", magnitude=0.1),
            )
        )

        def run():
            with faults.engaged(plan, seed=7) as engine:
                drops = [faults.dropped("channel.link") for _ in range(50)]
                poses = [
                    faults.jitter_position(
                        "mobility.pose", np.array([1.0, 2.0]), index=i
                    )
                    for i in range(50)
                ]
                return drops, poses, list(engine.injections)

        drops_a, poses_a, log_a = run()
        drops_b, poses_b, log_b = run()
        assert drops_a == drops_b
        assert log_a == log_b
        for a, b in zip(poses_a, poses_b):
            np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        plan = FaultPlan.single("channel.link", "drop", rate=0.5)

        def drops(seed):
            with faults.engaged(plan, seed=seed):
                return [faults.dropped("channel.link") for _ in range(100)]

        assert drops(0) != drops(1)

    def test_specs_draw_from_independent_streams(self):
        # Removing one spec must not change another spec's draws: each
        # has its own spawned stream, keyed by position in the plan.
        both = FaultPlan(
            (
                FaultSpec("channel.link", "drop", rate=0.5),
                FaultSpec("serve.ingest", "drop", rate=0.5),
            )
        )
        alone = FaultPlan((FaultSpec("channel.link", "drop", rate=0.5),))
        with faults.engaged(both, seed=3):
            with_second = [faults.dropped("channel.link") for _ in range(50)]
        with faults.engaged(alone, seed=3):
            without = [faults.dropped("channel.link") for _ in range(50)]
        assert with_second == without


class TestTriggersAndCounters:
    def test_nth_call_fires_exactly_once(self):
        plan = FaultPlan.single(
            "channel.link", "drop", trigger=Trigger(kind="nth_call", n=4)
        )
        with faults.engaged(plan) as engine:
            outcomes = [faults.dropped("channel.link") for _ in range(10)]
        assert outcomes == [False] * 4 + [True] + [False] * 5
        assert [tuple(r) for r in engine.injections] == [
            ("channel.link", "drop", 4, 0)
        ]

    def test_call_counters_are_per_site_and_action(self):
        plan = FaultPlan(
            (
                FaultSpec("serve.ingest", "drop"),
                FaultSpec("serve.ingest", "stall", magnitude=0.5),
            )
        )
        with faults.engaged(plan) as engine:
            faults.dropped("serve.ingest")
            faults.dropped("serve.ingest")
            faults.stall_s("serve.ingest")
            assert engine.calls_at("serve.ingest", "drop") == 2
            assert engine.calls_at("serve.ingest", "stall") == 1
            assert engine.calls_at("channel.link", "drop") == 0

    def test_call_window_bounds_injections(self):
        plan = FaultPlan.single(
            "channel.link",
            "drop",
            trigger=Trigger(kind="call_window", start=2, stop=5),
        )
        with faults.engaged(plan):
            outcomes = [faults.dropped("channel.link") for _ in range(8)]
        assert outcomes == [False, False, True, True, True, False, False, False]

    def test_pose_index_trigger_uses_carried_index(self):
        plan = FaultPlan.single(
            "mobility.pose",
            "pose_loss",
            trigger=Trigger(kind="pose_index", start=10, stop=12),
        )
        with faults.engaged(plan):
            assert not faults.pose_lost("mobility.pose", index=9)
            assert faults.pose_lost("mobility.pose", index=10)
            assert faults.pose_lost("mobility.pose", index=11)
            assert not faults.pose_lost("mobility.pose", index=12)
            assert not faults.pose_lost("mobility.pose")

    def test_clock_window_trigger_uses_carried_time(self):
        plan = FaultPlan.single(
            "serve.session",
            "reboot",
            trigger=Trigger(kind="clock_window", start=1.0, stop=2.0),
        )
        with faults.engaged(plan):
            assert not faults.rebooted("serve.session", now_s=0.5)
            assert faults.rebooted("serve.session", now_s=1.5)
            assert not faults.rebooted("serve.session", now_s=2.5)

    def test_max_injections_caps_total(self):
        plan = FaultPlan.single("channel.link", "drop", max_injections=3)
        with faults.engaged(plan) as engine:
            outcomes = [faults.dropped("channel.link") for _ in range(10)]
        assert sum(outcomes) == 3
        assert outcomes[:3] == [True, True, True]
        assert len(engine.injections) == 3

    def test_zero_rate_never_fires(self):
        plan = FaultPlan.single("channel.link", "drop", rate=0.0)
        with faults.engaged(plan) as engine:
            assert not any(faults.dropped("channel.link") for _ in range(50))
            assert engine.injections == []

    def test_rate_draws_only_on_trigger_match(self):
        # A non-matching call must not consume a Bernoulli draw, so the
        # injection pattern after a window is independent of how many
        # off-window calls preceded it.
        windowed = FaultPlan.single(
            "channel.link",
            "drop",
            rate=0.5,
            trigger=Trigger(kind="call_window", start=5, stop=25),
        )
        from_start = FaultPlan.single(
            "channel.link",
            "drop",
            rate=0.5,
            trigger=Trigger(kind="call_window", start=0, stop=20),
        )
        with faults.engaged(windowed, seed=11):
            late = [faults.dropped("channel.link") for _ in range(25)][5:]
        with faults.engaged(from_start, seed=11):
            early = [faults.dropped("channel.link") for _ in range(20)]
        assert late == early


class TestActions:
    def test_corrupt_bits_flips_magnitude_positions(self):
        frame = (0,) * 32
        plan = FaultPlan.single("gen2.frame", "corrupt_bits", magnitude=3.0)
        with faults.engaged(plan):
            corrupted = faults.corrupt_bits("gen2.frame", frame)
        assert len(corrupted) == len(frame)
        assert sum(a != b for a, b in zip(frame, corrupted)) == 3

    def test_corrupt_bits_flips_at_least_one(self):
        plan = FaultPlan.single("gen2.frame", "corrupt_bits", magnitude=0.0)
        with faults.engaged(plan):
            corrupted = faults.corrupt_bits("gen2.frame", (0, 0, 0, 0))
        assert sum(corrupted) == 1

    def test_corrupt_bits_empty_frame_unharmed(self):
        plan = FaultPlan.single("gen2.frame", "corrupt_bits", magnitude=2.0)
        with faults.engaged(plan):
            assert faults.corrupt_bits("gen2.frame", ()) == ()

    def test_jitter_position_perturbs_by_magnitude(self):
        pose = np.array([1.0, 2.0])
        plan = FaultPlan.single("mobility.pose", "jitter", magnitude=0.05)
        with faults.engaged(plan):
            jittered = faults.jitter_position("mobility.pose", pose)
        assert jittered.shape == pose.shape
        assert not np.array_equal(jittered, pose)
        assert float(np.linalg.norm(jittered - pose)) < 1.0

    def test_magnitudes_sum_across_firing_specs(self):
        plan = FaultPlan(
            (
                FaultSpec("serve.ingest", "stall", magnitude=0.25),
                FaultSpec("serve.ingest", "stall", magnitude=0.5),
            )
        )
        with faults.engaged(plan):
            assert faults.stall_s("serve.ingest") == 0.75


class TestObservability:
    def test_injections_emit_counters(self):
        registry = MetricsRegistry()
        previous = metrics.activate_registry(registry)
        try:
            plan = FaultPlan.single("channel.link", "drop")
            with faults.engaged(plan):
                faults.dropped("channel.link")
                faults.dropped("channel.link")
        finally:
            metrics.activate_registry(previous)
        assert registry.counters["faults.injected.channel.link.drop"] == 2

    def test_injection_log_is_picklable(self):
        import pickle

        plan = FaultPlan.single("channel.link", "drop")
        with faults.engaged(plan) as engine:
            faults.dropped("channel.link")
        restored = pickle.loads(pickle.dumps(engine.injections))
        assert restored == engine.injections


def test_construct_engine_directly_still_works():
    # engaged() is the blessed path, but the engine itself is a plain
    # object; activate/restore must round-trip.
    engine = FaultEngine(FaultPlan.single("channel.link", "drop"), seed=0)
    previous = faults.activate_engine(engine)
    try:
        assert faults.dropped("channel.link")
    finally:
        faults.activate_engine(previous)
    assert faults.active_engine() is previous
