"""The degradation ladder: every fault is typed or flagged, never silent.

Half of this file is the original failure-injection suite (hand-broken
assumptions — a dead reference tag, corrupted bits, out-of-view drones)
ported verbatim; the other half drives the same failure classes through
:mod:`repro.faults` plans, checking site by site that an injected fault
surfaces as a typed exception, an explicit rejection, or a flagged
degraded result — never as a silently wrong answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.channel import Environment
from repro.errors import (
    CRCError,
    LocalizationError,
    MobilityError,
    RelayError,
    RelayInstabilityError,
    RelayRebootError,
    TagNotPoweredError,
)
from repro.faults import FaultPlan, FaultSpec, Trigger
from repro.gen2.bitops import bits_from_int
from repro.gen2.crc import append_crc16, check_crc16
from repro.hardware import PassiveTag, ReaderFrontend, Synthesizer
from repro.localization import (
    Grid2D,
    Localizer,
    MeasurementModel,
    ThroughRelayMeasurement,
)
from repro.mobility import LineTrajectory, OptiTrack
from repro.reader import Reader
from repro.relay import AnalogRelay, plan_gains
from repro.relay.analog_baseline import AnalogCoupling
from repro.relay.isolation import IsolationReport, measure_all_isolations
from repro.relay.mirrored import MirroredRelay
from repro.sim.events import inventory_at_pose


class TestLostReferenceTag:
    """The drone leaves the reader's radio range: the reference RFID
    stops decoding and disentanglement must fail explicitly (§5.1 — the
    reference doubles as an in-range indicator)."""

    def make_measurements(self, dead_from=20):
        model = MeasurementModel(reader_position=(-8.0, 0.0))
        samples = LineTrajectory((0, 0), (3, 0)).sample_every(0.1)
        measurements = model.measure_along(samples, (1.5, 1.5))
        out = []
        for i, m in enumerate(measurements):
            h_ref = 0.0 + 0.0j if i >= dead_from else m.h_reference
            out.append(
                ThroughRelayMeasurement(
                    position=m.position,
                    h_target=m.h_target,
                    h_reference=h_ref,
                    snr_db=m.snr_db,
                )
            )
        return out

    def test_dead_reference_raises(self):
        measurements = self.make_measurements()
        localizer = Localizer(frequency_hz=915e6)
        with pytest.raises(LocalizationError):
            localizer.locate(
                measurements, search_grid=Grid2D(-1, 4, 0.2, 4, 0.1)
            )

    def test_filtered_measurements_still_work(self):
        """Dropping the dead poses (what a real pipeline does) recovers."""
        measurements = [
            m for m in self.make_measurements() if abs(m.h_reference) > 0
        ]
        localizer = Localizer(frequency_hz=915e6)
        result = localizer.locate(
            measurements, search_grid=Grid2D(-1, 4, 0.2, 4, 0.1)
        )
        assert result.error_to((1.5, 1.5)) < 0.3


class TestRelayFailures:
    def test_unstable_analog_gain_refused_at_construction(self):
        with pytest.raises(RelayInstabilityError):
            AnalogRelay(gain_db=20.0, coupling=AnalogCoupling(intra_db=10.0))

    def test_gain_planning_fails_loudly_on_bad_isolation(self):
        bad = IsolationReport(5.0, 5.0, 5.0, 5.0)
        with pytest.raises(RelayInstabilityError):
            plan_gains(bad)


class TestProtocolFailures:
    def test_corrupted_epc_frame_rejected(self):
        frame = list(append_crc16(bits_from_int(0xDEAD, 16)))
        frame[7] ^= 1
        with pytest.raises(CRCError):
            check_crc16(tuple(frame))

    def test_unpowered_tag_read_raises(self):
        rng = np.random.default_rng(0)
        frontend = ReaderFrontend(
            Synthesizer.random(915e6, rng), tx_power_dbm=10.0, rng=rng
        )
        reader = Reader(frontend)
        tag = PassiveTag(epc=1, position=(50.0, 0.0), rng=rng)
        attenuate = lambda s: s.scaled(1e-5)
        with pytest.raises(TagNotPoweredError):
            reader.read_single_tag(tag, downlink=attenuate, uplink=attenuate)

    def test_swapped_rn16_breaks_handshake(self):
        """An ACK with the wrong handle never yields an EPC."""
        from repro.gen2 import Ack, Gen2Tag, Query

        tag = Gen2Tag(bits_from_int(0xF00D, 96), np.random.default_rng(1))
        rn16 = tag.handle(Query(q=0))
        assert tag.handle(Ack(rn16=rn16.rn16 ^ 0xFFFF)) is None


class TestLocalizationEdgeCases:
    def test_collapsed_aperture_rejected(self):
        """Identical poses form a ring ambiguity, not an array."""
        model = MeasurementModel(reader_position=(-8.0, 0.0))
        measurements = [
            model.measure((1.0, 0.0), (2.0, 1.0)) for _ in range(5)
        ]
        localizer = Localizer(frequency_hz=915e6)
        with pytest.raises(LocalizationError):
            localizer.locate(
                measurements, search_grid=Grid2D(-1, 4, 0.2, 4, 0.1)
            )

    def test_nan_channel_never_silently_wins(self):
        model = MeasurementModel(reader_position=(-8.0, 0.0))
        samples = LineTrajectory((0, 0), (3, 0)).sample_every(0.1)
        measurements = model.measure_along(samples, (1.5, 1.5))
        poisoned = [
            ThroughRelayMeasurement(
                position=m.position,
                h_target=complex(np.nan, np.nan) if i == 3 else m.h_target,
                h_reference=m.h_reference,
                snr_db=m.snr_db,
            )
            for i, m in enumerate(measurements)
        ]
        localizer = Localizer(frequency_hz=915e6)
        # One NaN pose poisons the whole coherent sum; the solver must
        # raise rather than return an arbitrary location.
        with pytest.raises(LocalizationError):
            localizer.locate(
                poisoned, search_grid=Grid2D(-1, 4, 0.2, 4, 0.1)
            )


class TestMobilityFailures:
    def test_out_of_view_drone_rejected_by_optitrack(self):
        tracker = OptiTrack(coverage_min=(0, 0), coverage_max=(5, 5))
        flight = LineTrajectory((4, 4), (8, 4)).sample_every(0.5)
        with pytest.raises(MobilityError):
            tracker.observe_trajectory(flight)


# -- injected faults, site by site ---------------------------------------------


class TestChannelLinkSite:
    def test_injected_blockage_kills_reference_loudly(self):
        """A blacked-out link makes the reference undecodable; the
        batch solver must raise, not return a made-up fix."""
        model = MeasurementModel(reader_position=(-8.0, 0.0))
        samples = LineTrajectory((0, 0), (3, 0)).sample_every(0.1)
        plan = FaultPlan.single("channel.link", "drop")
        with faults.engaged(plan):
            measurements = model.measure_along(samples, (1.5, 1.5))
        assert all(m.h_reference == 0 for m in measurements)
        localizer = Localizer(frequency_hz=915e6)
        with pytest.raises(LocalizationError):
            localizer.locate(
                measurements, search_grid=Grid2D(-1, 4, 0.2, 4, 0.1)
            )

    def test_disabled_engine_channel_unchanged(self):
        env = Environment.free_space()
        baseline = env.channel((0.0, 0.0), (2.0, 1.0), 915e6)
        with faults.engaged(FaultPlan()):
            engaged = env.channel((0.0, 0.0), (2.0, 1.0), 915e6)
        assert engaged == baseline


class TestRelayForwardSite:
    def _relay(self):
        rng = np.random.default_rng(0)
        return MirroredRelay(915e6, rng=rng), rng

    def test_injected_reboot_raises_typed_error(self):
        relay, rng = self._relay()
        plan = FaultPlan.single("relay.forward", "reboot")
        with faults.engaged(plan):
            with pytest.raises(RelayRebootError):
                relay.forward_downlink(_probe_signal(rng))

    def test_injected_drop_raises_relay_error(self):
        relay, rng = self._relay()
        plan = FaultPlan.single("relay.forward", "drop")
        with faults.engaged(plan):
            with pytest.raises(RelayError):
                relay.forward_downlink(_probe_signal(rng))

    def test_injected_gain_collapse_attenuates_not_corrupts(self):
        relay, rng = self._relay()
        signal = _probe_signal(rng)
        clean = relay.forward_downlink(signal)
        relay2, _ = self._relay()
        plan = FaultPlan.single("relay.forward", "gain_collapse", magnitude=20.0)
        with faults.engaged(plan):
            collapsed = relay2.forward_downlink(signal)
        # Feed-through leakage (not collapsed) adds a tiny floor, so the
        # ratio is only approximately the commanded attenuation.
        ratio = np.abs(collapsed.samples).max() / np.abs(clean.samples).max()
        assert ratio == pytest.approx(10 ** (-20.0 / 20.0), rel=5e-2)


class TestRelayIsolationSite:
    def test_injected_isolation_collapse_fails_gain_planning(self):
        rng = np.random.default_rng(0)
        relay = MirroredRelay(915e6, rng=rng)
        plan = FaultPlan.single(
            "relay.isolation", "gain_collapse", magnitude=70.0
        )
        with faults.engaged(plan):
            report = measure_all_isolations(relay)
            with pytest.raises(RelayInstabilityError):
                plan_gains(report)


class TestHardwareSynthesizerSite:
    def test_injected_cfo_step_shifts_oscillator(self):
        synth = Synthesizer(915e6, ppm_error=0.0, phase_offset_rad=0.0)
        clean = synth.tune(915e6)
        plan = FaultPlan.single(
            "hardware.synthesizer", "cfo_step", magnitude=250.0
        )
        with faults.engaged(plan):
            stepped = synth.tune(915e6)
        assert stepped.cfo_hz - clean.cfo_hz == pytest.approx(250.0)

    def test_injected_phase_jump_rotates_oscillator(self):
        synth = Synthesizer(915e6, ppm_error=0.0, phase_offset_rad=0.1)
        plan = FaultPlan.single(
            "hardware.synthesizer", "phase_jump", magnitude=0.5
        )
        with faults.engaged(plan):
            jumped = synth.tune(915e6)
        assert jumped.phase_offset_rad == pytest.approx(0.6)


class TestMobilityPoseSite:
    def test_injected_pose_loss_shortens_observed_trajectory(self):
        tracker = OptiTrack()
        flight = LineTrajectory((0, 0), (3, 0)).sample_every(0.1)
        plan = FaultPlan.single(
            "mobility.pose",
            "pose_loss",
            trigger=Trigger(kind="pose_index", start=0, stop=5),
        )
        with faults.engaged(plan):
            observed = tracker.observe_trajectory(flight)
        assert len(observed) == len(flight) - 5
        np.testing.assert_array_equal(
            observed[0].position, flight[5].position
        )

    def test_injected_jitter_perturbs_but_preserves_count(self):
        tracker = OptiTrack()
        flight = LineTrajectory((0, 0), (3, 0)).sample_every(0.1)
        plan = FaultPlan.single("mobility.pose", "jitter", magnitude=0.02)
        with faults.engaged(plan):
            observed = tracker.observe_trajectory(flight)
        assert len(observed) == len(flight)
        deltas = [
            float(np.linalg.norm(o.position - f.position))
            for o, f in zip(observed, flight)
        ]
        assert all(d > 0 for d in deltas)
        assert max(d for d in deltas) < 0.2


class TestGen2FrameSite:
    def test_injected_corruption_rejected_by_crc_not_delivered(self):
        """Corrupted reads vanish from the inventory (CRC rejection),
        they never surface as a wrong EPC."""
        rng = np.random.default_rng(0)
        tags = [
            PassiveTag(epc=i + 1, position=(float(i), 1.0), rng=rng)
            for i in range(4)
        ]
        baseline = inventory_at_pose(tags, lambda t: True, np.random.default_rng(1))
        assert baseline == {1, 2, 3, 4}
        plan = FaultPlan.single("gen2.frame", "corrupt_bits", magnitude=2.0)
        with faults.engaged(plan):
            read = inventory_at_pose(
                tags, lambda t: True, np.random.default_rng(1)
            )
        assert read == set()  # every read corrupted -> every read rejected
        assert read.issubset(baseline)

    def test_partial_corruption_never_invents_epcs(self):
        rng = np.random.default_rng(0)
        tags = [
            PassiveTag(epc=i + 1, position=(float(i), 1.0), rng=rng)
            for i in range(4)
        ]
        plan = FaultPlan.single("gen2.frame", "corrupt_bits", rate=0.5)
        with faults.engaged(plan):
            read = inventory_at_pose(
                tags, lambda t: True, np.random.default_rng(1)
            )
        assert read.issubset({1, 2, 3, 4})


def _probe_signal(rng):
    from repro.dsp.signal import Signal

    samples = rng.standard_normal(256) + 1j * rng.standard_normal(256)
    return Signal(
        samples=samples * 1e-3, sample_rate=4e6, center_frequency_hz=915e6
    )
