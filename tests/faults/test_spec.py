"""FaultPlan / FaultSpec / Trigger: validation and lossless JSON."""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.faults import (
    SITE_ACTIONS,
    TRIGGER_KINDS,
    FaultPlan,
    FaultSpec,
    Trigger,
)


class TestTriggerValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Trigger(kind="sometimes")

    def test_nth_call_needs_nonnegative_n(self):
        with pytest.raises(ConfigurationError):
            Trigger(kind="nth_call")
        with pytest.raises(ConfigurationError):
            Trigger(kind="nth_call", n=-1)

    @pytest.mark.parametrize(
        "kind", ["call_window", "pose_index", "clock_window"]
    )
    def test_window_kinds_need_nonempty_window(self, kind):
        with pytest.raises(ConfigurationError):
            Trigger(kind=kind, start=1.0)
        with pytest.raises(ConfigurationError):
            Trigger(kind=kind, start=2.0, stop=2.0)

    def test_matching_semantics(self):
        assert Trigger().matches(7)
        nth = Trigger(kind="nth_call", n=3)
        assert nth.matches(3) and not nth.matches(2)
        window = Trigger(kind="call_window", start=2, stop=4)
        assert [window.matches(i) for i in range(5)] == [
            False,
            False,
            True,
            True,
            False,
        ]
        pose = Trigger(kind="pose_index", start=1, stop=2)
        assert pose.matches(0, index=1)
        assert not pose.matches(0, index=2)
        assert not pose.matches(0)  # no pose index carried -> no match
        clock = Trigger(kind="clock_window", start=0.5, stop=1.0)
        assert clock.matches(0, now_s=0.5)
        assert not clock.matches(0, now_s=1.0)
        assert not clock.matches(0)


class TestFaultSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(site="flux.capacitor", action="drop")

    def test_incompatible_action_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(site="channel.link", action="corrupt_bits")

    def test_rate_must_be_probability(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(site="channel.link", action="drop", rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(site="channel.link", action="drop", rate=-0.1)

    def test_max_injections_nonnegative(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(site="channel.link", action="drop", max_injections=-1)

    def test_every_registered_site_action_constructs(self):
        for site, actions in SITE_ACTIONS.items():
            for action in actions:
                spec = FaultSpec(site=site, action=action)
                assert spec.site == site and spec.action == action


class TestFaultPlan:
    def test_single_builds_one_spec_plan(self):
        plan = FaultPlan.single("channel.link", "drop", rate=0.5)
        assert len(plan) == 1 and bool(plan)
        assert plan.sites == ("channel.link",)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert len(FaultPlan()) == 0

    def test_sites_dedupe_in_order(self):
        plan = FaultPlan(
            (
                FaultSpec("serve.ingest", "stall"),
                FaultSpec("channel.link", "drop"),
                FaultSpec("serve.ingest", "drop"),
            )
        )
        assert plan.sites == ("serve.ingest", "channel.link")

    def test_plan_is_picklable_and_hashable(self):
        plan = FaultPlan.single(
            "gen2.frame", "corrupt_bits", magnitude=2.0, max_injections=5
        )
        assert pickle.loads(pickle.dumps(plan)) == plan
        assert hash(plan) == hash(pickle.loads(pickle.dumps(plan)))


# -- hypothesis: JSON round-trip is lossless -----------------------------------

_site_actions = [
    (site, action)
    for site, actions in SITE_ACTIONS.items()
    for action in actions
]


@st.composite
def triggers(draw):
    kind = draw(st.sampled_from(TRIGGER_KINDS))
    if kind == "always":
        return Trigger()
    if kind == "nth_call":
        return Trigger(kind=kind, n=draw(st.integers(0, 1000)))
    start = draw(
        st.floats(
            min_value=0.0,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        )
    )
    span = draw(
        st.floats(
            min_value=1e-6,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        )
    )
    return Trigger(kind=kind, start=start, stop=start + span)


@st.composite
def fault_specs(draw):
    site, action = draw(st.sampled_from(_site_actions))
    return FaultSpec(
        site=site,
        action=action,
        trigger=draw(triggers()),
        rate=draw(st.floats(min_value=0.0, max_value=1.0, allow_nan=False)),
        magnitude=draw(
            st.floats(
                min_value=0.0,
                max_value=1e3,
                allow_nan=False,
                allow_infinity=False,
            )
        ),
        max_injections=draw(st.none() | st.integers(0, 100)),
    )


fault_plans = st.lists(fault_specs(), min_size=0, max_size=6).map(
    lambda specs: FaultPlan(tuple(specs))
)


@given(fault_plans)
def test_plan_json_round_trip_lossless(plan):
    assert FaultPlan.from_json(plan.to_json()) == plan


@given(fault_plans)
def test_plan_json_is_canonical(plan):
    # Round-tripping twice reproduces the exact same JSON text, so the
    # string is safe to use as a cache-keyed task parameter.
    text = plan.to_json()
    assert FaultPlan.from_json(text).to_json() == text
