"""Module-level task functions for the fault-injection property suite.

Worker processes pickle task functions by reference, so the sweep-based
serial-vs-parallel bit-identity tests dispatch these importable
functions. The plan rides through the task parameters as its canonical
JSON string (:meth:`repro.faults.FaultPlan.to_json`).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro import faults

#: A fixed 32-bit frame the corruption hook gets offered each call.
FRAME = (0, 1) * 16

#: A fixed pose the jitter hook gets offered each call.
POSE = (1.0, 2.0)


def drive_all_sites(plan_json: str, n_calls: int, seed: int) -> Dict[str, Any]:
    """Engage the plan and run a fixed script over every site/action.

    The script invokes each hook ``n_calls`` times with deterministic
    ``index``/``now_s`` arguments, so everything in the returned payload
    — boolean outcomes, magnitudes, corrupted frames, jittered poses,
    and the engine's injection log — is a pure function of
    ``(plan_json, n_calls, seed)``. Serial and process-pool sweeps must
    agree on all of it bit for bit.
    """
    plan = faults.FaultPlan.from_json(plan_json)
    out: Dict[str, Any] = {
        "link_drops": [],
        "ingest_drops": [],
        "forward_drops": [],
        "pose_losses": [],
        "forward_reboots": [],
        "session_reboots": [],
        "stalls_s": [],
        "forward_collapses_db": [],
        "isolation_collapses_db": [],
        "cfo_steps_hz": [],
        "phase_jumps_rad": [],
        "frames": [],
        "poses": [],
    }
    with faults.engaged(plan, seed=seed) as engine:
        for call in range(n_calls):
            now_s = 0.01 * call
            out["link_drops"].append(faults.dropped("channel.link"))
            out["ingest_drops"].append(
                faults.dropped("serve.ingest", now_s=now_s)
            )
            out["forward_drops"].append(faults.dropped("relay.forward"))
            out["pose_losses"].append(
                faults.pose_lost("mobility.pose", index=call)
            )
            out["forward_reboots"].append(faults.rebooted("relay.forward"))
            out["session_reboots"].append(
                faults.rebooted("serve.session", now_s=now_s)
            )
            out["stalls_s"].append(
                faults.stall_s("serve.ingest", now_s=now_s)
            )
            out["forward_collapses_db"].append(
                faults.gain_collapse_db("relay.forward")
            )
            out["isolation_collapses_db"].append(
                faults.gain_collapse_db("relay.isolation")
            )
            out["cfo_steps_hz"].append(
                faults.cfo_step_hz("hardware.synthesizer")
            )
            out["phase_jumps_rad"].append(
                faults.phase_jump_rad("hardware.synthesizer")
            )
            out["frames"].append(faults.corrupt_bits("gen2.frame", FRAME))
            out["poses"].append(
                faults.jitter_position(
                    "mobility.pose", np.asarray(POSE), index=call
                )
            )
        out["injections"] = [tuple(r) for r in engine.injections]
    return out
