"""Property: injections are a pure function of (plan, seed, call sequence).

The engine promises that a sweep with faults engaged replays
bit-identically whether tasks run serially or in a process pool — the
whole point of deriving every Bernoulli draw from the runtime's
SeedSequence spawn discipline. These tests state that promise over
random plans with hypothesis, using the same sweep-engine idiom as
:mod:`tests.runtime.test_properties`.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, FaultSpec, Trigger
from repro.obs.observers import MetricsObserver
from repro.runtime import RuntimeConfig, SweepTask, run_sweep

from tests.faults import fault_fns

# A compact plan space biased toward specs that actually fire: every
# registered boolean/magnitude action appears, rates are nonzero, and
# triggers are either unconditional or a small call window.
_SITE_ACTION_MAGNITUDE = [
    ("channel.link", "drop", 0.0),
    ("serve.ingest", "drop", 0.0),
    ("serve.ingest", "stall", 0.02),
    ("serve.session", "reboot", 0.0),
    ("relay.forward", "drop", 0.0),
    ("relay.forward", "reboot", 0.0),
    ("relay.forward", "gain_collapse", 20.0),
    ("relay.isolation", "gain_collapse", 30.0),
    ("hardware.synthesizer", "cfo_step", 250.0),
    ("hardware.synthesizer", "phase_jump", 0.5),
    ("gen2.frame", "corrupt_bits", 2.0),
    ("mobility.pose", "pose_loss", 0.0),
    ("mobility.pose", "jitter", 0.05),
]

_triggers = st.one_of(
    st.just(Trigger()),
    st.builds(
        lambda start, span: Trigger(
            kind="call_window", start=start, stop=start + span
        ),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=1, max_value=30),
    ),
)

_specs = st.builds(
    lambda sam, rate, trigger, cap: FaultSpec(
        site=sam[0],
        action=sam[1],
        rate=rate,
        magnitude=sam[2],
        trigger=trigger,
        max_injections=cap,
    ),
    st.sampled_from(_SITE_ACTION_MAGNITUDE),
    st.sampled_from([0.25, 0.5, 1.0]),
    _triggers,
    st.none() | st.integers(min_value=0, max_value=10),
)

plans = st.lists(_specs, min_size=1, max_size=4).map(
    lambda specs: FaultPlan(tuple(specs))
)

plan_sets = st.lists(
    st.tuples(plans, st.integers(min_value=0, max_value=2**63 - 1)),
    min_size=2,
    max_size=4,
)


def _tasks(plan_set, n_calls=40):
    return [
        SweepTask.make(
            fault_fns.drive_all_sites,
            params={"plan_json": plan.to_json(), "n_calls": n_calls},
            seed=seed,
        )
        for plan, seed in plan_set
    ]


def _payload_bytes(payload):
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


@settings(max_examples=20)
@given(plans, st.integers(min_value=0, max_value=2**32 - 1))
def test_drive_is_a_pure_function_of_plan_and_seed(plan, seed):
    a = fault_fns.drive_all_sites(plan.to_json(), 40, seed)
    b = fault_fns.drive_all_sites(plan.to_json(), 40, seed)
    assert _payload_bytes(a) == _payload_bytes(b)


@settings(max_examples=5)
@given(plan_sets)
def test_serial_and_parallel_injections_bit_identical(plan_set):
    tasks = _tasks(plan_set)
    serial = run_sweep(tasks, RuntimeConfig(backend="serial"), name="faults")
    parallel = run_sweep(
        tasks, RuntimeConfig(backend="process", max_workers=2), name="faults"
    )
    assert serial.manifest.fingerprint() == parallel.manifest.fingerprint()
    for a, b in zip(serial.results, parallel.results):
        assert _payload_bytes(a) == _payload_bytes(b)


@settings(max_examples=5)
@given(plan_sets)
def test_injection_counters_merge_identically_across_backends(plan_set):
    # The faults.injected.* counters emitted inside worker processes must
    # merge to the same totals as a serial run — observability of the
    # injections is as deterministic as the injections themselves.
    tasks = _tasks(plan_set)

    def _counters(config):
        observer = MetricsObserver()
        run_sweep(tasks, config, name="faults_obs", observers=[observer])
        return {
            name: value
            for name, value in observer.registry.counters.items()
            if name.startswith("faults.injected.")
        }

    serial = _counters(RuntimeConfig(backend="serial"))
    parallel = _counters(RuntimeConfig(backend="process", max_workers=2))
    assert serial == parallel


@settings(max_examples=10)
@given(plans, st.integers(min_value=0, max_value=2**32 - 1))
def test_injection_log_matches_reported_outcomes(plan, seed):
    # Every True/nonzero outcome corresponds to an entry in the engine's
    # injection log, and vice versa: nothing fires unrecorded.
    out = fault_fns.drive_all_sites(plan.to_json(), 40, seed)
    fired = sum(
        (
            sum(out["link_drops"]),
            sum(out["ingest_drops"]),
            sum(out["forward_drops"]),
            sum(out["pose_losses"]),
            sum(out["forward_reboots"]),
            sum(out["session_reboots"]),
            sum(1 for s in out["stalls_s"] if s > 0),
            sum(1 for db in out["forward_collapses_db"] if db > 0),
            sum(1 for db in out["isolation_collapses_db"] if db > 0),
            sum(1 for hz in out["cfo_steps_hz"] if hz > 0),
            sum(1 for rad in out["phase_jumps_rad"] if rad > 0),
            sum(1 for f in out["frames"] if tuple(f) != fault_fns.FRAME),
        )
    )
    # Magnitude actions can stack (several specs firing on one call emit
    # several log entries but one summed outcome), so the log is an
    # upper bound that collapses to equality for single-spec plans.
    assert len(out["injections"]) >= fired
    if len(plan) == 1 and plan.specs[0].action != "jitter":
        assert len(out["injections"]) == fired
