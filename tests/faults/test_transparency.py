"""Zero overhead when disabled: an empty plan changes no experiment.

The golden tables were generated with no fault engine at all. Engaging
an *empty* plan arms every hook's guard path, so byte-identical tables
prove the disabled path is exactly a no-op — no stray RNG draw, no
``-0.0 + 0.0`` arithmetic drift, nothing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import faults
from repro.experiments.cli import ALL_NAMES, run_experiment
from repro.faults import SITE_ACTIONS, FaultPlan
from repro.runtime import RuntimeConfig

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "experiments" / "golden"


def test_empty_plan_watches_no_site():
    with faults.engaged(FaultPlan()):
        for site in SITE_ACTIONS:
            assert not faults.watching(site)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_empty_plan_reproduces_golden_table(name):
    with faults.engaged(FaultPlan(), seed=0):
        outputs = run_experiment(name, RuntimeConfig(), smoke=True)
        text = "\n\n".join(output.report() for output in outputs) + "\n"
    expected = (GOLDEN_DIR / f"{name}.txt").read_text(encoding="utf-8")
    assert text == expected
