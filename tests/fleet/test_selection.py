"""Relay-selection policies: determinism, picklability, and the
single-candidate no-draw invariant the N=1 bit-identity rests on."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.fleet.selection import (
    BestLinkBudgetPolicy,
    EpsilonGreedyPolicy,
    NearestPolicy,
    RelayCandidate,
    build_policy,
)
from repro.scenarios.spec import FleetSpec, RelaySpec


def candidate(index, distance, budget):
    return RelayCandidate(
        index=index,
        name=f"relay-{index:02d}",
        distance_m=distance,
        link_budget_db=budget,
    )


NEAR = candidate(0, 1.0, -60.0)
FAR = candidate(1, 3.0, -50.0)


def two_relay_fleet(selection: str) -> FleetSpec:
    return FleetSpec(
        relays=(RelaySpec(name="a"), RelaySpec(name="b")),
        selection=selection,
    )


class TestStatelessPolicies:
    def test_nearest_picks_shortest_distance(self):
        assert NearestPolicy().select("t", [NEAR, FAR]) == 0

    def test_best_link_budget_picks_strongest(self):
        assert BestLinkBudgetPolicy().select("t", [NEAR, FAR]) == 1

    def test_ties_break_to_lowest_index(self):
        tied = [candidate(2, 1.0, -55.0), candidate(0, 1.0, -55.0)]
        assert NearestPolicy().select("t", tied) == 0
        assert BestLinkBudgetPolicy().select("t", tied) == 0

    @pytest.mark.parametrize(
        "policy", [NearestPolicy(), BestLinkBudgetPolicy()]
    )
    def test_empty_candidates_rejected(self, policy):
        with pytest.raises(ConfigurationError):
            policy.select("t", [])


class TestEpsilonGreedy:
    def test_same_seed_same_exploration_sequence(self):
        first = EpsilonGreedyPolicy(1.0, 0.5, seed=3)
        second = EpsilonGreedyPolicy(1.0, 0.5, seed=3)
        picks = [first.select("t", [NEAR, FAR]) for _ in range(20)]
        assert [second.select("t", [NEAR, FAR]) for _ in range(20)] == picks
        # Fully exploratory: both relays actually get explored.
        assert set(picks) == {0, 1}

    def test_single_candidate_consumes_no_randomness(self):
        # Interleaving lone-candidate selects must not perturb the
        # exploration stream — this is the N=1 bit-identity invariant.
        clean = EpsilonGreedyPolicy(1.0, 0.5, seed=5)
        interleaved = EpsilonGreedyPolicy(1.0, 0.5, seed=5)
        for _ in range(7):
            assert interleaved.select("t", [FAR]) == 1
        clean_picks = [clean.select("t", [NEAR, FAR]) for _ in range(20)]
        mixed_picks = []
        for _ in range(20):
            mixed_picks.append(interleaved.select("t", [NEAR, FAR]))
            interleaved.select("t", [NEAR])  # more lone candidates
        assert mixed_picks == clean_picks

    def test_exploit_before_feedback_matches_link_budget(self):
        policy = EpsilonGreedyPolicy(0.0, 0.5, seed=0)
        assert policy.select("t", [NEAR, FAR]) == (
            BestLinkBudgetPolicy().select("t", [NEAR, FAR])
        )

    def test_rewards_steer_the_exploit_choice(self):
        policy = EpsilonGreedyPolicy(0.0, 1.0, seed=0)
        # Relay 0 has the weaker link budget, but it actually reads.
        policy.observe("t", 0, 1.0)
        policy.observe("t", 1, 0.0)
        assert policy.select("t", [NEAR, FAR]) == 0
        # Learning is per tag: another tag still exploits link budget.
        assert policy.select("other", [NEAR, FAR]) == 1

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ConfigurationError):
            EpsilonGreedyPolicy(1.5, 0.5, seed=0)
        with pytest.raises(ConfigurationError):
            EpsilonGreedyPolicy(0.1, 0.0, seed=0)


class TestBuildPolicy:
    @pytest.mark.parametrize(
        "selection,expected",
        [
            ("nearest", NearestPolicy),
            ("best_link_budget", BestLinkBudgetPolicy),
            ("epsilon_greedy", EpsilonGreedyPolicy),
        ],
    )
    def test_dispatch(self, selection, expected):
        policy = build_policy(two_relay_fleet(selection), seed=0)
        assert isinstance(policy, expected)

    @pytest.mark.parametrize(
        "selection", ["nearest", "best_link_budget", "epsilon_greedy"]
    )
    def test_policies_are_picklable(self, selection):
        # Policies ride inside sweep-task closures to process-pool
        # workers; a clone must behave identically.
        policy = build_policy(two_relay_fleet(selection), seed=9)
        clone = pickle.loads(pickle.dumps(policy))
        picks = [policy.select("t", [NEAR, FAR]) for _ in range(8)]
        assert [clone.select("t", [NEAR, FAR]) for _ in range(8)] == picks
