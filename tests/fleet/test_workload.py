"""Fleet traffic generation: the N=1 bit-identity pin and the merged
multi-relay stream's ordering/tagging contracts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet.plan import scale_fleet
from repro.fleet.workload import generate_fleet_workload
from repro.scenarios import registry
from repro.scenarios.compiler import generate_workload

BASE = "conveyor_flow_through"


def assert_same_physics(got, want):
    """Bitwise measurement equality, ignoring the relay name tag."""
    np.testing.assert_array_equal(got.position, want.position)
    assert got.h_target == want.h_target
    assert got.h_reference == want.h_reference
    assert got.snr_db == want.snr_db
    assert got.time == want.time


def base_workload(**kwargs):
    return generate_workload(BASE, **kwargs)


def fleet_workload(n, **kwargs):
    return generate_workload(
        scale_fleet(registry.get(BASE), n), **kwargs
    )


class TestSingleRelayBitIdentity:
    def test_one_relay_fleet_is_bit_identical_modulo_relay_name(self):
        reference = base_workload(n_tags=3, seed=0, load=8.0)
        fleet = fleet_workload(1, n_tags=3, seed=0, load=8.0)
        assert len(fleet.events) == len(reference.events)
        for got, want in zip(fleet.events, reference.events):
            assert got.time_s == want.time_s
            assert got.session_id == want.session_id
            assert got.measurement.relay == "relay-00"
            # Everything physical is bitwise the pre-fleet draw.
            assert_same_physics(got.measurement, want.measurement)
        assert fleet.duration_s == reference.duration_s
        assert fleet.grids.keys() == reference.grids.keys()
        for session_id, grid in reference.grids.items():
            assert fleet.grids[session_id].resolution == grid.resolution
        for session_id, position in reference.tag_positions.items():
            np.testing.assert_array_equal(
                fleet.tag_positions[session_id], position
            )

    def test_compiler_delegates_fleet_scenarios(self):
        # generate_workload on a fleet scenario must route through the
        # fleet generator (events carry relay names), not silently
        # ignore the fleet block.
        workload = fleet_workload(2, n_tags=3, seed=0, load=8.0)
        relays = {event.measurement.relay for event in workload.events}
        assert relays == {"relay-00", "relay-01"}


class TestMultiRelayStream:
    def _workload(self, n=2, seed=0):
        return fleet_workload(n, n_tags=3, seed=seed, load=8.0)

    def test_events_sorted_by_time_then_session(self):
        workload = self._workload()
        keys = [(e.time_s, e.session_id) for e in workload.events]
        assert keys == sorted(keys)

    def test_deterministic_under_seed(self):
        first = self._workload(seed=4)
        second = self._workload(seed=4)
        assert len(first.events) == len(second.events)
        for a, b in zip(first.events, second.events):
            assert a.time_s == b.time_s
            assert a.session_id == b.session_id
            assert a.measurement.relay == b.measurement.relay
            assert_same_physics(a.measurement, b.measurement)

    def test_fleet_scans_faster(self):
        # N segments flown simultaneously: the whole aisle is covered
        # in roughly 1/N the (virtual) wall time.
        single = self._workload(n=1)
        quad = self._workload(n=4)
        assert quad.duration_s < single.duration_s * 0.75

    def test_boundary_tags_hand_off(self):
        # At least one session must be served by both relays — the
        # overlap region guarantees it for tags near the midline.
        workload = self._workload(n=2)
        by_session = {}
        for event in workload.events:
            by_session.setdefault(event.session_id, set()).add(
                event.measurement.relay
            )
        assert any(len(relays) > 1 for relays in by_session.values())

    def test_plain_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="declares no fleet"):
            generate_fleet_workload(BASE, n_tags=2, seed=0)
