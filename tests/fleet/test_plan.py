"""Fleet lowering: band validation, trajectory inheritance, scaling.

``validate_fleet`` must enforce the daisy-chain/FCC band constraints
per relay; ``realize_fleet`` must keep relay ``i``'s flight a function
of ``(seed, i)`` alone; ``scale_fleet`` must synthesize the coverage
sweep's segment geometry exactly (half-overlap, reuse-2, and — at
``N=1`` — the literal pre-fleet scenario shape).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet.plan import FleetPlan, realize_fleet, scale_fleet, validate_fleet
from repro.scenarios import registry
from repro.scenarios.compiler import realize_world
from repro.scenarios.spec import Scenario


def base_scenario() -> Scenario:
    return registry.get("conveyor_flow_through")


def fleet_scenario(n: int) -> Scenario:
    return scale_fleet(base_scenario(), n)


class TestValidateFleet:
    def test_scenario_without_fleet_rejected(self):
        with pytest.raises(ConfigurationError, match="declares no fleet"):
            validate_fleet(base_scenario())

    def test_carrier_outside_scenario_band_rejected(self):
        spec = Scenario.from_dict(
            {
                **base_scenario().to_dict(),
                "fleet": {
                    # 30 MHz shift: inside nothing the scenario declared.
                    "relays": [{"name": "hot", "shift_hz": 30e6}],
                },
            }
        )
        with pytest.raises(ConfigurationError, match="scenario band"):
            validate_fleet(spec)

    def test_default_fleet_validates(self):
        fleet = validate_fleet(fleet_scenario(1))
        assert fleet.relay_names() == ("relay-00",)

    def test_reuse2_fleet_validates(self):
        fleet = validate_fleet(fleet_scenario(4))
        assert len(fleet.relays) == 4


class TestRealizeFleet:
    def _plan(self, n: int, seed: int = 0) -> FleetPlan:
        spec = fleet_scenario(n)
        rng = np.random.default_rng(seed)
        world = realize_world(spec, rng)
        return realize_fleet(spec, world, seed)

    def test_single_relay_inherits_world_trajectory(self):
        spec = fleet_scenario(1)
        rng = np.random.default_rng(0)
        world = realize_world(spec, rng)
        plan = realize_fleet(spec, world, 0)
        # The identical object, not a re-realization: that identity is
        # what makes the N=1 pose stream bit-equal to the pre-fleet path.
        assert plan.relays[0].trajectory is world.trajectory

    def test_segments_cover_the_aisle_with_overlap(self):
        spec = base_scenario()
        plan = self._plan(4)
        base = spec.trajectory
        starts = [r.trajectory.waypoints[0] for r in plan.relays]
        ends = [r.trajectory.waypoints[-1] for r in plan.relays]
        np.testing.assert_allclose(starts[0], (base.x0_m, base.y0_m))
        np.testing.assert_allclose(ends[-1], (base.x1_m, base.y1_m))
        # Each interior boundary is swept by both neighbors: segment i
        # ends strictly after segment i+1 begins.
        for left_end, right_start in zip(ends[1:], starts[1:]):
            assert left_end[0] > right_start[0]

    def test_shifts_alternate_reuse2(self):
        plan = self._plan(4)
        shifts = [relay.shift_hz for relay in plan.relays]
        assert shifts[0] == shifts[2]
        assert shifts[1] == shifts[3]
        assert shifts[0] != shifts[1]
        groups = plan.co_channel_groups()
        assert groups == [[0, 2], [1, 3]]

    def _random_fleet(self, n_relays: int) -> Scenario:
        # Relay 1 flies a *random* segment; the rest inherit the world
        # trajectory. Its realized flight must be a function of
        # (seed, index) only — never of how many siblings fly.
        wander = {
            "kind": "random_segment",
            "x_min_m": 0.5,
            "x_max_m": 2.0,
            "y_min_m": 0.5,
            "y_max_m": 2.0,
            "length_min_m": 1.0,
            "length_max_m": 2.0,
        }
        relays = [{"name": f"r{i}"} for i in range(n_relays)]
        relays[1] = {"name": "r1", "trajectory": wander}
        return Scenario.from_dict(
            {**base_scenario().to_dict(), "fleet": {"relays": relays}}
        )

    def test_relay_flight_depends_only_on_seed_and_index(self):
        flights = []
        for n_relays in (2, 4):
            spec = self._random_fleet(n_relays)
            world = realize_world(spec, np.random.default_rng(0))
            plan = realize_fleet(spec, world, seed=7)
            flights.append(plan.relays[1].trajectory)
        np.testing.assert_array_equal(
            flights[0].waypoints[0], flights[1].waypoints[0]
        )
        np.testing.assert_array_equal(
            flights[0].waypoints[-1], flights[1].waypoints[-1]
        )


class TestScaleFleet:
    def test_fleet_size_must_be_positive(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            scale_fleet(base_scenario(), 0)

    def test_non_line_base_rejected(self):
        spec = registry.get("paper_warehouse_two_floor")
        if spec.trajectory.kind == "line":
            pytest.skip("warehouse base became a line")
        with pytest.raises(ConfigurationError, match="line trajectory"):
            scale_fleet(spec, 2)

    def test_n1_declares_no_trajectory(self):
        spec = fleet_scenario(1)
        assert spec.fleet is not None
        assert len(spec.fleet.relays) == 1
        assert spec.fleet.relays[0].trajectory is None
        assert spec.fleet.relays[0].shift_hz is None

    def test_scaled_scenario_round_trips_json(self):
        spec = fleet_scenario(8)
        assert Scenario.from_json(spec.to_json()) == spec
