"""Observability acceptance bench (ISSUE 3 criteria).

Three claims about the ``repro.obs`` layer, measured on real figure
campaigns:

1. **Overhead** — regenerating Fig. 12 with tracing + metrics attached
   costs < 5% wall time over the unobserved run (best-of-N both arms).
2. **Coverage** — in a serial traced run the per-task root spans
   account for >= 90% of the sweep's measured wall time.
3. **Transparency** — every golden table is byte-identical with the
   full observer stack attached.

The measured numbers land in ``benchmarks/reports/BENCH_obs.json``.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.experiments import registry
from repro.obs.observers import (
    MetricsObserver,
    TraceMallocObserver,
    TraceObserver,
    task_span_coverage,
)
from repro.runtime import RuntimeConfig

GOLDEN_DIR = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "experiments"
    / "golden"
)

#: Acceptance ceiling on the traced/untraced wall-time ratio.
MAX_OVERHEAD_RATIO = 1.05

#: Acceptance floor on task-span wall-time coverage (serial run).
MIN_SPAN_COVERAGE = 0.90

BEST_OF = 3
FIG12_TRIALS = 10


def _time_fig12(observer_factory):
    """Best-of-N wall seconds for one Fig. 12 regeneration arm."""
    best_s = float("inf")
    for _ in range(BEST_OF):
        start_s = time.perf_counter()
        registry.run_experiment(
            "fig12",
            RuntimeConfig(),
            n_trials=FIG12_TRIALS,
            observers=observer_factory(),
        )
        best_s = min(best_s, time.perf_counter() - start_s)
    return best_s


@pytest.fixture(scope="module")
def obs_record(tmp_path_factory):
    plain_s = _time_fig12(lambda: [])
    observed_s = _time_fig12(
        lambda: [TraceObserver(), MetricsObserver()]
    )
    traced = registry.run_experiment(
        "fig12",
        RuntimeConfig(backend="serial"),
        n_trials=FIG12_TRIALS,
        observers=[TraceObserver()],
    )
    return {
        "fig12_trials": FIG12_TRIALS,
        "best_of": BEST_OF,
        "plain_wall_s": plain_s,
        "observed_wall_s": observed_s,
        "overhead_ratio": observed_s / plain_s,
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        "task_span_coverage_fraction": task_span_coverage(
            traced.sweep.manifest
        ),
        "min_span_coverage": MIN_SPAN_COVERAGE,
    }


def test_tracing_overhead_below_five_percent(obs_record, save_bench_json):
    save_bench_json(
        "obs",
        {
            "plain_wall_s": obs_record["plain_wall_s"],
            "observed_wall_s": obs_record["observed_wall_s"],
            "overhead_ratio": obs_record["overhead_ratio"],
            "task_span_coverage_fraction": obs_record[
                "task_span_coverage_fraction"
            ],
        },
        context={
            "fig12_trials": obs_record["fig12_trials"],
            "best_of": obs_record["best_of"],
            "max_overhead_ratio": obs_record["max_overhead_ratio"],
            "min_span_coverage": obs_record["min_span_coverage"],
        },
    )
    assert obs_record["overhead_ratio"] < MAX_OVERHEAD_RATIO, (
        f"tracing overhead {100 * (obs_record['overhead_ratio'] - 1):.1f}% "
        f"exceeds the {100 * (MAX_OVERHEAD_RATIO - 1):.0f}% budget"
    )


def test_task_spans_cover_ninety_percent_of_wall_time(obs_record):
    coverage = obs_record["task_span_coverage_fraction"]
    assert coverage >= MIN_SPAN_COVERAGE, (
        f"task spans cover only {100 * coverage:.1f}% of sweep wall time"
    )


@pytest.mark.parametrize("spec", registry.REGISTRY, ids=lambda s: s.alias)
def test_golden_tables_identical_with_observers(spec):
    run = registry.run_experiment(
        spec,
        RuntimeConfig(),
        smoke=True,
        observers=[TraceObserver(), MetricsObserver(), TraceMallocObserver()],
    )
    text = "\n\n".join(output.report() for output in run.outputs) + "\n"
    expected = (GOLDEN_DIR / spec.golden_filename).read_text(encoding="utf-8")
    assert text == expected, (
        f"{spec.name} table drifted when observers were attached"
    )
