"""Ablation benches for the design choices DESIGN.md calls out."""

import pytest

from repro.constants import UHF_CENTER_FREQUENCY
from repro.experiments import ablations
from repro.relay.self_interference import max_stable_range_m


def test_eq4_table(benchmark, save_report):
    out = benchmark.pedantic(ablations.eq4_range_table, rounds=1, iterations=1)
    save_report("ablation_eq4.txt", out)
    # Paper numbers: 30 dB ~ 0.75 m, 80 dB ~ 238 m (lambda-dependent).
    assert 0.6 < max_stable_range_m(30.0, UHF_CENTER_FREQUENCY) < 1.0
    assert 200.0 < max_stable_range_m(80.0, UHF_CENTER_FREQUENCY) < 300.0


def test_guard_band_ablation(benchmark, save_report, runtime):
    out = benchmark.pedantic(
        lambda: ablations.guard_band_ablation(seed=0, runtime=runtime),
        rounds=1,
        iterations=1,
    )
    save_report("ablation_guard_band.txt", out)
    isolations = [float(row[1]) for row in out.rows]
    # Isolation collapses as the LPF widens toward the BLF.
    assert isolations[0] - isolations[-1] > 30.0


def test_frequency_shift_ablation(benchmark, save_report):
    out = benchmark.pedantic(
        ablations.frequency_shift_ablation, rounds=1, iterations=1
    )
    save_report("ablation_frequency_shift.txt", out)
    outcomes = {row[0]: row[1] for row in out.rows}
    assert "REJECTED" in outcomes["400"]
    assert "stable" in outcomes["1e+03"]


def test_peak_rule_ablation(benchmark, save_report, runtime):
    out = benchmark.pedantic(
        lambda: ablations.peak_rule_ablation(n_trials=6, seed=0, runtime=runtime),
        rounds=1,
        iterations=1,
    )
    save_report("ablation_peak_rule.txt", out)
    nearest = float(out.rows[0][1])
    argmax = float(out.rows[1][1])
    assert nearest <= argmax + 1e-9


def test_disentangle_ablation(benchmark, save_report, runtime):
    out = benchmark.pedantic(
        lambda: ablations.disentangle_ablation(n_trials=6, seed=0, runtime=runtime),
        rounds=1,
        iterations=1,
    )
    save_report("ablation_disentangle.txt", out)
    with_eq10 = float(out.rows[0][1])
    without = float(out.rows[1][1])
    assert without > 3.0 * with_eq10


def test_grid_resolution_ablation(benchmark, save_report, runtime):
    out = benchmark.pedantic(
        lambda: ablations.grid_resolution_ablation(
            n_trials=4, seed=0, runtime=runtime
        ),
        rounds=1,
        iterations=1,
    )
    save_report("ablation_grid_resolution.txt", out)
    coarse = float(out.rows[0][1])
    fine = float(out.rows[-1][1])
    assert fine <= coarse + 0.02  # finer grids never hurt (noise aside)


def test_matched_filter_frequency_ablation(benchmark, save_report, runtime):
    out = benchmark.pedantic(
        lambda: ablations.matched_filter_frequency_ablation(
            n_trials=6, seed=0, runtime=runtime
        ),
        rounds=1,
        iterations=1,
    )
    save_report("ablation_matched_filter_frequency.txt", out)
    f_err = float(out.rows[0][1])
    f2_err = float(out.rows[1][1])
    assert abs(f_err - f2_err) < 0.05
