"""Regenerates paper Fig. 9: isolation CDFs of the four leakage paths."""

import numpy as np
import pytest

from repro.experiments import fig9_isolation
from repro.relay.self_interference import LeakagePath


@pytest.fixture(scope="module")
def result(runtime):
    return fig9_isolation.run(n_trials=40, seed=0, runtime=runtime)


def test_fig9_regeneration(benchmark, result, save_report, runtime):
    out = benchmark.pedantic(
        lambda: fig9_isolation.run(n_trials=10, seed=1, runtime=runtime),
        rounds=1,
        iterations=1,
    )
    assert len(out.rfly[LeakagePath.INTER_DOWNLINK]) == 10
    save_report("fig9_isolation.txt", fig9_isolation.format_result(result))
    # Headline reproduction bands (also covered by the granular tests
    # below, which --benchmark-only skips).
    for path, expected in fig9_isolation.PAPER_MEDIANS_DB.items():
        assert float(np.median(result.rfly[path])) == pytest.approx(
            expected, abs=6.0
        ), path


def test_fig9_medians_match_paper(result):
    """Medians within a few dB of 110 / 92 / 77 / 64."""
    for path, expected in fig9_isolation.PAPER_MEDIANS_DB.items():
        measured = float(np.median(result.rfly[path]))
        assert measured == pytest.approx(expected, abs=6.0), path


def test_fig9_improvement_over_analog(result):
    """At least ~50 dB improvement on every path."""
    for path in LeakagePath:
        delta = float(
            np.median(result.rfly[path]) - np.median(result.analog[path])
        )
        assert delta >= 45.0


def test_fig9_orderings(result):
    """Inter > intra, downlink > uplink (paper's two observations)."""
    med = lambda p: float(np.median(result.rfly[p]))
    assert med(LeakagePath.INTER_DOWNLINK) > med(LeakagePath.INTRA_DOWNLINK)
    assert med(LeakagePath.INTER_UPLINK) > med(LeakagePath.INTRA_UPLINK)
    assert med(LeakagePath.INTER_DOWNLINK) > med(LeakagePath.INTER_UPLINK)
    assert med(LeakagePath.INTRA_DOWNLINK) > med(LeakagePath.INTRA_UPLINK)
