"""Regenerates paper Fig. 13: accuracy vs flight-path aperture."""

import numpy as np
import pytest

from repro.experiments import fig13_aperture


@pytest.fixture(scope="module")
def result(runtime):
    return fig13_aperture.run(trials_per_point=15, seed=0, runtime=runtime)


def test_fig13_regeneration(benchmark, result, save_report, runtime):
    out = benchmark.pedantic(
        lambda: fig13_aperture.run(
            apertures_m=(0.5, 2.5), trials_per_point=3, seed=4, runtime=runtime
        ),
        rounds=1,
        iterations=1,
    )
    assert set(out.sar_errors) == {0.5, 2.5}
    save_report("fig13_aperture.txt", fig13_aperture.format_result(result))
    medians = [
        float(np.median(result.sar_errors[float(a)]))
        for a in result.apertures_m
    ]
    assert medians[-1] < medians[0] and medians[-1] < 0.10


def test_fig13_accuracy_improves_with_aperture(result):
    """Paper: monotone improvement with aperture size."""
    medians = [
        float(np.median(result.sar_errors[float(a)])) for a in result.apertures_m
    ]
    assert medians[-1] < medians[0]
    # Largest aperture reaches the few-centimeter regime.
    assert medians[-1] < 0.10


def test_fig13_small_aperture_about_20cm(result):
    """Paper: ~22 cm median at a 0.5 m aperture."""
    median = float(np.median(result.sar_errors[0.5]))
    assert 0.08 <= median <= 0.40


def test_fig13_sar_beats_rssi_by_order_of_magnitude(result):
    """Paper: the SAR error is ~20x lower than RSSI at 2.5 m aperture."""
    widest = float(result.apertures_m.max())
    sar = float(np.median(result.sar_errors[widest]))
    rssi = float(np.median(result.rssi_errors[widest]))
    assert rssi / sar > 5.0


def test_fig13_rssi_around_a_meter(result):
    """Paper: RSSI median ~1 m at the largest aperture."""
    widest = float(result.apertures_m.max())
    assert 0.2 <= float(np.median(result.rssi_errors[widest])) <= 1.5
