"""Regenerates paper Fig. 12: the end-to-end localization error CDF."""

import numpy as np
import pytest

from repro.experiments import fig12_localization
from repro.sim.results import percentile


@pytest.fixture(scope="module")
def result(runtime):
    # 60 trials keep the bench under a minute; the full 100-trial run
    # (python -m repro.experiments.fig12_localization) matches within
    # a couple of centimeters.
    return fig12_localization.run(n_trials=60, seed=0, runtime=runtime)


def test_fig12_regeneration(benchmark, result, save_report, runtime):
    out = benchmark.pedantic(
        lambda: fig12_localization.run(n_trials=5, seed=3, runtime=runtime),
        rounds=1,
        iterations=1,
    )
    assert len(out.errors_m) == 5
    save_report(
        "fig12_localization.txt", fig12_localization.format_result(result)
    )
    assert 0.10 <= float(np.median(result.errors_m)) <= 0.30
    assert percentile(result.errors_m, 90.0) < 1.0


def test_fig12_median_near_19cm(result):
    """Paper median 0.19 m; accept the 0.10-0.30 m band."""
    median = float(np.median(result.errors_m))
    assert 0.10 <= median <= 0.30


def test_fig12_p90_sub_meter(result):
    """Paper p90 0.53 m; ours must stay sub-meter."""
    assert percentile(result.errors_m, 90.0) < 1.0


def test_fig12_cdf_is_valid(result):
    values, probs = result.cdf()
    assert np.all(np.diff(values) >= 0)
    assert probs[-1] == pytest.approx(1.0)
    assert np.all(values >= 0)
