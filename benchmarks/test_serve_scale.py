"""Fleet-scale serving bench: batched-ingest speedup, sharded p99.

Two acceptance claims for the scaled serving layer, recorded in
``benchmarks/reports/BENCH_serve_scale.json``:

* **Batched SAR ingest** — folding 10k co-resident sessions' pose
  blocks through one stacked kernel (:func:`fold_blocks`) instead of
  10k scalar ``IncrementalSar.update`` calls is >= 5x faster in the
  regime the kernel targets: coarse live-tracking grids, where
  per-session call overhead dominates the arithmetic. Finer grids are
  recorded too as the amortization curve (the win shrinks toward the
  shared trig cost, but batching must never lose). Wall-clock here,
  not virtual time — this is the one bench measuring real CPU work.
* **Sharded p99** — the M=8 consistent-hash fleet replays a high-load
  workload with p99 latency within the configured SLO. Under
  partitioned capacity isolation the virtual-time numbers are
  bit-identical across fleet sizes (pinned by the equivalence suite),
  so this doubles as the unsharded SLO check.
"""

from __future__ import annotations

import gc
import time

import numpy as np
import pytest

from repro.constants import UHF_CENTER_FREQUENCY
from repro.localization.batched import PoseBlock, fold_blocks
from repro.localization.grid import Grid2D
from repro.localization.incremental import IncrementalSar
from repro.serve import ServeConfig, generate_workload
from repro.serve.shard import ShardConfig, run_sharded_workload

pytestmark = [pytest.mark.bench, pytest.mark.slow]

#: Co-resident sessions in the ingest measurement (the 10k+ claim).
N_SESSIONS = 10_000
#: Timing repetitions; best-of is reported (first rep warms buffers).
REPS = 5
#: Acceptance floor on the coarse live-tracking grid.
MIN_SPEEDUP = 5.0
#: Batching must never lose, even when trig dominates (fine grids).
MIN_CURVE_SPEEDUP = 1.0

#: The serve traffic room (matches repro.serve.traffic workload grids).
ROOM = (-0.5, 4.0, 0.2, 3.0)
#: Coarse live-tracking resolution: the overhead-dominated regime the
#: batched kernel exists for, and where the 5x floor is asserted.
LIVE_RESOLUTION = 0.5
#: Coarse-to-fine amortization curve, recorded in the JSON.
CURVE_RESOLUTIONS = (0.5, 0.3, 0.15)

#: Shard fleet size for the p99-under-SLO claim.
M_SHARDS = 8
SHARD_N_TAGS = 8
SHARD_LOAD = 64.0
LATENCY_SLO_S = 0.25
SEED = 0


def _fleet(grid: Grid2D) -> list:
    return [
        IncrementalSar(frequency_hz=UHF_CENTER_FREQUENCY, grid=grid)
        for _ in range(N_SESSIONS)
    ]


def _ingest_point(resolution: float) -> dict:
    """Best-of-``REPS`` scalar vs batched ingest at one grid size."""
    grid = Grid2D(*ROOM, resolution)
    rng = np.random.default_rng(SEED)
    poses = rng.uniform(
        [ROOM[0] + 0.3, ROOM[2] + 0.1],
        [ROOM[1] - 0.3, ROOM[3] - 0.1],
        size=(N_SESSIONS, 1, 2),
    )
    channels = rng.normal(size=(N_SESSIONS, 1)) + 1j * rng.normal(
        size=(N_SESSIONS, 1)
    )
    scalar_times = []
    batched_times = []
    scalar_fleet = batched_fleet = None
    for _ in range(REPS):
        scalar_fleet = _fleet(grid)
        gc.disable()
        start = time.perf_counter()
        for session, pose, channel in zip(scalar_fleet, poses, channels):
            session.update(pose, channel)
        scalar_times.append(time.perf_counter() - start)
        gc.enable()
        batched_fleet = _fleet(grid)
        blocks = [
            PoseBlock(target=session, positions=pose, channels=channel)
            for session, pose, channel in zip(batched_fleet, poses, channels)
        ]
        gc.disable()
        start = time.perf_counter()
        fold_blocks(blocks)
        batched_times.append(time.perf_counter() - start)
        gc.enable()
    max_diff = max(
        float(np.max(np.abs(a._accumulator - b._accumulator)))
        for a, b in zip(scalar_fleet[:500], batched_fleet[:500])
    )
    scalar_s = min(scalar_times)
    batched_s = min(batched_times)
    return {
        "resolution_m": resolution,
        "grid_nodes": grid.n_points,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup_ratio": scalar_s / batched_s,
        "batched_upd_per_s": N_SESSIONS / batched_s,
        "max_accumulator_diff_abs": max_diff,
    }


@pytest.fixture(scope="module")
def scale_record():
    ingest = [_ingest_point(resolution) for resolution in CURVE_RESOLUTIONS]
    workload = generate_workload(
        n_tags=SHARD_N_TAGS, seed=SEED, load=SHARD_LOAD
    )
    config = ServeConfig(
        frequency_hz=UHF_CENTER_FREQUENCY,
        latency_slo_s=LATENCY_SLO_S,
        capacity_mode="partitioned",
        session_ttl_s=1e9,
    )
    sharded = run_sharded_workload(
        workload, config, ShardConfig(n_shards=M_SHARDS, seed=SEED)
    )
    return {
        "n_sessions": N_SESSIONS,
        "min_speedup": MIN_SPEEDUP,
        "live_resolution_m": LIVE_RESOLUTION,
        "shard_load": SHARD_LOAD,
        "ingest": ingest,
        "sharded": {
            "m_shards": M_SHARDS,
            "populated_shards": len(set(sharded.assignment.values())),
            "n_tags": SHARD_N_TAGS,
            "offered": sharded.offered,
            "applied": sharded.service.updates_applied,
            "throughput_per_s": sharded.throughput_per_s,
            "p99_latency_s": sharded.service.p99_latency_s,
            "latency_slo_s": LATENCY_SLO_S,
            "degraded_fraction": sharded.degraded_fraction,
            "shed_fraction": sharded.shed_fraction,
        },
    }


def test_batched_ingest_speedup_at_fleet_scale(scale_record, save_bench_json):
    by_resolution = {
        row["resolution_m"]: row for row in scale_record["ingest"]
    }
    live = by_resolution[LIVE_RESOLUTION]
    assert live["speedup_ratio"] >= MIN_SPEEDUP, (
        f"batched ingest only {live['speedup_ratio']:.2f}x at "
        f"{live['grid_nodes']} nodes (floor {MIN_SPEEDUP}x)"
    )
    for row in scale_record["ingest"]:
        assert row["speedup_ratio"] >= MIN_CURVE_SPEEDUP, (
            f"batching lost at {row['grid_nodes']} nodes: "
            f"{row['speedup_ratio']:.2f}x"
        )
    save_bench_json(
        "serve_scale",
        {
            "ingest": scale_record["ingest"],
            "sharded": scale_record["sharded"],
        },
        context={
            "n_sessions": scale_record["n_sessions"],
            "min_speedup": scale_record["min_speedup"],
            "live_resolution_m": scale_record["live_resolution_m"],
            "shard_load": scale_record["shard_load"],
        },
    )


def test_batched_ingest_is_bit_exact(scale_record):
    # The equivalence suite pins this property on small cases; the
    # bench re-checks it at fleet scale where the slab/chunk paths
    # actually engage.
    for row in scale_record["ingest"]:
        assert row["max_accumulator_diff_abs"] == 0.0


def test_sharded_p99_within_slo_at_m8(scale_record):
    sharded = scale_record["sharded"]
    assert sharded["p99_latency_s"] <= sharded["latency_slo_s"], (
        f"M={sharded['m_shards']} p99 "
        f"{sharded['p99_latency_s'] * 1e3:.1f} ms breaches the "
        f"{sharded['latency_slo_s'] * 1e3:.0f} ms SLO"
    )
    assert sharded["m_shards"] == M_SHARDS
    assert sharded["populated_shards"] > 1
    assert sharded["applied"] > 0
