"""Lint-driver acceptance bench: warm whole-repo analysis is >= 5x faster.

Runs ``analyze_project`` over the real ``src/repro`` tree twice against
one fresh cache — cold (parse + model build + every rule) then warm
(content hashes hit the sidecars and the per-file result cache) — and
asserts the warm pass is at least 5x faster wall-clock while producing
a byte-identical report. The timing deltas land in
``benchmarks/reports/BENCH_lint.json``.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.analysis.driver import analyze_project
from repro.analysis.reporting import render_text
from repro.runtime import RuntimeConfig

from benchmarks.conftest import MANIFESTS_DIR

pytestmark = [pytest.mark.bench, pytest.mark.slow]

#: Acceptance floor: warm whole-repo lint must be at least this much
#: faster than the cold pass.
MIN_SPEEDUP = 5.0

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


@pytest.fixture(scope="module")
def lint_record(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("lint-cache")
    MANIFESTS_DIR.mkdir(parents=True, exist_ok=True)
    runtime = RuntimeConfig(
        backend="serial", cache_dir=cache_dir, manifest_dir=MANIFESTS_DIR
    )

    start = time.perf_counter()
    cold = analyze_project([str(REPO_SRC)], runtime=runtime, name="lint_bench")
    cold_wall_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = analyze_project([str(REPO_SRC)], runtime=runtime, name="lint_bench")
    warm_wall_s = time.perf_counter() - start

    return {
        "min_speedup_required": MIN_SPEEDUP,
        "cold_wall_s": cold_wall_s,
        "warm_wall_s": warm_wall_s,
        "speedup_ratio": cold_wall_s / max(warm_wall_s, 1e-9),
        "cold_report": render_text(cold),
        "warm_report": render_text(warm),
    }


def test_warm_lint_is_5x_faster(lint_record, save_bench_json):
    assert lint_record["speedup_ratio"] >= MIN_SPEEDUP, (
        f"warm lint only {lint_record['speedup_ratio']:.1f}x faster "
        f"({lint_record['cold_wall_s']:.2f}s cold vs "
        f"{lint_record['warm_wall_s']:.2f}s warm)"
    )
    save_bench_json(
        "lint",
        {
            "cold_wall_s": lint_record["cold_wall_s"],
            "warm_wall_s": lint_record["warm_wall_s"],
            "speedup_ratio": lint_record["speedup_ratio"],
        },
        context={
            "min_speedup_required": lint_record["min_speedup_required"]
        },
    )


def test_warm_report_bit_identical(lint_record):
    assert lint_record["warm_report"] == lint_record["cold_report"]


def test_driver_matches_inline_engine(lint_record):
    assert lint_record["cold_report"] == render_text(
        analyze_paths([str(REPO_SRC)])
    )


def test_lint_manifest_written(lint_record):
    assert (MANIFESTS_DIR / "lint_bench.json").exists()
