"""Engine acceptance bench: cache-warm regeneration is >= 3x faster.

Runs the Fig. 12 and Fig. 13 campaigns twice against one fresh cache —
serial cold, then parallel-configured warm — and asserts the warm pass
is at least 3x faster wall-clock while rendering byte-identical tables.
The timing deltas land in ``benchmarks/reports/BENCH_runtime.json`` and
the per-task costs in the run manifests under ``reports/manifests/``.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import fig12_localization, fig13_aperture
from repro.runtime import RuntimeConfig

from benchmarks.conftest import MANIFESTS_DIR

pytestmark = [pytest.mark.bench, pytest.mark.slow]

#: Acceptance floor: warm regeneration must be at least this much
#: faster than the serial cold pass.
MIN_SPEEDUP = 3.0

FIG12_TRIALS = 15
FIG13_TRIALS_PER_POINT = 4


def _campaigns():
    return {
        "fig12": lambda runtime: fig12_localization.format_result(
            fig12_localization.run(
                n_trials=FIG12_TRIALS, seed=0, runtime=runtime
            )
        ).report(),
        "fig13": lambda runtime: fig13_aperture.format_result(
            fig13_aperture.run(
                trials_per_point=FIG13_TRIALS_PER_POINT, seed=0, runtime=runtime
            )
        ).report(),
    }


@pytest.fixture(scope="module")
def speedup_record(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("speedup-cache")
    MANIFESTS_DIR.mkdir(parents=True, exist_ok=True)
    record = {"min_speedup_required": MIN_SPEEDUP, "campaigns": {}}
    for name, regenerate in _campaigns().items():
        cold_config = RuntimeConfig(
            backend="serial", cache_dir=cache_dir, manifest_dir=MANIFESTS_DIR
        )
        start = time.perf_counter()
        cold_report = regenerate(cold_config)
        cold_wall_s = time.perf_counter() - start

        warm_config = RuntimeConfig(
            backend="process", cache_dir=cache_dir, manifest_dir=MANIFESTS_DIR
        )
        start = time.perf_counter()
        warm_report = regenerate(warm_config)
        warm_wall_s = time.perf_counter() - start

        record["campaigns"][name] = {
            "cold_wall_s": cold_wall_s,
            "warm_wall_s": warm_wall_s,
            "speedup_ratio": cold_wall_s / max(warm_wall_s, 1e-9),
            "reports_identical": cold_report == warm_report,
            "cold_report": cold_report,
        }
    return record


def test_warm_cache_is_3x_faster(speedup_record, save_bench_json):
    for name, row in speedup_record["campaigns"].items():
        assert row["speedup_ratio"] >= MIN_SPEEDUP, (
            f"{name}: warm regeneration only {row['speedup_ratio']:.1f}x "
            f"faster ({row['cold_wall_s']:.2f}s cold vs "
            f"{row['warm_wall_s']:.2f}s warm)"
        )
    save_bench_json(
        "runtime",
        {
            "campaigns": {
                name: {
                    key: value
                    for key, value in row.items()
                    if key != "cold_report"
                }
                for name, row in speedup_record["campaigns"].items()
            },
        },
        context={
            "min_speedup_required": speedup_record["min_speedup_required"]
        },
    )


def test_warm_tables_bit_identical(speedup_record):
    for name, row in speedup_record["campaigns"].items():
        assert row["reports_identical"], (
            f"{name}: warm table drifted from the cold table"
        )


def test_manifests_written(speedup_record):
    for name in ("fig12_localization", "fig13_aperture"):
        path = MANIFESTS_DIR / f"{name}.json"
        assert path.exists(), f"missing run manifest {path}"
