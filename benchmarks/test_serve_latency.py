"""Serving acceptance bench: sustained throughput under the p99 SLO.

Replays the seeded Gen2 traffic workload through the online service at
a sustainable load and asserts the virtual-time numbers: a sustained
throughput floor, p99 latency within the configured SLO, and no
degradation or shedding at that operating point. A second overload pass
pins the other side of the ladder — the service degrades rather than
violating the queue bound silently. The rendered experiment table must
be byte-stable across two runs under the same seed (virtual time means
zero timing noise), and the record lands in
``benchmarks/reports/BENCH_serve.json``.
"""

from __future__ import annotations

import pytest

from repro.constants import UHF_CENTER_FREQUENCY
from repro.experiments import registry, serve_bench
from repro.serve import ServeConfig, generate_workload, run_workload

pytestmark = [pytest.mark.bench, pytest.mark.slow]

#: Operating point the service must sustain at full resolution.
SUSTAINED_LOAD = 4.0
#: Acceptance floor on applied-update throughput there (virtual upd/s).
MIN_THROUGHPUT_PER_S = 50.0
#: The latency SLO the p99 must meet at the sustained load.
LATENCY_SLO_S = 0.25

#: Load far beyond capacity, to pin the degraded rung of the ladder.
OVERLOAD = 256.0

N_TAGS = 4
SEED = 0


def _replay(load: float):
    workload = generate_workload(n_tags=N_TAGS, seed=SEED, load=load)
    config = ServeConfig(
        frequency_hz=UHF_CENTER_FREQUENCY, latency_slo_s=LATENCY_SLO_S
    )
    return run_workload(workload, config)


@pytest.fixture(scope="module")
def serve_record():
    sustained = _replay(SUSTAINED_LOAD)
    overloaded = _replay(OVERLOAD)
    return {
        "sustained_load": SUSTAINED_LOAD,
        "overload": OVERLOAD,
        "min_throughput_per_s": MIN_THROUGHPUT_PER_S,
        "latency_slo_s": LATENCY_SLO_S,
        "sustained": {
            "offered": sustained.offered,
            "throughput_per_s": sustained.throughput_per_s,
            "p50_latency_s": sustained.service.p50_latency_s,
            "p99_latency_s": sustained.service.p99_latency_s,
            "shed_fraction": sustained.shed_fraction,
            "degraded_fraction": sustained.degraded_fraction,
            "max_error_m": max(sustained.errors_m.values()),
        },
        "overloaded": {
            "throughput_per_s": overloaded.throughput_per_s,
            "p99_latency_s": overloaded.service.p99_latency_s,
            "shed_fraction": overloaded.shed_fraction,
            "degraded_fraction": overloaded.degraded_fraction,
            "max_error_m": max(overloaded.errors_m.values()),
        },
    }


def test_sustained_throughput_meets_the_floor(serve_record, save_bench_json):
    sustained = serve_record["sustained"]
    assert sustained["throughput_per_s"] >= MIN_THROUGHPUT_PER_S, (
        f"only {sustained['throughput_per_s']:.1f} upd/s sustained "
        f"(floor {MIN_THROUGHPUT_PER_S})"
    )
    save_bench_json(
        "serve",
        {
            "sustained": serve_record["sustained"],
            "overloaded": serve_record["overloaded"],
        },
        context={
            "sustained_load": serve_record["sustained_load"],
            "overload": serve_record["overload"],
            "min_throughput_per_s": serve_record["min_throughput_per_s"],
            "latency_slo_s": serve_record["latency_slo_s"],
        },
    )


def test_p99_latency_within_slo_at_sustained_load(serve_record):
    sustained = serve_record["sustained"]
    assert sustained["p99_latency_s"] <= LATENCY_SLO_S, (
        f"p99 {sustained['p99_latency_s'] * 1e3:.1f} ms breaches the "
        f"{LATENCY_SLO_S * 1e3:.0f} ms SLO"
    )
    assert sustained["degraded_fraction"] == 0.0
    assert sustained["shed_fraction"] == 0.0


def test_overload_degrades_instead_of_blowing_up(serve_record):
    overloaded = serve_record["overloaded"]
    assert overloaded["degraded_fraction"] > 0.0
    # Degradation trades estimate latency, never finalize accuracy:
    # the overloaded estimates match the sustained-run quality bound.
    assert overloaded["max_error_m"] <= 0.25
    assert serve_record["sustained"]["max_error_m"] <= 0.25


def test_estimate_table_is_byte_stable(save_report):
    run_a = registry.run_experiment("serve", smoke=True)
    run_b = registry.run_experiment("serve", smoke=True)
    report_a = run_a.outputs[0].report()
    report_b = run_b.outputs[0].report()
    assert report_a == report_b
    save_report("serve.txt", run_a.outputs[0])


def test_format_result_is_pure(serve_record):
    sustained = serve_record["sustained"]
    result = serve_bench.ServeBenchResult(
        rows=[
            {
                "load": SUSTAINED_LOAD,
                "offered": float(sustained["offered"]),
                "throughput_per_s": sustained["throughput_per_s"],
                "p50_latency_s": sustained["p50_latency_s"],
                "p99_latency_s": sustained["p99_latency_s"],
                "shed_fraction": sustained["shed_fraction"],
                "degraded_fraction": sustained["degraded_fraction"],
                "mean_error_m": sustained["max_error_m"],
            }
        ]
    )
    assert serve_bench.format_result(result).report() == (
        serve_bench.format_result(result).report()
    )
