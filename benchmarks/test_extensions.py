"""Benches for the implemented future-work extensions (paper §9)."""

import numpy as np
import pytest

from repro.constants import SPEED_OF_LIGHT, UHF_CENTER_FREQUENCY
from repro.localization import (
    Grid2D,
    Grid3D,
    Localizer,
    MeasurementModel,
    locate_3d,
    self_localize_from_measurements,
)
from repro.relay import ChainPlan, DaisyChainMeasurementModel

F = UHF_CENTER_FREQUENCY


def run_3d_trial(seed: int) -> float:
    rng = np.random.default_rng(seed)
    xs, ys = np.meshgrid(np.linspace(0, 1.6, 21), np.linspace(0, 1.6, 21))
    positions = np.column_stack(
        [xs.ravel(), ys.ravel(), np.full(xs.size, 2.0)]
    )
    tag = np.array(
        [rng.uniform(0.3, 1.3), rng.uniform(0.3, 1.3), rng.uniform(0.2, 0.8)]
    )
    d = np.linalg.norm(positions - tag, axis=1)
    channels = np.exp(-2j * np.pi * F * 2 * d / SPEED_OF_LIGHT)
    noise = 10 ** (-20.0 / 20.0) / np.sqrt(2)
    channels = channels + noise * (
        rng.standard_normal(len(channels))
        + 1j * rng.standard_normal(len(channels))
    )
    grid = Grid3D(-0.5, 2.5, -0.5, 2.5, 0.0, 1.8, 0.15)
    estimate = locate_3d(positions, channels, grid, F)
    return float(np.linalg.norm(estimate - tag))


def run_chain_trial(seed: int) -> float:
    rng = np.random.default_rng(seed)
    plan = ChainPlan(reader_frequency_hz=F, shift_hz=1.0e6, n_relays=2)
    model = DaisyChainMeasurementModel((0.0, 0.0), plan)
    hop1 = np.array([40.0, 0.0])
    tag = np.array([80.0 + rng.uniform(0.0, 3.0), rng.uniform(0.8, 2.5)])
    measurements = [
        model.measure([hop1, np.array([x, 0.0])], tag, rng, snr_db=22.0)
        for x in np.linspace(79.0, 82.0, 40)
    ]
    grid = Grid2D(76.0, 86.0, 0.2, 4.0, 0.1)
    result = Localizer(frequency_hz=F).locate(measurements, search_grid=grid)
    return result.error_to(tag)


def run_selfloc_trial(seed: int) -> float:
    rng = np.random.default_rng(seed)
    reader = (6.0, 5.0)
    origin = np.array([rng.uniform(0.0, 2.0), rng.uniform(0.5, 2.5)])
    relative = np.column_stack([np.linspace(0.0, 3.0, 40), np.zeros(40)])
    model = MeasurementModel(reader_position=reader, reader_frequency_hz=F)
    measurements = [
        model.measure(origin + q, (2.0, 3.0), rng, snr_db=20.0)
        for q in relative
    ]
    grid = Grid2D(-1.0, 3.5, 0.0, 4.0, 0.03)
    estimate, _ = self_localize_from_measurements(
        measurements, relative, reader, grid, F
    )
    return float(np.linalg.norm(estimate - origin))


def test_3d_localization_bench(benchmark):
    """3-D fixes from a planar trajectory (paper §5.2 extension)."""
    errors = benchmark.pedantic(
        lambda: [run_3d_trial(s) for s in range(3)], rounds=1, iterations=1
    )
    assert float(np.median(errors)) < 0.10


def test_daisy_chain_bench(benchmark):
    """Phase localization through a 2-relay chain at 80+ m (§9)."""
    errors = benchmark.pedantic(
        lambda: [run_chain_trial(s) for s in range(3)], rounds=1, iterations=1
    )
    assert float(np.median(errors)) < 0.20


def test_self_localization_bench(benchmark):
    """Drone self-localization from the reference RFID channel (§9)."""
    errors = benchmark.pedantic(
        lambda: [run_selfloc_trial(s) for s in range(3)], rounds=1, iterations=1
    )
    assert float(np.median(errors)) < 0.30