"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one of the paper's tables/figures, asserts
the headline shape of the result, and writes the regenerated table to
``benchmarks/reports/`` so it can be inspected (and pasted into
EXPERIMENTS.md) after a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def reports_dir() -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


@pytest.fixture
def save_report(reports_dir):
    """Write an ExperimentOutput's report to reports/<name>.txt."""

    def _save(filename: str, output) -> None:
        path = reports_dir / filename
        path.write_text(output.report() + "\n", encoding="utf-8")

    return _save
