"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one of the paper's tables/figures through
the ``repro.runtime`` sweep engine, asserts the headline shape of the
result, and writes the regenerated table to ``benchmarks/reports/`` so
it can be inspected (and pasted into EXPERIMENTS.md) after a run. Each
sweep also leaves a JSON run manifest (per-task wall time, cache hits)
under ``benchmarks/reports/manifests/``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.runtime import RuntimeConfig

REPORTS_DIR = Path(__file__).parent / "reports"
MANIFESTS_DIR = REPORTS_DIR / "manifests"


@pytest.fixture(scope="session")
def reports_dir() -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


@pytest.fixture(scope="session")
def runtime(tmp_path_factory) -> RuntimeConfig:
    """The benchmarks' engine configuration.

    A session-private cache keeps module fixtures and repeat assertions
    cheap without leaking warmth across bench runs; every sweep writes
    its manifest under reports/ for the timing-delta artifacts.
    """
    MANIFESTS_DIR.mkdir(parents=True, exist_ok=True)
    return RuntimeConfig(
        cache_dir=tmp_path_factory.mktemp("bench-cache"),
        manifest_dir=MANIFESTS_DIR,
    )


@pytest.fixture
def save_report(reports_dir):
    """Write an ExperimentOutput's report to reports/<name>.txt."""

    def _save(filename: str, output) -> None:
        path = reports_dir / filename
        path.write_text(output.report() + "\n", encoding="utf-8")

    return _save


@pytest.fixture(scope="session")
def save_bench_json(reports_dir):
    """Write a timing-delta record to reports/BENCH_<name>.json."""

    def _save(name: str, payload: dict) -> Path:
        path = reports_dir / f"BENCH_{name}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
        return path

    return _save
