"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one of the paper's tables/figures through
the ``repro.runtime`` sweep engine, asserts the headline shape of the
result, and writes the regenerated table to ``benchmarks/reports/`` so
it can be inspected (and pasted into EXPERIMENTS.md) after a run. Each
sweep also leaves a JSON run manifest (per-task wall time, cache hits)
under ``benchmarks/reports/manifests/``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import pytest

from repro.obs.reports import bench_report, write_json_atomic
from repro.runtime import RuntimeConfig

REPORTS_DIR = Path(__file__).parent / "reports"
MANIFESTS_DIR = REPORTS_DIR / "manifests"


@pytest.fixture(scope="session")
def reports_dir() -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


@pytest.fixture(scope="session")
def runtime(tmp_path_factory) -> RuntimeConfig:
    """The benchmarks' engine configuration.

    A session-private cache keeps module fixtures and repeat assertions
    cheap without leaking warmth across bench runs; every sweep writes
    its manifest under reports/ for the timing-delta artifacts.
    """
    MANIFESTS_DIR.mkdir(parents=True, exist_ok=True)
    return RuntimeConfig(
        cache_dir=tmp_path_factory.mktemp("bench-cache"),
        manifest_dir=MANIFESTS_DIR,
    )


@pytest.fixture
def save_report(reports_dir):
    """Write an ExperimentOutput's report to reports/<name>.txt."""

    def _save(filename: str, output) -> None:
        path = reports_dir / filename
        path.write_text(output.report() + "\n", encoding="utf-8")

    return _save


@pytest.fixture(scope="session")
def save_bench_json(reports_dir):
    """Write a schema-validated record to reports/BENCH_<name>.json.

    Every report goes through the shared :mod:`repro.obs.reports`
    envelope — float metrics must carry unit suffixes, configuration
    goes in ``context`` — and lands atomically in canonical JSON, so
    committed reports diff cleanly and never half-write.
    """

    def _save(
        name: str, metrics: dict, context: Optional[dict] = None
    ) -> Path:
        doc = bench_report(name, metrics, context)
        return write_json_atomic(reports_dir / f"BENCH_{name}.json", doc)

    return _save
