"""Regenerates paper Fig. 10: phase accuracy, mirrored vs no-mirror."""

import numpy as np
import pytest

from repro.experiments import fig10_phase


@pytest.fixture(scope="module")
def result(runtime):
    return fig10_phase.run(n_trials=30, seed=0, runtime=runtime)


def test_fig10_regeneration(benchmark, result, save_report, runtime):
    out = benchmark.pedantic(
        lambda: fig10_phase.run(n_trials=6, seed=2, runtime=runtime),
        rounds=1,
        iterations=1,
    )
    assert len(out.mirrored_errors_deg) == 6
    save_report("fig10_phase.txt", fig10_phase.format_result(result))
    assert float(np.median(result.mirrored_errors_deg)) < 1.0
    assert float(np.median(result.no_mirror_errors_deg)) > 30.0


def test_fig10_mirrored_sub_degree(result):
    """Paper: median 0.34 deg; ours must stay sub-degree."""
    assert float(np.median(result.mirrored_errors_deg)) < 1.0


def test_fig10_no_mirror_is_random(result):
    """A uniform phase has ~90 deg median absolute deviation."""
    assert float(np.median(result.no_mirror_errors_deg)) > 30.0


def test_fig10_separation(result):
    """The architectures differ by orders of magnitude."""
    mirrored = float(np.median(result.mirrored_errors_deg))
    baseline = float(np.median(result.no_mirror_errors_deg))
    assert baseline / max(mirrored, 1e-6) > 30.0
