"""Regenerates paper Fig. 14: accuracy vs projected reader distance."""

import numpy as np
import pytest

from repro.experiments import fig14_distance
from repro.sim.results import percentile


@pytest.fixture(scope="module")
def result(runtime):
    return fig14_distance.run(trials_per_point=10, seed=0, runtime=runtime)


def test_fig14_regeneration(benchmark, result, save_report, runtime):
    out = benchmark.pedantic(
        lambda: fig14_distance.run(
            distances_m=(5.0, 55.0), trials_per_point=3, seed=5, runtime=runtime
        ),
        rounds=1,
        iterations=1,
    )
    assert set(out.sar_errors) == {5.0, 55.0}
    save_report("fig14_distance.txt", fig14_distance.format_result(result))
    assert float(np.median(result.sar_errors[55.0])) > float(
        np.median(result.sar_errors[5.0])
    )
    assert float(np.median(result.sar_errors[40.0])) < 0.20


def test_fig14_error_grows_with_distance(result):
    near = float(np.median(result.sar_errors[5.0]))
    far = float(np.median(result.sar_errors[55.0]))
    assert far > near


def test_fig14_sub_20cm_at_40m(result):
    """Paper: median < 18 cm at a projected distance of 40 m."""
    assert float(np.median(result.sar_errors[40.0])) < 0.20


def test_fig14_degrades_past_50m(result):
    """Paper: p90 grows substantially beyond 50 m (SNR < 3 dB)."""
    p90_55 = percentile(result.sar_errors[55.0], 90.0)
    p90_20 = percentile(result.sar_errors[20.0], 90.0)
    assert p90_55 > 1.5 * p90_20


def test_fig14_sar_beats_rssi_everywhere(result):
    for d in result.distances_m:
        sar = float(np.median(result.sar_errors[float(d)]))
        rssi = float(np.median(result.rssi_errors[float(d)]))
        assert sar < rssi
