"""Regenerates paper Fig. 11: read rate vs distance, three curves."""

import numpy as np
import pytest

from repro.experiments import fig11_range


@pytest.fixture(scope="module")
def result(runtime):
    return fig11_range.run(trials_per_point=200, seed=0, runtime=runtime)


def test_fig11_regeneration(benchmark, result, save_report, runtime):
    out = benchmark.pedantic(
        lambda: fig11_range.run(trials_per_point=50, seed=1, runtime=runtime),
        rounds=1,
        iterations=1,
    )
    assert set(out.rates) == {"no_relay", "relay_los", "relay_nlos"}
    save_report("fig11_range.txt", fig11_range.format_result(result))
    assert _rate(result, "no_relay", 10.0) < 0.10
    assert _rate(result, "relay_los", 50.0) > 0.95
    assert 0.6 < _rate(result, "relay_nlos", 55.0) <= 1.0


def _rate(result, mode, distance):
    idx = int(np.argmin(np.abs(result.distances_m - distance)))
    return float(result.rates[mode][idx])


def test_fig11_no_relay_dies_by_10m(result):
    assert _rate(result, "no_relay", 10.0) < 0.10
    assert _rate(result, "no_relay", 2.0) > 0.95


def test_fig11_relay_los_full_rate_at_50m(result):
    assert _rate(result, "relay_los", 50.0) > 0.95


def test_fig11_relay_nlos_roughly_75pct_at_55m(result):
    assert 0.6 < _rate(result, "relay_nlos", 55.0) <= 1.0


def test_fig11_ten_x_range_improvement(result):
    """Relay range (last distance with >90% reads) ~10x the no-relay one."""
    def max_range(mode):
        good = result.rates[mode] > 0.9
        return float(result.distances_m[good][-1]) if np.any(good) else 0.0

    assert max_range("relay_los") >= 8.0 * max_range("no_relay")


def test_fig11_nlos_below_los(result):
    for d in (40.0, 50.0, 55.0):
        assert _rate(result, "relay_nlos", d) <= _rate(result, "relay_los", d) + 0.05
