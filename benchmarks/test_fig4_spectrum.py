"""Regenerates paper Fig. 4: the query/response guard band."""

import pytest

from repro.experiments import fig4_spectrum


@pytest.fixture(scope="module")
def result(runtime):
    return fig4_spectrum.run(seed=0, runtime=runtime)


def test_fig4_regeneration(benchmark, result, save_report, runtime):
    out = benchmark.pedantic(
        lambda: fig4_spectrum.run(seed=1, runtime=runtime),
        rounds=1,
        iterations=1,
    )
    assert out.frequencies_hz.size > 0
    save_report("fig4_spectrum.txt", fig4_spectrum.format_result(result))
    # Headline shape: the query hugs the carrier, the response sits at
    # the BLF, and a guard band separates them.
    assert result.query_occupied_bandwidth_hz < 250e3
    assert 350e3 < result.response_peak_offset_hz < 650e3
    assert result.guard_band_hz > 50e3


def test_fig4_query_narrowband(result):
    """Paper: query constrained within ~125 kHz."""
    assert result.query_occupied_bandwidth_hz < 250e3


def test_fig4_response_at_blf(result):
    assert 350e3 < result.response_peak_offset_hz < 650e3


def test_fig4_guard_band_exists(result):
    assert result.guard_band_hz > 50e3
