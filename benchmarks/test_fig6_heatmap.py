"""Regenerates paper Fig. 6: the P(x, y) heatmaps."""

import pytest

from repro.experiments import fig6_heatmap


@pytest.fixture(scope="module")
def result(runtime):
    return fig6_heatmap.run(seed=0, runtime=runtime)


def test_fig6_regeneration(benchmark, result, save_report, runtime):
    out = benchmark.pedantic(
        lambda: fig6_heatmap.run(seed=1, runtime=runtime),
        rounds=1,
        iterations=1,
    )
    assert out.los_heatmap.values.size > 0
    save_report("fig6_heatmap.txt", fig6_heatmap.format_result(result))
    assert result.los_error_m < 0.07
    assert result.ghost_peaks_farther


def test_fig6_los_error_under_7cm(result):
    """Paper's example LoS trial errs by less than 7 cm."""
    assert result.los_error_m < 0.07


def test_fig6_ghosts_farther_than_tag(result):
    """The §5.2 insight holds on the multipath heatmap."""
    assert result.ghost_peaks_farther


def test_fig6_nearest_rule_not_worse_than_argmax(result):
    assert (
        result.multipath_error_nearest_m
        <= result.multipath_error_argmax_m + 1e-9
    )


def test_fig6_heatmap_peak_near_tag_los(result):
    heatmap = result.los_heatmap
    peak_position = heatmap.argmax_position()
    import numpy as np

    from repro.sim.scenarios import los_heatmap_scenario

    tag = los_heatmap_scenario(0).tag_position
    assert float(np.linalg.norm(peak_position - tag)) < 0.15


def test_fig6_ascii_rendering(result):
    art = fig6_heatmap.ascii_heatmap(result.multipath_heatmap)
    assert "@" in art or "%" in art  # a hot peak exists
    assert len(art.splitlines()) > 10
